//! The standard fleet-tier run: generate a day of Fbflow-style samples
//! over the fleet plant and tag them into a Scuba table.

use crate::scenario::{fleet_spec, ScenarioScale};
use serde::{Deserialize, Serialize};
use sonet_telemetry::{ScubaTable, Tagger};
use sonet_topology::Topology;
use sonet_workload::{FleetConfig, FleetModel};
use std::sync::Arc;

/// Configuration of a fleet-tier run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetRunConfig {
    /// Scenario seed.
    pub seed: u64,
    /// Plant size.
    pub scale: ScenarioScale,
    /// Samples per host across the simulated day.
    pub samples_per_host: u32,
}

impl FleetRunConfig {
    /// Bench-grade fleet run.
    pub fn standard(seed: u64) -> FleetRunConfig {
        FleetRunConfig { seed, scale: ScenarioScale::Standard, samples_per_host: 200 }
    }

    /// Test-grade fleet run.
    pub fn fast(seed: u64) -> FleetRunConfig {
        FleetRunConfig { seed, scale: ScenarioScale::Tiny, samples_per_host: 50 }
    }
}

/// The fleet plant plus its tagged day of Fbflow samples.
pub struct FleetData {
    /// The plant.
    pub topo: Arc<Topology>,
    /// Tagged sample table.
    pub table: ScubaTable,
    /// Destination picks that had to relax their desired locality.
    pub relaxed_picks: u64,
}

impl FleetData {
    /// Runs the fleet tier.
    pub fn run(cfg: &FleetRunConfig) -> FleetData {
        let topo =
            Arc::new(Topology::build(fleet_spec(cfg.scale)).expect("preset specs are valid"));
        let mut model = FleetModel::new(
            Arc::clone(&topo),
            FleetConfig { samples_per_host: cfg.samples_per_host, ..FleetConfig::default() },
            cfg.seed,
        );
        let samples = model.generate();
        let table = Tagger::new(&topo).ingest(samples);
        FleetData { topo, table, relaxed_picks: model.relaxed_picks() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_run_produces_tagged_rows() {
        let data = FleetData::run(&FleetRunConfig::fast(3));
        assert!(!data.table.is_empty());
        assert_eq!(
            data.table.len() as u64,
            data.topo.hosts().len() as u64 * 50
        );
        // Relaxations should be rare on a complete plant.
        let frac = data.relaxed_picks as f64 / data.table.len() as f64;
        assert!(frac < 0.10, "relaxed fraction {frac}");
    }
}
