//! The standard fleet-tier run: generate a day of Fbflow-style samples
//! over the fleet plant and tag them into a Scuba table.

use crate::scenario::{fleet_spec, ScenarioScale};
use serde::{Deserialize, Serialize};
use sonet_telemetry::{FlowRecord, ScubaTable, Tagger};
use sonet_topology::Topology;
use sonet_workload::{FleetConfig, FleetModel};
use std::fmt;
use std::sync::Arc;

/// Configuration of a fleet-tier run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetRunConfig {
    /// Scenario seed.
    pub seed: u64,
    /// Plant size.
    pub scale: ScenarioScale,
    /// Samples per host across the simulated day.
    pub samples_per_host: u32,
    /// Fraction of agent samples lost before reaching the tagger, in
    /// `[0, 1]` (the fleet-tier analogue of `FaultKind::FbflowLoss`).
    /// Losses are deterministic and counted in [`FleetData::agent_dropped`].
    pub agent_loss: f64,
}

impl FleetRunConfig {
    /// Bench-grade fleet run.
    pub fn standard(seed: u64) -> FleetRunConfig {
        FleetRunConfig {
            seed,
            scale: ScenarioScale::Standard,
            samples_per_host: 200,
            agent_loss: 0.0,
        }
    }

    /// Test-grade fleet run.
    pub fn fast(seed: u64) -> FleetRunConfig {
        FleetRunConfig {
            seed,
            scale: ScenarioScale::Tiny,
            samples_per_host: 50,
            agent_loss: 0.0,
        }
    }
}

/// Errors from a fleet-tier run.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetRunError {
    /// `agent_loss` outside `[0, 1]`.
    AgentLossOutOfRange(f64),
    /// The plant spec failed to build.
    Build(String),
}

impl fmt::Display for FleetRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetRunError::AgentLossOutOfRange(v) => {
                write!(f, "agent loss {v} outside [0, 1]")
            }
            FleetRunError::Build(e) => write!(f, "fleet plant failed to build: {e}"),
        }
    }
}

impl std::error::Error for FleetRunError {}

/// The fleet plant plus its tagged day of Fbflow samples.
pub struct FleetData {
    /// The plant.
    pub topo: Arc<Topology>,
    /// Tagged sample table.
    pub table: ScubaTable,
    /// Destination picks that had to relax their desired locality.
    pub relaxed_picks: u64,
    /// Samples lost to injected agent faults (counted, never silent).
    pub agent_dropped: u64,
}

/// Builds the fleet plant and generator for `cfg`, validating the config
/// first. Shared between the one-shot [`FleetData::run`] and the
/// supervised, checkpointable driver in [`crate::supervised`].
pub(crate) fn build_fleet_model(
    cfg: &FleetRunConfig,
) -> Result<(Arc<Topology>, FleetModel), FleetRunError> {
    if !(0.0..=1.0).contains(&cfg.agent_loss) {
        return Err(FleetRunError::AgentLossOutOfRange(cfg.agent_loss));
    }
    let topo = Arc::new(
        Topology::build(fleet_spec(cfg.scale)).map_err(|e| FleetRunError::Build(e.to_string()))?,
    );
    let model = FleetModel::new(
        Arc::clone(&topo),
        FleetConfig {
            samples_per_host: cfg.samples_per_host,
            ..FleetConfig::default()
        },
        cfg.seed,
    );
    Ok((topo, model))
}

impl FleetData {
    /// Runs the fleet tier with the process-default worker count.
    pub fn run(cfg: &FleetRunConfig) -> Result<FleetData, FleetRunError> {
        Self::run_with(cfg, None)
    }

    /// Runs the fleet tier on an explicit worker count (`None` defers to
    /// the process default). The thread count never changes the output —
    /// only how fast it is produced.
    pub fn run_with(
        cfg: &FleetRunConfig,
        threads: Option<usize>,
    ) -> Result<FleetData, FleetRunError> {
        let (topo, mut model) = build_fleet_model(cfg)?;
        model.set_parallelism(threads);
        let samples = {
            let _span = sonet_util::obs::trace::span("generate");
            model.generate()
        };
        Ok(Self::assemble(
            cfg,
            topo,
            samples,
            model.relaxed_picks(),
            threads,
        ))
    }

    /// Thins, tags, and tables a time-sorted sample stream. The supervised
    /// driver calls this with samples recovered across checkpoints; both
    /// paths funnel through here so a resumed run's table is byte-identical
    /// to an uninterrupted one.
    pub(crate) fn assemble(
        cfg: &FleetRunConfig,
        topo: Arc<Topology>,
        samples: Vec<FlowRecord>,
        relaxed_picks: u64,
        threads: Option<usize>,
    ) -> FleetData {
        // Agent-side loss thins the stream deterministically (the same
        // ordinal hash the packet-tier telemetry uses), with every drop
        // counted — degraded monitoring, not silently wrong monitoring.
        let permille = (cfg.agent_loss * 1000.0).round() as u64;
        let mut agent_dropped = 0u64;
        let samples: Vec<_> = samples
            .into_iter()
            .enumerate()
            .filter(|(i, _)| {
                let keep =
                    permille == 0 || (*i as u64 + 1).wrapping_mul(2_654_435_761) % 1000 >= permille;
                if !keep {
                    agent_dropped += 1;
                }
                keep
            })
            .map(|(_, s)| s)
            .collect();
        let threads = sonet_util::par::resolve_threads(threads);
        let _span = sonet_util::obs::trace::span("ingest");
        sonet_util::obs::counter_add!("fleet.agent_dropped", agent_dropped);
        let table = Tagger::new(&topo).ingest_sharded(&samples, threads);
        FleetData {
            topo,
            table,
            relaxed_picks,
            agent_dropped,
        }
    }
}

impl fmt::Debug for FleetData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetData")
            .field("rows", &self.table.len())
            .field("relaxed_picks", &self.relaxed_picks)
            .field("agent_dropped", &self.agent_dropped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_run_produces_tagged_rows() {
        let data = FleetData::run(&FleetRunConfig::fast(3)).expect("valid config");
        assert!(!data.table.is_empty());
        assert_eq!(data.table.len() as u64, data.topo.hosts().len() as u64 * 50);
        // Relaxations should be rare on a complete plant.
        let frac = data.relaxed_picks as f64 / data.table.len() as f64;
        assert!(frac < 0.10, "relaxed fraction {frac}");
        assert_eq!(data.agent_dropped, 0);
    }

    #[test]
    fn agent_loss_thins_fleet_samples_deterministically() {
        let cfg = FleetRunConfig {
            agent_loss: 0.3,
            ..FleetRunConfig::fast(3)
        };
        let a = FleetData::run(&cfg).expect("valid config");
        let healthy = FleetData::run(&FleetRunConfig::fast(3)).expect("valid config");
        let total = healthy.table.len() as u64;
        assert_eq!(a.table.len() as u64 + a.agent_dropped, total);
        let lost = a.agent_dropped as f64 / total as f64;
        assert!(
            (lost - 0.3).abs() < 0.05,
            "lost fraction {lost}, wanted ≈0.3"
        );
        let b = FleetData::run(&cfg).expect("valid config");
        assert_eq!(a.table.len(), b.table.len());
        assert_eq!(a.agent_dropped, b.agent_dropped);
    }

    #[test]
    fn agent_loss_out_of_range_is_a_typed_error() {
        let cfg = FleetRunConfig {
            agent_loss: 1.5,
            ..FleetRunConfig::fast(3)
        };
        match FleetData::run(&cfg) {
            Err(FleetRunError::AgentLossOutOfRange(v)) => assert_eq!(v, 1.5),
            other => panic!("expected AgentLossOutOfRange, got {other:?}"),
        }
    }
}
