//! Delta-debugging shrinker for violating fault plans.
//!
//! Given a plan whose run violates an SLO, [`shrink_plan`] searches for a
//! minimal plan that still violates the *same* SLO, re-running the
//! deterministic engine on each candidate:
//!
//! 1. **ddmin** over the event list — drop halves, then quarters, … then
//!    single events, keeping any subset that still violates;
//! 2. **severity reduction** — halve gray-drop fractions, pull degraded
//!    rate factors back toward 1.0, halve flap cycle counts;
//! 3. **window narrowing** — move each down event's matching up event
//!    earlier (midpoint bisection), shortening the outage.
//!
//! Every candidate run costs one engine execution, so the search is
//! bounded by `max_runs`; the result is minimal *with respect to the
//! passes that fit the budget*, which in practice strips decoy events in
//! well under the default 64 runs.

use serde::{Deserialize, Serialize};
use sonet_netsim::{FaultEvent, FaultKind, FaultPlan};
use sonet_util::SimTime;

use super::campaign::{execute_run, ExecConfig, TwinSummary};
use super::slo::{evaluate, SloSpec};
use crate::scenario::ScenarioScale;

/// Result of one shrink search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShrinkOutcome {
    /// The minimal violating plan found.
    pub plan: FaultPlan,
    /// Events in the original plan.
    pub events_before: usize,
    /// Events in the shrunk plan.
    pub events_after: usize,
    /// Engine runs the search spent.
    pub runs_used: usize,
}

/// Campaign-report record of a shrink (the plan itself goes to the repro
/// file; the report carries its identity).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShrinkRecord {
    /// Profile whose run was shrunk.
    pub profile: String,
    /// Seed of the violating run.
    pub seed: u64,
    /// Plant size of the violating run.
    pub scale: ScenarioScale,
    /// The SLO the shrink preserved.
    pub violated_slo: String,
    /// Events before shrinking.
    pub events_before: usize,
    /// Events after shrinking.
    pub events_after: usize,
    /// Engine runs the search spent.
    pub runs_used: usize,
    /// Identity of the shrunk plan.
    pub shrunk_plan_hash: String,
    /// Repro file name in the campaign output directory (empty when no
    /// output directory was given).
    pub repro_file: String,
}

/// Committed repro-file format: everything needed to re-run a violation
/// standalone (`sonet chaos --replay FILE`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReproFile {
    /// Repro schema version.
    pub schema: u32,
    /// Always `"chaos-repro"`.
    pub kind: String,
    /// Profile that generated the original plan.
    pub profile: String,
    /// Campaign the violation was found in.
    pub campaign_id: String,
    /// Plant size.
    pub scale: ScenarioScale,
    /// Workload seed.
    pub seed: u64,
    /// Simulated run length in milliseconds.
    pub duration_ms: u64,
    /// Workload rate multiplier.
    pub rate_scale: f64,
    /// The SLO this plan violates.
    pub slo: String,
    /// Identity of `plan`.
    pub plan_hash: String,
    /// The minimal violating plan.
    pub plan: FaultPlan,
}

impl ReproFile {
    /// Reads and parses a repro file from disk.
    pub fn read(path: &std::path::Path) -> Result<ReproFile, String> {
        let body = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        serde_json::from_str(&body)
            .map_err(|e| format!("{} is not a chaos repro file: {e}", path.display()))
    }
}

fn plan_from(events: &[FaultEvent]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for ev in events {
        plan = plan.at(ev.at, ev.kind);
    }
    plan
}

/// A bounded test oracle: does this candidate still violate `target`?
struct Oracle<'a> {
    exec: &'a ExecConfig,
    twin: &'a TwinSummary,
    slo: &'a SloSpec,
    target: &'a str,
    runs_used: usize,
    max_runs: usize,
}

impl Oracle<'_> {
    fn violates(&mut self, events: &[FaultEvent]) -> bool {
        if self.runs_used >= self.max_runs {
            return false;
        }
        self.runs_used += 1;
        let plan = plan_from(events);
        match execute_run(self.exec, &plan) {
            Ok(metrics) => evaluate(self.slo, &metrics, self.twin)
                .violated()
                .contains(&self.target),
            // A candidate that breaks the run outright (invalid plan,
            // budget) is not a reproduction of the SLO violation.
            Err(_) => false,
        }
    }

    fn exhausted(&self) -> bool {
        self.runs_used >= self.max_runs
    }
}

/// Shrinks `plan` to a minimal plan still violating `target_slo` when run
/// under `exec`, spending at most `max_runs` engine executions.
///
/// The input plan is assumed to violate `target_slo` (the campaign only
/// shrinks observed violations); if re-execution disagrees the original
/// plan is returned unshrunk.
pub fn shrink_plan(
    exec: &ExecConfig,
    twin: &TwinSummary,
    slo: &SloSpec,
    plan: &FaultPlan,
    target_slo: &str,
    max_runs: usize,
) -> ShrinkOutcome {
    let original: Vec<FaultEvent> = plan.events().to_vec();
    let mut oracle = Oracle {
        exec,
        twin,
        slo,
        target: target_slo,
        runs_used: 0,
        max_runs,
    };
    let mut current = original.clone();

    // Pass 1: ddmin — remove chunks, halving the chunk size until single
    // events survive or the run budget is gone.
    let mut chunk = current.len().div_ceil(2).max(1);
    while chunk >= 1 && current.len() > 1 && !oracle.exhausted() {
        let mut i = 0;
        while i < current.len() && current.len() > 1 && !oracle.exhausted() {
            let hi = (i + chunk).min(current.len());
            let mut candidate = current.clone();
            candidate.drain(i..hi);
            if !candidate.is_empty() && oracle.violates(&candidate) {
                current = candidate;
                // Re-test from the same offset: the list shrank under us.
            } else {
                i = hi;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = chunk.div_ceil(2);
    }

    // Pass 2: severity reduction on the survivors.
    for i in 0..current.len() {
        if oracle.exhausted() {
            break;
        }
        let softened = match current[i].kind {
            FaultKind::GrayLink {
                link,
                drop_fraction,
            } if drop_fraction > 0.02 => Some(FaultKind::GrayLink {
                link,
                drop_fraction: drop_fraction / 2.0,
            }),
            FaultKind::DegradeLink { link, rate_factor } if rate_factor < 0.9 => {
                Some(FaultKind::DegradeLink {
                    link,
                    rate_factor: (rate_factor + 1.0) / 2.0,
                })
            }
            FaultKind::FlapLink {
                link,
                half_period,
                cycles,
            } if cycles > 1 => Some(FaultKind::FlapLink {
                link,
                half_period,
                cycles: cycles / 2,
            }),
            _ => None,
        };
        if let Some(kind) = softened {
            let mut candidate = current.clone();
            candidate[i] = FaultEvent {
                at: candidate[i].at,
                kind,
            };
            if oracle.violates(&candidate) {
                current = candidate;
            }
        }
    }

    // Pass 3: window narrowing — pull each recovery event toward its down
    // event, halving the outage window.
    for i in 0..current.len() {
        if oracle.exhausted() {
            break;
        }
        let down_at = current[i].at;
        let up_idx = match current[i].kind {
            FaultKind::LinkDown(l) => current
                .iter()
                .position(|e| e.at > down_at && e.kind == FaultKind::LinkUp(l)),
            FaultKind::SwitchDown(s) => current
                .iter()
                .position(|e| e.at > down_at && e.kind == FaultKind::SwitchUp(s)),
            _ => None,
        };
        if let Some(j) = up_idx {
            let up_at = current[j].at;
            let mid = SimTime::from_nanos((down_at.as_nanos() + up_at.as_nanos()) / 2);
            if mid > down_at && mid < up_at {
                let mut candidate = current.clone();
                candidate[j] = FaultEvent {
                    at: mid,
                    kind: candidate[j].kind,
                };
                candidate.sort_by_key(|e| e.at);
                if oracle.violates(&candidate) {
                    current = candidate;
                }
            }
        }
    }

    ShrinkOutcome {
        plan: plan_from(&current),
        events_before: original.len(),
        events_after: current.len(),
        runs_used: oracle.runs_used,
    }
}

/// Replays a repro file: returns `Ok(true)` when the recorded SLO
/// violation reproduces, `Ok(false)` when it does not, `Err` on
/// infrastructure failure.
pub fn replay_repro(repro: &ReproFile) -> Result<bool, String> {
    if repro.kind != "chaos-repro" {
        return Err(format!("not a chaos repro file (kind={})", repro.kind));
    }
    let exec = ExecConfig {
        scale: repro.scale,
        seed: repro.seed,
        duration: sonet_util::SimDuration::from_millis(repro.duration_ms),
        rate_scale: repro.rate_scale,
        max_events: None,
        fidelity: Default::default(),
    };
    let twin = super::campaign::execute_twin(&exec)?;
    let metrics = execute_run(&exec, &repro.plan)?;
    let report = evaluate(&SloSpec::default(), &metrics, &twin);
    Ok(report.violated().contains(&repro.slo.as_str()))
}
