//! The campaign driver: sweep profiles × seeds × scales, judge every run
//! against the recovery SLOs, shrink the violations.
//!
//! ## Determinism contract
//!
//! A campaign report is a pure function of its [`CampaignConfig`]. Runs
//! execute on the [`sonet_util::par`] pool but results are assembled in
//! matrix order ([`par::map_indexed`] is index-ordered), report fields are
//! simulation-derived only (no wall clock, no RSS), and the per-run event
//! budget counts engine events (deterministic), so the same config yields
//! byte-identical reports at any thread count.
//!
//! ## Resumability
//!
//! With an output directory the driver writes a manifest
//! (`campaign-manifest.json`) after every chunk of runs. A `--resume`
//! campaign whose config hash matches the manifest reuses the recorded
//! run results verbatim and continues with the first unfinished chunk.

use serde::{Deserialize, Serialize};
use sonet_netsim::{FaultPlan, FidelityConfig, FidelityMode, NullTap, SimConfig, Simulator};
use sonet_topology::Topology;
use sonet_util::{obs, par, SimDuration, SimTime};
use sonet_workload::{ServiceProfiles, Workload};
use std::path::Path;
use std::sync::Arc;

use super::profile::{known_bad_plan, ChaosProfile};
use super::shrink::{shrink_plan, ReproFile, ShrinkRecord};
use super::slo::{evaluate, SloResult, SloSpec};
use super::{fnv1a64, plan_hash};
use crate::scenario::{packet_tier_spec, ScenarioScale};
use crate::supervisor::isolate;

/// Report schema version (bump on any shape change).
pub const CAMPAIGN_SCHEMA: u32 = 1;

/// How many runs between manifest flushes (the resume granularity).
const CHUNK: usize = 8;

/// Generation-window stride of a chaos run — matches the capture layer's
/// 250 ms window so blackhole streaks are measured on the same clock.
const WINDOW: SimDuration = SimDuration::from_millis(250);

/// Everything a single engine run needs, independent of profiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecConfig {
    /// Plant size.
    pub scale: ScenarioScale,
    /// Workload + plan seed.
    pub seed: u64,
    /// Simulated run length.
    pub duration: SimDuration,
    /// Rate multiplier over the profile defaults.
    pub rate_scale: f64,
    /// Engine-event budget per run (deterministic); `None` = unlimited.
    pub max_events: Option<u64>,
    /// Engine fidelity: full packet DES (default) or the hybrid
    /// flow/packet fast path. Faulted territory is always packet-mode,
    /// so SLO verdicts see real per-packet fault behaviour either way.
    pub fidelity: FidelityMode,
}

/// Campaign-wide configuration; its canonical JSON is FNV-hashed into the
/// campaign id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Profiles to sweep, in matrix order.
    pub profiles: Vec<ChaosProfile>,
    /// Seeds per profile: `base_seed`, `base_seed + 1`, …
    pub seeds: u64,
    /// First seed of the sweep.
    pub base_seed: u64,
    /// Plant sizes to sweep.
    pub scales: Vec<ScenarioScale>,
    /// Simulated length of every run.
    pub duration: SimDuration,
    /// Rate multiplier for every run.
    pub rate_scale: f64,
    /// SLO limits every run is held to.
    pub slo: SloSpec,
    /// Per-run engine-event budget (None = unlimited).
    pub max_events_per_run: Option<u64>,
    /// Shrink at most this many violating runs (in matrix order).
    pub max_shrinks: usize,
    /// Append the seeded known-bad plan as an extra synthetic run (CI's
    /// shrinker smoke test; also `sonet chaos --inject-bad`).
    pub inject_known_bad: bool,
    /// Engine fidelity for every run in the matrix.
    pub fidelity: FidelityMode,
}

impl CampaignConfig {
    /// A small default campaign: all builtin profiles, tiny plant, 2 s
    /// runs.
    pub fn new(profiles: Vec<ChaosProfile>, seeds: u64, base_seed: u64) -> CampaignConfig {
        CampaignConfig {
            profiles,
            seeds,
            base_seed,
            scales: vec![ScenarioScale::Tiny],
            duration: SimDuration::from_secs(2),
            rate_scale: 5.0,
            slo: SloSpec::default(),
            max_events_per_run: Some(200_000_000),
            max_shrinks: 4,
            inject_known_bad: false,
            fidelity: FidelityMode::Packet,
        }
    }

    /// Stable campaign identity: `c` + FNV-1a64 of the canonical config
    /// JSON.
    pub fn campaign_id(&self) -> String {
        let json = serde_json::to_string(self).unwrap_or_default();
        format!("c{:016x}", fnv1a64(json.as_bytes()))
    }
}

/// Deterministic measurements of one engine run — the facts the SLOs are
/// evaluated over.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// RPC calls the workload issued.
    pub issued_calls: u64,
    /// Requests fully arrived at servers.
    pub completed_requests: u64,
    /// Packets handed to the network.
    pub emitted_packets: u64,
    /// Packets delivered to hosts.
    pub delivered_packets: u64,
    /// Packets lost to injected faults (incl. gray drops).
    pub fault_dropped_packets: u64,
    /// The gray-link subset of the fault drops.
    pub gray_dropped_packets: u64,
    /// Endpoints re-hashed onto healthy paths.
    pub reroutes: u64,
    /// Endpoints stranded on dead paths.
    pub reroute_failures: u64,
    /// Established connections aborted by the RTO cap.
    pub aborted_connections: u64,
    /// Handshakes abandoned at the SYN retry cap.
    pub failed_handshakes: u64,
    /// p99 end-to-end request latency in microseconds (0 when no request
    /// completed).
    pub p99_latency_us: u64,
    /// Longest streak of 250 ms windows losing packets to faults, in
    /// milliseconds.
    pub blackhole_ms: u64,
    /// Invariants the engine auditor flagged at the end of the run.
    pub audit_violations: u64,
    /// Engine events processed (the budget denominator).
    pub processed_events: u64,
}

/// The fault-free baseline at a given seed/scale, shared by every faulted
/// run of that seed/scale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwinSummary {
    /// Requests the fault-free run completed.
    pub completed_requests: u64,
    /// Its p99 request latency in microseconds.
    pub p99_latency_us: u64,
    /// Calls it issued.
    pub issued_calls: u64,
}

/// One cell of the campaign matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Profile name (`known-bad` for the injected synthetic run).
    pub profile: String,
    /// Seed the plan and workload were generated from.
    pub seed: u64,
    /// Plant size.
    pub scale: ScenarioScale,
    /// Identity of the exact plan this run executed.
    pub plan_hash: String,
    /// Events in the plan.
    pub plan_events: usize,
    /// `"ok"`, `"budget: …"`, or `"panic: …"`.
    pub status: String,
    /// SLO verdicts (empty when the run itself failed).
    pub slos: Vec<SloResult>,
    /// True when the run completed and every SLO passed.
    pub pass: bool,
    /// Measurements (None when the run itself failed).
    pub metrics: Option<RunMetrics>,
}

/// The full campaign result: the matrix plus shrink outcomes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Report schema version.
    pub schema: u32,
    /// Campaign identity (config hash).
    pub campaign_id: String,
    /// Runs in matrix order (scale-major, then profile, then seed).
    pub runs: Vec<RunRecord>,
    /// Matrix cells that completed and passed every SLO.
    pub passed: usize,
    /// Matrix cells that completed and violated at least one SLO.
    pub violated: usize,
    /// Matrix cells that did not complete (panic or budget).
    pub infra_failed: usize,
    /// Shrink outcomes for violating runs, in matrix order.
    pub shrinks: Vec<ShrinkRecord>,
}

/// Manifest written to the output directory for resume.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Manifest {
    schema: u32,
    campaign_id: String,
    completed: Vec<RunRecord>,
}

/// Runs `plan` under `exec` and returns the deterministic measurements.
/// Errors are infrastructure problems (bad config, budget exhausted), not
/// SLO violations.
pub fn execute_run(exec: &ExecConfig, plan: &FaultPlan) -> Result<RunMetrics, String> {
    let topo = Arc::new(Topology::build(packet_tier_spec(exec.scale)).map_err(|e| e.to_string())?);
    plan.validate(&topo)?;
    let mut profiles = ServiceProfiles::default();
    profiles.rate_scale = exec.rate_scale;
    let mut workload =
        Workload::new(Arc::clone(&topo), profiles, exec.seed).map_err(|e| e.to_string())?;
    let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap)
        .map_err(|e| e.to_string())?;
    if exec.fidelity == FidelityMode::Hybrid {
        sim.set_fidelity(FidelityConfig::hybrid())
            .map_err(|e| e.to_string())?;
    }
    sim.record_latencies(true);
    sim.inject_faults(plan).map_err(|e| e.to_string())?;

    // Window loop: generate traffic, advance, poll the live counters for
    // the blackhole streak. A window in which injected faults eat packets
    // is "black"; the SLO bounds the longest consecutive streak — a
    // recovered outage stops dropping once reroutes and repairs land,
    // while an unrecovered one stays black to the end of the run.
    let mut t = SimTime::ZERO;
    let end = SimTime::ZERO + exec.duration;
    let mut prev = sim.live_counters();
    let mut streak = 0u64;
    let mut worst_streak = 0u64;
    while t < end {
        t = (t + WINDOW).min(end);
        workload.generate(&mut sim, t).map_err(|e| e.to_string())?;
        sim.run_until(t);
        let now = sim.live_counters();
        let lost = now.fault_dropped_packets - prev.fault_dropped_packets;
        if lost > 0 {
            streak += 1;
            worst_streak = worst_streak.max(streak);
        } else {
            streak = 0;
        }
        prev = now;
        if let Some(budget) = exec.max_events {
            if sim.processed_events() > budget {
                return Err(format!(
                    "budget: {} engine events exceed the {budget}-event budget at {t:?}",
                    sim.processed_events()
                ));
            }
        }
    }
    // Drain in-flight work so aborts and completions settle.
    sim.run_to_quiescence();
    let audit_violations = match sim.audit() {
        Ok(()) => 0,
        Err(report) => report.violations.len() as u64,
    };
    let processed_events = sim.processed_events();
    let issued_calls = workload.issued_calls();
    let (outputs, _) = sim.finish();

    let mut lat_us: Vec<u64> = outputs
        .rpc_latencies
        .iter()
        .map(|d| d.as_micros())
        .collect();
    lat_us.sort_unstable();
    let p99_latency_us = if lat_us.is_empty() {
        0
    } else {
        lat_us[(lat_us.len() - 1) * 99 / 100]
    };

    Ok(RunMetrics {
        issued_calls,
        completed_requests: outputs.completed_requests,
        emitted_packets: outputs.emitted_packets,
        delivered_packets: outputs.delivered_packets,
        fault_dropped_packets: outputs
            .link_counters
            .iter()
            .map(|c| c.fault_drop_packets)
            .sum(),
        gray_dropped_packets: outputs.gray_dropped_packets,
        reroutes: outputs.reroutes,
        reroute_failures: outputs.reroute_failures,
        aborted_connections: outputs.aborted_connections,
        failed_handshakes: outputs.failed_handshakes,
        p99_latency_us,
        blackhole_ms: worst_streak * WINDOW.as_millis(),
        audit_violations,
        processed_events,
    })
}

/// Runs the fault-free twin for a seed/scale.
pub fn execute_twin(exec: &ExecConfig) -> Result<TwinSummary, String> {
    let m = execute_run(exec, &FaultPlan::new())?;
    Ok(TwinSummary {
        completed_requests: m.completed_requests,
        p99_latency_us: m.p99_latency_us,
        issued_calls: m.issued_calls,
    })
}

/// One planned cell of the matrix, before execution.
struct RunSpec {
    profile: String,
    seed: u64,
    scale: ScenarioScale,
    plan: FaultPlan,
}

fn build_specs(cfg: &CampaignConfig) -> Result<Vec<RunSpec>, String> {
    let mut specs = Vec::new();
    for &scale in &cfg.scales {
        let topo = Arc::new(Topology::build(packet_tier_spec(scale)).map_err(|e| e.to_string())?);
        for profile in &cfg.profiles {
            for k in 0..cfg.seeds {
                let seed = cfg.base_seed + k;
                let plan = profile.generate(&topo, seed, cfg.duration);
                specs.push(RunSpec {
                    profile: profile.name.clone(),
                    seed,
                    scale,
                    plan,
                });
            }
        }
        if cfg.inject_known_bad {
            specs.push(RunSpec {
                profile: "known-bad".into(),
                seed: cfg.base_seed,
                scale,
                plan: known_bad_plan(&topo, cfg.duration),
            });
        }
    }
    Ok(specs)
}

fn read_manifest(dir: &Path, campaign_id: &str) -> Option<Vec<RunRecord>> {
    let raw = std::fs::read_to_string(dir.join("campaign-manifest.json")).ok()?;
    let m: Manifest = serde_json::from_str(&raw).ok()?;
    (m.schema == CAMPAIGN_SCHEMA && m.campaign_id == campaign_id).then_some(m.completed)
}

fn write_manifest(dir: &Path, campaign_id: &str, completed: &[RunRecord]) -> Result<(), String> {
    let m = Manifest {
        schema: CAMPAIGN_SCHEMA,
        campaign_id: campaign_id.to_string(),
        completed: completed.to_vec(),
    };
    let json = serde_json::to_string(&m).map_err(|e| e.to_string())?;
    let tmp = dir.join("campaign-manifest.json.tmp");
    std::fs::write(&tmp, json).map_err(|e| e.to_string())?;
    std::fs::rename(&tmp, dir.join("campaign-manifest.json")).map_err(|e| e.to_string())
}

/// Drives a full campaign: twins, faulted runs, SLO evaluation, and
/// shrinking. `out_dir` (when given) receives the manifest, the report,
/// and one repro file per shrunk violation; `resume` reuses a matching
/// manifest's completed runs.
pub fn run_campaign(
    cfg: &CampaignConfig,
    out_dir: Option<&Path>,
    resume: bool,
) -> Result<CampaignReport, String> {
    let campaign_id = cfg.campaign_id();
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    }
    let specs = build_specs(cfg)?;
    let threads = par::resolve_threads(None);

    // Phase 1: fault-free twins, one per (scale, seed) in use.
    let _span = obs::trace::span("chaos.twins");
    let mut twin_keys: Vec<(ScenarioScale, u64)> =
        specs.iter().map(|s| (s.scale, s.seed)).collect();
    twin_keys.sort_unstable_by_key(|&(s, seed)| (scale_ord(s), seed));
    twin_keys.dedup();
    let twin_results: Vec<Result<TwinSummary, String>> =
        par::map_indexed(threads, twin_keys.len(), |i| {
            let (scale, seed) = twin_keys[i];
            let exec = ExecConfig {
                scale,
                seed,
                duration: cfg.duration,
                rate_scale: cfg.rate_scale,
                max_events: cfg.max_events_per_run,
                fidelity: cfg.fidelity,
            };
            isolate(move || execute_twin(&exec)).unwrap_or_else(|p| Err(format!("panic: {p}")))
        });
    drop(_span);
    let twin_of = |scale: ScenarioScale, seed: u64| -> Result<TwinSummary, String> {
        let i = twin_keys
            .iter()
            .position(|&(s, sd)| s == scale && sd == seed)
            .expect("twin key exists for every spec");
        twin_results[i].clone()
    };

    // Phase 2: the faulted matrix, chunked for manifest flushes.
    let _span = obs::trace::span("chaos.runs");
    let mut runs: Vec<RunRecord> = if resume {
        out_dir
            .and_then(|d| read_manifest(d, &campaign_id))
            .unwrap_or_default()
    } else {
        Vec::new()
    };
    // Only whole chunks are trustworthy (the manifest is flushed per
    // chunk), and a manifest longer than the matrix means a stale config.
    runs.truncate(specs.len().min(runs.len()));
    runs.truncate(runs.len() - runs.len() % CHUNK);
    while runs.len() < specs.len() {
        let lo = runs.len();
        let hi = (lo + CHUNK).min(specs.len());
        let chunk: Vec<RunRecord> = par::map_indexed(threads, hi - lo, |j| {
            let spec = &specs[lo + j];
            let exec = ExecConfig {
                scale: spec.scale,
                seed: spec.seed,
                duration: cfg.duration,
                rate_scale: cfg.rate_scale,
                max_events: cfg.max_events_per_run,
                fidelity: cfg.fidelity,
            };
            let hash = plan_hash(&spec.plan);
            let outcome = isolate(|| execute_run(&exec, &spec.plan))
                .unwrap_or_else(|p| Err(format!("panic: {p}")));
            match outcome {
                Ok(metrics) => {
                    let slo = match twin_of(spec.scale, spec.seed) {
                        Ok(twin) => evaluate(&cfg.slo, &metrics, &twin),
                        Err(e) => {
                            return RunRecord {
                                profile: spec.profile.clone(),
                                seed: spec.seed,
                                scale: spec.scale,
                                plan_hash: hash,
                                plan_events: spec.plan.len(),
                                status: format!("twin failed: {e}"),
                                slos: Vec::new(),
                                pass: false,
                                metrics: Some(metrics),
                            }
                        }
                    };
                    let pass = slo.pass();
                    RunRecord {
                        profile: spec.profile.clone(),
                        seed: spec.seed,
                        scale: spec.scale,
                        plan_hash: hash,
                        plan_events: spec.plan.len(),
                        status: "ok".into(),
                        slos: slo.results,
                        pass,
                        metrics: Some(metrics),
                    }
                }
                Err(e) => RunRecord {
                    profile: spec.profile.clone(),
                    seed: spec.seed,
                    scale: spec.scale,
                    plan_hash: hash,
                    plan_events: spec.plan.len(),
                    status: e,
                    slos: Vec::new(),
                    pass: false,
                    metrics: None,
                },
            }
        });
        runs.extend(chunk);
        if let Some(dir) = out_dir {
            write_manifest(dir, &campaign_id, &runs)?;
        }
    }
    drop(_span);

    // Phase 3: shrink the first `max_shrinks` SLO violations.
    let _span = obs::trace::span("chaos.shrink");
    let mut shrinks = Vec::new();
    for (i, run) in runs.iter().enumerate() {
        if shrinks.len() >= cfg.max_shrinks {
            break;
        }
        if run.status != "ok" || run.pass {
            continue;
        }
        let violated: Vec<String> = run
            .slos
            .iter()
            .filter(|s| !s.pass)
            .map(|s| s.name.clone())
            .collect();
        let Some(target) = violated.first() else {
            continue;
        };
        let exec = ExecConfig {
            scale: run.scale,
            seed: run.seed,
            duration: cfg.duration,
            rate_scale: cfg.rate_scale,
            max_events: cfg.max_events_per_run,
            fidelity: cfg.fidelity,
        };
        let twin = twin_of(run.scale, run.seed)?;
        let plan = specs[i].plan.clone();
        let outcome = shrink_plan(&exec, &twin, &cfg.slo, &plan, target, 64);
        let repro = ReproFile {
            schema: 1,
            kind: "chaos-repro".into(),
            profile: run.profile.clone(),
            campaign_id: campaign_id.clone(),
            scale: run.scale,
            seed: run.seed,
            duration_ms: cfg.duration.as_millis(),
            rate_scale: cfg.rate_scale,
            slo: target.clone(),
            plan_hash: plan_hash(&outcome.plan),
            plan: outcome.plan.clone(),
        };
        let mut repro_path = String::new();
        if let Some(dir) = out_dir {
            let name = format!("repro-{}-{}.json", run.profile, run.seed);
            let path = dir.join(&name);
            let json = serde_json::to_string_pretty(&repro).map_err(|e| e.to_string())?;
            std::fs::write(&path, json).map_err(|e| e.to_string())?;
            repro_path = name;
        }
        obs::counter_add!("chaos.shrinks", 1);
        shrinks.push(ShrinkRecord {
            profile: run.profile.clone(),
            seed: run.seed,
            scale: run.scale,
            violated_slo: target.clone(),
            events_before: outcome.events_before,
            events_after: outcome.events_after,
            runs_used: outcome.runs_used,
            shrunk_plan_hash: plan_hash(&outcome.plan),
            repro_file: repro_path,
        });
    }
    drop(_span);

    let passed = runs.iter().filter(|r| r.status == "ok" && r.pass).count();
    let violated = runs.iter().filter(|r| r.status == "ok" && !r.pass).count();
    let infra_failed = runs.iter().filter(|r| r.status != "ok").count();
    obs::counter_add!("chaos.runs", runs.len() as u64);
    obs::counter_add!("chaos.violations", violated as u64);
    obs::gauge_set!("chaos.infra_failures", infra_failed as u64);

    let report = CampaignReport {
        schema: CAMPAIGN_SCHEMA,
        campaign_id,
        runs,
        passed,
        violated,
        infra_failed,
        shrinks,
    };
    if let Some(dir) = out_dir {
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        std::fs::write(dir.join("campaign-report.json"), json).map_err(|e| e.to_string())?;
    }
    Ok(report)
}

/// Stable ordering key for scales (matrix order).
fn scale_ord(s: ScenarioScale) -> u8 {
    match s {
        ScenarioScale::Tiny => 0,
        ScenarioScale::Standard => 1,
        ScenarioScale::Fleet => 2,
    }
}

impl CampaignReport {
    /// ASCII pass/fail matrix for terminal output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "chaos campaign {}: {} runs — {} passed, {} violated, {} infra-failed\n",
            self.campaign_id,
            self.runs.len(),
            self.passed,
            self.violated,
            self.infra_failed
        ));
        for r in &self.runs {
            let verdict = if r.status != "ok" {
                format!("INFRA ({})", r.status)
            } else if r.pass {
                "pass".into()
            } else {
                let names: Vec<&str> = r
                    .slos
                    .iter()
                    .filter(|s| !s.pass)
                    .map(|s| s.name.as_str())
                    .collect();
                format!("VIOLATED [{}]", names.join(", "))
            };
            out.push_str(&format!(
                "  {:>14} seed={} {:?} plan={} ({} ev): {}\n",
                r.profile, r.seed, r.scale, r.plan_hash, r.plan_events, verdict
            ));
        }
        for s in &self.shrinks {
            out.push_str(&format!(
                "  shrink {} seed={}: {} → {} events ({} runs) for {} → {}\n",
                s.profile,
                s.seed,
                s.events_before,
                s.events_after,
                s.runs_used,
                s.violated_slo,
                if s.repro_file.is_empty() {
                    "(no repro file)"
                } else {
                    &s.repro_file
                }
            ));
        }
        out
    }
}
