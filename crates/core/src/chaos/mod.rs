//! Deterministic chaos campaigns: generative fault sweeps, recovery SLOs,
//! and automatic fault-plan shrinking.
//!
//! The paper's Fabric argument (§6) is that the plant must *degrade
//! gracefully* — load balancing and fault tolerance hinge on surviving
//! link/switch loss with bounded impact. This module turns that claim into
//! a search problem:
//!
//! 1. **Profiles** ([`profile`]): a seeded grammar of [`ChaosElement`]s —
//!    correlated rack/pod outages (via [`sonet_topology::FailureDomain`]),
//!    flapping links, gray failures, asymmetric partitions, degraded-rate
//!    ramps — each profile expanding deterministically into a
//!    [`FaultPlan`](sonet_netsim::FaultPlan) for a given `(topology, seed)`.
//! 2. **Campaigns** ([`campaign`]): sweep profiles × seeds × scales on the
//!    [`sonet_util::par`] pool, each run panic-isolated and event-budgeted,
//!    evaluated against declarative recovery SLOs ([`slo`]) plus the
//!    engine's invariant auditor. Reports contain only simulation-derived
//!    fields, so the same campaign config yields byte-identical reports at
//!    any `--threads`.
//! 3. **Shrinking** ([`shrink`]): any SLO violation is delta-debugged —
//!    drop event subsets, narrow fault windows, reduce severities — until
//!    a minimal plan still reproducing the violation remains, emitted as a
//!    committed-format repro file that replays standalone.

pub mod campaign;
pub mod profile;
pub mod shrink;
pub mod slo;

pub use campaign::{
    run_campaign, CampaignConfig, CampaignReport, ExecConfig, RunMetrics, RunRecord, TwinSummary,
};
pub use profile::{ChaosElement, ChaosProfile};
pub use shrink::{replay_repro, shrink_plan, ReproFile, ShrinkOutcome, ShrinkRecord};
pub use slo::{SloReport, SloResult, SloSpec};

use sonet_netsim::FaultPlan;

/// FNV-1a 64-bit over `bytes` — the same construction RUNINFO uses for
/// its config hash, duplicated here because plan hashes must be computable
/// without an obs session.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable identity of a fault plan: `f` + FNV-1a64 of its canonical JSON.
/// Recorded in RUNINFO, trace metadata, campaign reports, and repro files
/// so a failing run is attributable from artifacts alone.
pub fn plan_hash(plan: &FaultPlan) -> String {
    let json = serde_json::to_string(plan).unwrap_or_default();
    format!("f{:016x}", fnv1a64(json.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonet_netsim::FaultKind;
    use sonet_topology::LinkId;
    use sonet_util::SimTime;

    #[test]
    fn plan_hash_is_stable_and_content_sensitive() {
        let a = FaultPlan::new().at(SimTime::from_millis(5), FaultKind::LinkDown(LinkId(3)));
        let b = FaultPlan::new().at(SimTime::from_millis(5), FaultKind::LinkDown(LinkId(3)));
        let c = FaultPlan::new().at(SimTime::from_millis(6), FaultKind::LinkDown(LinkId(3)));
        assert_eq!(plan_hash(&a), plan_hash(&b));
        assert_ne!(plan_hash(&a), plan_hash(&c));
        assert!(plan_hash(&a).starts_with('f'));
        assert_eq!(plan_hash(&a).len(), 17);
    }
}
