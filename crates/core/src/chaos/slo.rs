//! Declarative recovery SLOs.
//!
//! Each chaos run is judged against five objectives, all computed from
//! deterministic simulation outputs (never wall clock):
//!
//! | name                | meaning                                            |
//! |---------------------|----------------------------------------------------|
//! | `blackhole_ms`      | longest streak of 250 ms windows losing packets to injected faults |
//! | `fct_p99_inflation` | p99 request latency vs. the fault-free twin run    |
//! | `abort_fraction`    | aborted connections + failed handshakes per issued call |
//! | `conservation`      | engine invariant auditor (packet conservation)     |
//! | `completion_fraction` | requests completed vs. the fault-free twin       |

use serde::{Deserialize, Serialize};
use sonet_util::SimDuration;

use super::campaign::{RunMetrics, TwinSummary};

/// Limits for the recovery SLOs. All limits are inclusive ("actual ≤
/// limit passes", or ≥ for floors).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Longest tolerated blackhole streak.
    pub max_blackhole: SimDuration,
    /// Highest tolerated p99 latency ratio vs. the fault-free twin.
    pub max_fct_inflation: f64,
    /// Highest tolerated (aborts + failed handshakes) / issued calls.
    pub max_abort_fraction: f64,
    /// Lowest tolerated completed-requests ratio vs. the fault-free twin.
    pub min_completion_fraction: f64,
}

impl Default for SloSpec {
    fn default() -> SloSpec {
        SloSpec {
            max_blackhole: SimDuration::from_millis(1_000),
            max_fct_inflation: 4.0,
            max_abort_fraction: 0.05,
            min_completion_fraction: 0.50,
        }
    }
}

/// One evaluated SLO: the measured value, the limit it was held to, and
/// the verdict. `margin` is `limit - actual` for ceilings and `actual -
/// limit` for floors, so positive always means headroom.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloResult {
    /// SLO name (stable report key).
    pub name: String,
    /// Measured value.
    pub actual: f64,
    /// Limit the value was held to.
    pub limit: f64,
    /// Headroom (positive = passing with room to spare).
    pub margin: f64,
    /// Verdict.
    pub pass: bool,
}

impl SloResult {
    fn ceiling(name: &str, actual: f64, limit: f64) -> SloResult {
        SloResult {
            name: name.into(),
            actual,
            limit,
            margin: limit - actual,
            pass: actual <= limit,
        }
    }

    fn floor(name: &str, actual: f64, limit: f64) -> SloResult {
        SloResult {
            name: name.into(),
            actual,
            limit,
            margin: actual - limit,
            pass: actual >= limit,
        }
    }
}

/// The full verdict for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// Every SLO, in canonical order.
    pub results: Vec<SloResult>,
}

impl SloReport {
    /// True when every SLO passed.
    pub fn pass(&self) -> bool {
        self.results.iter().all(|r| r.pass)
    }

    /// Names of violated SLOs, in canonical order.
    pub fn violated(&self) -> Vec<&str> {
        self.results
            .iter()
            .filter(|r| !r.pass)
            .map(|r| r.name.as_str())
            .collect()
    }

    /// The violated SLO with the worst (most negative) margin.
    pub fn worst_violation(&self) -> Option<&SloResult> {
        self.results
            .iter()
            .filter(|r| !r.pass)
            .min_by(|a, b| a.margin.partial_cmp(&b.margin).expect("finite margins"))
    }
}

/// Evaluates `metrics` from a faulted run against `spec`, using `twin`
/// (the fault-free run at the same seed/scale) as the baseline for the
/// relative SLOs.
pub fn evaluate(spec: &SloSpec, metrics: &RunMetrics, twin: &TwinSummary) -> SloReport {
    let mut results = Vec::with_capacity(5);

    results.push(SloResult::ceiling(
        "blackhole_ms",
        metrics.blackhole_ms as f64,
        spec.max_blackhole.as_millis() as f64,
    ));

    // Latency inflation needs both sides to have a baseline; a silent twin
    // (no recorded latencies) makes the ratio 1.0 — degenerate scenarios
    // should not fail this SLO, they fail the completion floor instead.
    let inflation = if twin.p99_latency_us > 0 && metrics.p99_latency_us > 0 {
        metrics.p99_latency_us as f64 / twin.p99_latency_us as f64
    } else {
        1.0
    };
    results.push(SloResult::ceiling(
        "fct_p99_inflation",
        inflation,
        spec.max_fct_inflation,
    ));

    let aborts = metrics.aborted_connections + metrics.failed_handshakes;
    let abort_fraction = aborts as f64 / metrics.issued_calls.max(1) as f64;
    results.push(SloResult::ceiling(
        "abort_fraction",
        abort_fraction,
        spec.max_abort_fraction,
    ));

    // The auditor is binary: actual = number of violated invariants.
    results.push(SloResult::ceiling(
        "conservation",
        metrics.audit_violations as f64,
        0.0,
    ));

    let completion = metrics.completed_requests as f64 / twin.completed_requests.max(1) as f64;
    results.push(SloResult::floor(
        "completion_fraction",
        completion,
        spec.min_completion_fraction,
    ));

    SloReport { results }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> RunMetrics {
        RunMetrics {
            issued_calls: 1000,
            completed_requests: 950,
            emitted_packets: 10_000,
            delivered_packets: 9_900,
            fault_dropped_packets: 100,
            gray_dropped_packets: 40,
            reroutes: 3,
            reroute_failures: 0,
            aborted_connections: 5,
            failed_handshakes: 5,
            p99_latency_us: 2_000,
            blackhole_ms: 500,
            audit_violations: 0,
            processed_events: 123_456,
        }
    }

    fn twin() -> TwinSummary {
        TwinSummary {
            completed_requests: 1000,
            p99_latency_us: 1_000,
            issued_calls: 1000,
        }
    }

    #[test]
    fn healthy_run_passes_all_five() {
        let report = evaluate(&SloSpec::default(), &metrics(), &twin());
        assert_eq!(report.results.len(), 5);
        assert!(report.pass(), "violated: {:?}", report.violated());
        assert!(report.worst_violation().is_none());
    }

    #[test]
    fn each_limit_trips_its_own_slo() {
        let spec = SloSpec::default();
        let t = twin();

        let mut m = metrics();
        m.blackhole_ms = 1_750;
        assert_eq!(evaluate(&spec, &m, &t).violated(), vec!["blackhole_ms"]);

        let mut m = metrics();
        m.p99_latency_us = 10_000;
        assert_eq!(
            evaluate(&spec, &m, &t).violated(),
            vec!["fct_p99_inflation"]
        );

        let mut m = metrics();
        m.aborted_connections = 100;
        assert_eq!(evaluate(&spec, &m, &t).violated(), vec!["abort_fraction"]);

        let mut m = metrics();
        m.audit_violations = 2;
        assert_eq!(evaluate(&spec, &m, &t).violated(), vec!["conservation"]);

        let mut m = metrics();
        m.completed_requests = 100;
        assert_eq!(
            evaluate(&spec, &m, &t).violated(),
            vec!["completion_fraction"]
        );
    }

    #[test]
    fn silent_twin_never_trips_latency_inflation() {
        let spec = SloSpec::default();
        let mut t = twin();
        t.p99_latency_us = 0;
        let report = evaluate(&spec, &metrics(), &t);
        let lat = report
            .results
            .iter()
            .find(|r| r.name == "fct_p99_inflation")
            .expect("present");
        assert!(lat.pass);
        assert_eq!(lat.actual, 1.0);
    }
}
