//! The chaos profile grammar.
//!
//! A [`ChaosProfile`] is a named list of [`ChaosElement`]s; each element is
//! a *generator* of correlated fault events, not a fixed event list. The
//! expansion `profile.generate(topo, seed, horizon)` is a pure function of
//! its arguments: element `i` draws from `Rng::new(seed).fork("chaos")
//! .fork(name).fork_idx("elem", i)`, so adding or removing elements never
//! perturbs the draws of the others, and the same `(profile, topo, seed)`
//! always yields the same [`FaultPlan`].

use serde::{Deserialize, Serialize};
use sonet_netsim::{FaultKind, FaultPlan};
use sonet_topology::{enumerate_domains, FailureDomain, LinkId, Topology};
use sonet_util::{Rng, SimDuration, SimTime};

/// One generative element of a chaos profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChaosElement {
    /// Take `count` whole racks dark (their RSWs go down, correlated) and,
    /// when `recover` is set, bring them back before the horizon.
    RackOutage {
        /// Number of distinct racks to fail.
        count: u32,
        /// Whether the RSWs come back up inside the run.
        recover: bool,
    },
    /// Partial pod outage: fail `csws` of one cluster's 4-post CSW bank
    /// (correlated — same pod), recovering inside the run when `recover`.
    PodOutage {
        /// CSWs of the chosen pod to fail (clamped to the bank size).
        csws: u32,
        /// Whether the CSWs come back up inside the run.
        recover: bool,
    },
    /// Flapping fabric links: each chosen link runs a down/up train.
    LinkFlaps {
        /// Number of distinct fabric links to flap.
        links: u32,
        /// Down/up cycles per link.
        cycles: u32,
    },
    /// Gray failures on fabric links: routing keeps using them while they
    /// silently eat a seeded fraction of offered packets; healed before
    /// the horizon.
    GrayCore {
        /// Number of distinct fabric links to gray out.
        links: u32,
        /// Inclusive lower bound on the drop fraction.
        min_fraction: f64,
        /// Inclusive upper bound on the drop fraction.
        max_fraction: f64,
    },
    /// Asymmetric partitions: one *direction* of a fabric cable goes down
    /// while the reverse direction stays up (links are directed), healing
    /// before the horizon.
    AsymPartition {
        /// Number of single-direction cuts.
        links: u32,
    },
    /// Brownout ramp: a fabric link's line rate steps down toward
    /// `floor_factor` and back up, one DegradeLink event per step.
    DegradedRamp {
        /// Number of distinct fabric links to ramp.
        links: u32,
        /// Steps down (and back up) per link.
        steps: u32,
        /// Lowest rate factor reached at the bottom of the ramp.
        floor_factor: f64,
    },
}

/// A named, seeded fault-scenario generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosProfile {
    /// Stable name — campaign matrix row key, RUNINFO note, repro field.
    pub name: String,
    /// Elements expanded independently into the plan.
    pub elements: Vec<ChaosElement>,
}

/// Fabric links (switch↔switch, no host access links), in id order —
/// the candidate pool for link-level chaos.
fn fabric_links(topo: &Topology) -> Vec<LinkId> {
    topo.links()
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.touches_host())
        .map(|(i, _)| LinkId(i as u32))
        .collect()
}

/// Draw `count` distinct items from `pool` (all of them if `count`
/// exceeds the pool).
fn draw_distinct<T: Copy>(rng: &mut Rng, pool: &[T], count: usize) -> Vec<T> {
    let mut idx: Vec<usize> = (0..pool.len()).collect();
    rng.shuffle(&mut idx);
    idx.truncate(count.min(pool.len()));
    idx.sort_unstable();
    idx.into_iter().map(|i| pool[i]).collect()
}

impl ChaosProfile {
    /// Expands the profile into a deterministic [`FaultPlan`] over
    /// `[0, horizon)`. Every event lands strictly inside the horizon so a
    /// run of that length observes the whole scenario.
    pub fn generate(&self, topo: &Topology, seed: u64, horizon: SimDuration) -> FaultPlan {
        let root = Rng::new(seed).fork("chaos").fork(&self.name);
        let h_ms = horizon.as_millis().max(10);
        let at_frac = |f: f64| SimTime::from_millis(((h_ms as f64) * f) as u64);
        let fabric = fabric_links(topo);
        let domains = enumerate_domains(topo);
        let mut plan = FaultPlan::new();
        for (i, elem) in self.elements.iter().enumerate() {
            let mut rng = root.fork_idx("elem", i as u64);
            match *elem {
                ChaosElement::RackOutage { count, recover } => {
                    let racks: Vec<FailureDomain> = domains
                        .iter()
                        .copied()
                        .filter(|d| matches!(d, FailureDomain::Rack(_)))
                        .collect();
                    let start = at_frac(rng.range_f64(0.10, 0.25));
                    let up = at_frac(rng.range_f64(0.35, 0.45));
                    for dom in draw_distinct(&mut rng, &racks, count as usize) {
                        for sw in dom.switches(topo) {
                            plan = plan.at(start, FaultKind::SwitchDown(sw));
                            if recover {
                                plan = plan.at(up, FaultKind::SwitchUp(sw));
                            }
                        }
                    }
                }
                ChaosElement::PodOutage { csws, recover } => {
                    let pods: Vec<FailureDomain> = domains
                        .iter()
                        .copied()
                        .filter(|d| matches!(d, FailureDomain::Pod(_)))
                        .collect();
                    let dom = *rng.pick(&pods);
                    let bank = dom.switches(topo);
                    let start = at_frac(rng.range_f64(0.10, 0.25));
                    let up = at_frac(rng.range_f64(0.35, 0.45));
                    for sw in draw_distinct(&mut rng, &bank, csws as usize) {
                        plan = plan.at(start, FaultKind::SwitchDown(sw));
                        if recover {
                            plan = plan.at(up, FaultKind::SwitchUp(sw));
                        }
                    }
                }
                ChaosElement::LinkFlaps { links, cycles } => {
                    for link in draw_distinct(&mut rng, &fabric, links as usize) {
                        let start = at_frac(rng.range_f64(0.10, 0.40));
                        // Keep the whole train inside the horizon and the
                        // drop streak under the blackhole SLO.
                        let span_ms = (h_ms as f64 * 0.3) as u64;
                        let half =
                            SimDuration::from_millis((span_ms / (2 * cycles.max(1) as u64)).max(1));
                        plan = plan.at(
                            start,
                            FaultKind::FlapLink {
                                link,
                                half_period: half,
                                cycles: cycles.max(1),
                            },
                        );
                    }
                }
                ChaosElement::GrayCore {
                    links,
                    min_fraction,
                    max_fraction,
                } => {
                    for link in draw_distinct(&mut rng, &fabric, links as usize) {
                        let start = at_frac(rng.range_f64(0.10, 0.25));
                        let heal = at_frac(rng.range_f64(0.35, 0.45));
                        let frac = rng.range_f64(min_fraction, max_fraction);
                        plan = plan.at(
                            start,
                            FaultKind::GrayLink {
                                link,
                                drop_fraction: frac,
                            },
                        );
                        plan = plan.at(
                            heal,
                            FaultKind::GrayLink {
                                link,
                                drop_fraction: 0.0,
                            },
                        );
                    }
                }
                ChaosElement::AsymPartition { links } => {
                    for link in draw_distinct(&mut rng, &fabric, links as usize) {
                        let start = at_frac(rng.range_f64(0.10, 0.25));
                        let heal = at_frac(rng.range_f64(0.35, 0.45));
                        plan = plan.at(start, FaultKind::LinkDown(link));
                        plan = plan.at(heal, FaultKind::LinkUp(link));
                    }
                }
                ChaosElement::DegradedRamp {
                    links,
                    steps,
                    floor_factor,
                } => {
                    let steps = steps.max(1);
                    for link in draw_distinct(&mut rng, &fabric, links as usize) {
                        let start = rng.range_f64(0.10, 0.25);
                        let end = rng.range_f64(0.65, 0.85);
                        let n = steps as f64;
                        for s in 0..steps {
                            // Down the ramp…
                            let f = 1.0 - (1.0 - floor_factor) * ((s + 1) as f64 / n);
                            let t = start + (end - start) * 0.5 * (s as f64 / n);
                            plan = plan.at(
                                at_frac(t),
                                FaultKind::DegradeLink {
                                    link,
                                    rate_factor: f.max(0.01),
                                },
                            );
                        }
                        for s in 0..steps {
                            // …and back up, ending at nominal rate.
                            let f = floor_factor + (1.0 - floor_factor) * ((s + 1) as f64 / n);
                            let t = start + (end - start) * (0.5 + 0.5 * ((s + 1) as f64 / n));
                            plan = plan.at(
                                at_frac(t),
                                FaultKind::DegradeLink {
                                    link,
                                    rate_factor: f.min(1.0),
                                },
                            );
                        }
                    }
                }
            }
        }
        plan
    }

    /// The built-in profile library, in matrix order.
    pub fn builtin() -> Vec<ChaosProfile> {
        vec![
            ChaosProfile {
                name: "rack-outage".into(),
                elements: vec![ChaosElement::RackOutage {
                    count: 1,
                    recover: true,
                }],
            },
            ChaosProfile {
                name: "pod-outage".into(),
                elements: vec![ChaosElement::PodOutage {
                    csws: 2,
                    recover: true,
                }],
            },
            ChaosProfile {
                name: "flaky-links".into(),
                elements: vec![ChaosElement::LinkFlaps {
                    links: 2,
                    cycles: 3,
                }],
            },
            ChaosProfile {
                name: "gray-core".into(),
                elements: vec![ChaosElement::GrayCore {
                    links: 2,
                    min_fraction: 0.05,
                    max_fraction: 0.25,
                }],
            },
            ChaosProfile {
                name: "asym-partition".into(),
                elements: vec![ChaosElement::AsymPartition { links: 2 }],
            },
            ChaosProfile {
                name: "brownout".into(),
                elements: vec![ChaosElement::DegradedRamp {
                    links: 2,
                    steps: 3,
                    floor_factor: 0.25,
                }],
            },
            ChaosProfile {
                name: "compound".into(),
                elements: vec![
                    ChaosElement::RackOutage {
                        count: 1,
                        recover: true,
                    },
                    ChaosElement::GrayCore {
                        links: 1,
                        min_fraction: 0.05,
                        max_fraction: 0.15,
                    },
                    ChaosElement::LinkFlaps {
                        links: 1,
                        cycles: 2,
                    },
                ],
            },
        ]
    }

    /// Looks up builtin profiles by a CLI-style selector: `all`, or a
    /// comma-separated name list.
    pub fn select(selector: &str) -> Result<Vec<ChaosProfile>, String> {
        let lib = ChaosProfile::builtin();
        if selector == "all" {
            return Ok(lib);
        }
        let mut out = Vec::new();
        for name in selector.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match lib.iter().find(|p| p.name == name) {
                Some(p) => out.push(p.clone()),
                None => {
                    let known: Vec<&str> = lib.iter().map(|p| p.name.as_str()).collect();
                    return Err(format!(
                        "unknown profile '{name}' (known: {})",
                        known.join(", ")
                    ));
                }
            }
        }
        if out.is_empty() {
            return Err("no profiles selected".into());
        }
        Ok(out)
    }
}

/// A deliberately SLO-violating plan for CI's shrinker smoke test: one
/// permanent RSW outage (the actual violation) buried under decoy events
/// the shrinker must strip away. Deterministic — no RNG.
pub fn known_bad_plan(topo: &Topology, horizon: SimDuration) -> FaultPlan {
    let rsw0 = topo.racks()[0].rsw;
    let fabric = fabric_links(topo);
    let mid = SimTime::from_millis(horizon.as_millis() / 3);
    let mut plan = FaultPlan::new()
        // The culprit: rack 0 goes dark early and never recovers.
        .at(
            SimTime::from_millis(horizon.as_millis() / 10),
            FaultKind::SwitchDown(rsw0),
        )
        // Decoys: harmless telemetry loss and mild degradations.
        .at(mid, FaultKind::MirrorLoss { fraction: 0.05 })
        .at(mid, FaultKind::FbflowLoss { fraction: 0.05 });
    if let Some(&l) = fabric.first() {
        plan = plan.at(
            mid,
            FaultKind::DegradeLink {
                link: l,
                rate_factor: 0.95,
            },
        );
    }
    if let Some(&l) = fabric.last() {
        plan = plan.at(
            mid,
            FaultKind::GrayLink {
                link: l,
                drop_fraction: 0.01,
            },
        );
        plan = plan.at(
            SimTime::from_millis(horizon.as_millis() / 2),
            FaultKind::GrayLink {
                link: l,
                drop_fraction: 0.0,
            },
        );
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{packet_tier_spec, ScenarioScale};
    use std::sync::Arc;

    fn topo() -> Arc<Topology> {
        Arc::new(Topology::build(packet_tier_spec(ScenarioScale::Tiny)).expect("build"))
    }

    #[test]
    fn generation_is_deterministic_and_valid() {
        let t = topo();
        let h = SimDuration::from_secs(2);
        for p in ChaosProfile::builtin() {
            let a = p.generate(&t, 7, h);
            let b = p.generate(&t, 7, h);
            assert_eq!(a, b, "{} must be deterministic", p.name);
            assert!(!a.is_empty(), "{} must generate events", p.name);
            a.validate(&t).unwrap_or_else(|e| panic!("{}: {e}", p.name));
            let c = p.generate(&t, 8, h);
            assert_ne!(a, c, "{} must vary with the seed", p.name);
            for ev in a.events() {
                assert!(
                    ev.at < SimTime::ZERO + h,
                    "{}: event at {:?} outside horizon",
                    p.name,
                    ev.at
                );
            }
        }
    }

    #[test]
    fn selector_resolves_names_and_rejects_unknown() {
        assert_eq!(
            ChaosProfile::select("all").expect("all").len(),
            ChaosProfile::builtin().len()
        );
        let two = ChaosProfile::select("gray-core, rack-outage").expect("pair");
        assert_eq!(two.len(), 2);
        assert_eq!(two[0].name, "gray-core");
        assert!(ChaosProfile::select("nope").is_err());
    }

    #[test]
    fn known_bad_plan_validates_and_keeps_the_culprit_first() {
        let t = topo();
        let plan = known_bad_plan(&t, SimDuration::from_secs(2));
        plan.validate(&t).expect("valid");
        assert!(plan.len() >= 4, "needs decoys for the shrinker to strip");
        assert!(matches!(plan.events()[0].kind, FaultKind::SwitchDown(_)));
    }
}
