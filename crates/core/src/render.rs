//! ASCII rendering helpers for reports.

use sonet_util::EmpiricalCdf;

/// Renders an ASCII table with a header row.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(c.len());
            line.push_str(&format!(" {c:<w$} |"));
        }
        line
    };
    let headers_owned: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&headers_owned, &widths));
    out.push('\n');
    let sep: String = {
        let mut s = String::from("|");
        for w in &widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('|');
        }
        s
    };
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with sensible precision for reports.
pub fn num(v: f64) -> String {
    if !v.is_finite() {
        return "-".into();
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats a CDF as `p10/p50/p90` quantiles.
pub fn quantiles(cdf: &EmpiricalCdf) -> String {
    match (cdf.quantile(10.0), cdf.quantile(50.0), cdf.quantile(90.0)) {
        (Some(a), Some(b), Some(c)) => format!("{}/{}/{}", num(a), num(b), num(c)),
        _ => "-".into(),
    }
}

/// Renders a CDF as a compact series of `(value, fraction)` points.
pub fn cdf_series(cdf: &EmpiricalCdf, points: usize) -> String {
    cdf.series(points)
        .into_iter()
        .map(|(v, f)| format!("({}, {:.2})", num(v), f))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Renders a time series as a sparkline-ish row of numbers (downsampled).
pub fn series_row(values: &[f64], points: usize) -> String {
    if values.is_empty() {
        return "-".into();
    }
    let step = (values.len() / points.max(1)).max(1);
    values
        .iter()
        .step_by(step)
        .take(points)
        .map(|&v| num(v))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let s = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "2.5".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn num_precision() {
        assert_eq!(num(1234.5), "1234");
        assert_eq!(num(12.34), "12.3");
        assert_eq!(num(1.234), "1.23");
        assert_eq!(num(f64::NAN), "-");
    }

    #[test]
    fn quantiles_and_series() {
        let cdf = EmpiricalCdf::new((1..=100).map(|x| x as f64).collect());
        let q = quantiles(&cdf);
        assert!(q.contains('/'));
        assert!(!cdf_series(&cdf, 5).is_empty());
        assert_eq!(series_row(&[], 5), "-");
        assert_eq!(series_row(&[1.0, 2.0, 3.0, 4.0], 2), "1.00 3.00");
    }
}
