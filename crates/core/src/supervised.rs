//! Supervised, checkpointable runs of the two data substrates.
//!
//! A plain [`StandardCapture::run`] or [`FleetData::run`] is
//! all-or-nothing: kill the process and everything is lost. The
//! supervised drivers here advance the same deterministic machinery in
//! small steps and, at every step boundary:
//!
//! 1. **audit** the engine's invariants (packet conservation, link-rate
//!    bounds, calendar monotonicity, telemetry accounting) when auditing
//!    is on — always in debug builds, via the `audit` feature in release;
//! 2. **checkpoint** full dynamic state to disk atomically (write to a
//!    temp file, fsync, rename, fsync the directory), so a crash leaves
//!    either the old or the new checkpoint, never a torn one;
//! 3. **check the budget** ([`RunBudget`]) and stop cooperatively at this
//!    clean boundary when wall-clock, event, or memory limits trip.
//!
//! Resuming from a checkpoint replays nothing and recomputes nothing
//! random: static structure (plant, rosters, schedules) is rebuilt from
//! the config — it is a pure function of it — and dynamic state (RNG
//! streams, calendars, counters, capture buffers) is restored bit-for-bit.
//! A resumed run therefore produces **byte-identical** final reports to an
//! uninterrupted one; the determinism suite asserts exactly that.

use crate::capture::{CaptureConfig, CaptureState, StandardCapture};
use crate::fleet_run::{build_fleet_model, FleetData, FleetRunConfig, FleetRunError};
use crate::supervisor::{RunBudget, RunSupervisor, StopReason};
use serde::{Deserialize, Serialize};
use sonet_netsim::{AuditReport, AuditViolation, EngineCheckpoint, Simulator};
use sonet_telemetry::{export::read_flows, FlowRecord, PortMirror, TraceSpool};
use sonet_util::{SimDuration, SimTime};
use sonet_workload::{FleetModelState, WorkloadCheckpoint};
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File name of the rolling capture checkpoint inside the checkpoint dir.
pub const CAPTURE_CKPT: &str = "capture.ckpt";
/// File name of the rolling fleet checkpoint inside the checkpoint dir.
pub const FLEET_CKPT: &str = "fleet.ckpt";
/// File name of the fleet sample spool inside the checkpoint dir.
pub const FLEET_SPOOL: &str = "fleet_samples.jsonl";
/// File name of the flight-recorder run manifest inside the checkpoint
/// dir (written only when observability is on).
pub const RUNINFO: &str = "RUNINFO.json";

/// How a run is supervised: where checkpoints go, how often they are
/// taken, what budget applies, and whether the auditor runs.
#[derive(Debug, Clone)]
pub struct SuperviseOptions {
    /// Directory holding the rolling checkpoint (and, for fleet runs, the
    /// sample spool). Created if missing.
    pub checkpoint_dir: PathBuf,
    /// Virtual-time interval between capture checkpoints (rounded up to
    /// the engine's 250 ms generation windows).
    pub every: SimDuration,
    /// Resource budget; checked at every checkpoint boundary.
    pub budget: RunBudget,
    /// Whether the invariant auditor runs at checkpoint boundaries.
    /// `None` means the build decides: on under `debug_assertions` or the
    /// `audit` cargo feature, off otherwise.
    pub audit: Option<bool>,
    /// Fleet runs: hosts sampled per chunk between checkpoints.
    pub hosts_per_chunk: u32,
    /// Worker-thread override for this run. Takes precedence over the
    /// config's own setting — which is how `--resume --threads N` runs a
    /// checkpoint under a different thread count than the original run
    /// (the output is identical either way; only wall-clock changes).
    pub threads: Option<usize>,
}

impl SuperviseOptions {
    /// Sensible defaults: checkpoint every 2 simulated seconds (capture)
    /// or 64 hosts (fleet), no budget, build-default auditing.
    pub fn new(checkpoint_dir: impl Into<PathBuf>) -> SuperviseOptions {
        SuperviseOptions {
            checkpoint_dir: checkpoint_dir.into(),
            every: SimDuration::from_secs(2),
            budget: RunBudget::unlimited(),
            audit: None,
            hosts_per_chunk: 64,
            threads: None,
        }
    }

    fn audit_enabled(&self) -> bool {
        self.audit
            .unwrap_or(cfg!(any(feature = "audit", debug_assertions)))
    }

    /// Path of the rolling capture checkpoint under this options' dir.
    pub fn capture_checkpoint_path(&self) -> PathBuf {
        self.checkpoint_dir.join(CAPTURE_CKPT)
    }

    /// Path of the rolling fleet checkpoint under this options' dir.
    pub fn fleet_checkpoint_path(&self) -> PathBuf {
        self.checkpoint_dir.join(FLEET_CKPT)
    }

    /// Path of the fleet sample spool under this options' dir.
    pub fn fleet_spool_path(&self) -> PathBuf {
        self.checkpoint_dir.join(FLEET_SPOOL)
    }

    /// Path of the run manifest under this options' dir.
    pub fn runinfo_path(&self) -> PathBuf {
        self.checkpoint_dir.join(RUNINFO)
    }
}

/// Freezes and writes the run manifest, if one is being kept. Failures
/// to write are reported, never fatal — observability must not take a
/// run down.
fn finish_runinfo(
    runinfo: &mut Option<sonet_util::obs::runinfo::RunInfo>,
    path: &Path,
    status: String,
    notes: Vec<String>,
) {
    if let Some(mut ri) = runinfo.take() {
        for n in notes {
            ri.note(n);
        }
        ri.finish(status);
        if let Err(e) = ri.write_atomic(path) {
            sonet_util::obs::report::warn(&format!("could not write {}: {e}", path.display()));
        }
    }
}

/// Surfaces a supervised-run failure into the metrics registry and
/// returns the manifest notes describing it. Audit reports get their
/// violation count as a gauge — a supervised run records *why* it
/// degraded, not just that it did.
fn error_obs(e: &SupervisedError) -> Vec<String> {
    use sonet_util::obs;
    if let SupervisedError::Audit(r) = e {
        obs::gauge_set!("supervisor.audit_violations", r.violations.len() as u64);
    }
    vec![format!("{e}")]
}

/// Errors from supervised runs.
#[derive(Debug)]
pub enum SupervisedError {
    /// Checkpoint or spool I/O failed.
    Io(io::Error),
    /// A checkpoint file exists but does not describe a resumable run
    /// (parse failure, dimension mismatch, spool disagreement).
    Corrupt(String),
    /// The invariant auditor found violations.
    Audit(AuditReport),
    /// The run's own machinery failed to build or advance.
    Build(String),
    /// A fleet config was rejected.
    Fleet(FleetRunError),
}

impl fmt::Display for SupervisedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupervisedError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
            SupervisedError::Corrupt(e) => write!(f, "checkpoint unusable: {e}"),
            SupervisedError::Audit(r) => write!(f, "{r}"),
            SupervisedError::Build(e) => write!(f, "run failed: {e}"),
            SupervisedError::Fleet(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SupervisedError {}

impl From<io::Error> for SupervisedError {
    fn from(e: io::Error) -> SupervisedError {
        SupervisedError::Io(e)
    }
}

/// How a supervised run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// Ran to the configured horizon; results are final.
    Completed,
    /// Stopped cooperatively at a checkpoint boundary; the checkpoint on
    /// disk resumes the run.
    Stopped(StopReason),
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the target, fsync the directory. A crash at any
/// point leaves either the previous checkpoint or the new one intact.
fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    // Flight recorder: checkpoint write latency + size. The wall-clock
    // read lives behind the obs gate, strictly on the side channel.
    let started = sonet_util::obs::on().then(std::time::Instant::now);
    let tmp = path.with_extension("ckpt.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            dir.sync_all()?;
        }
    }
    if let Some(started) = started {
        use sonet_util::obs;
        obs::counter_add!("supervisor.checkpoints", 1);
        obs::gauge_set!("supervisor.checkpoint_bytes", bytes.len() as u64);
        obs::hist_observe!(
            "supervisor.checkpoint_write_us",
            started.elapsed().as_micros() as u64,
            obs::metrics::BOUNDS_POW4
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Capture tier
// ---------------------------------------------------------------------

/// On-disk snapshot of a supervised capture run. Static structure (plant,
/// monitored hosts, telemetry schedule) is *not* stored — it is rebuilt
/// from `config` on resume; everything dynamic is.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaptureCheckpoint {
    /// The run's configuration (resume rebuilds static structure from it).
    pub config: CaptureConfig,
    /// Virtual time of the snapshot (a generation-window boundary).
    pub at: SimTime,
    /// Telemetry-fault cursor.
    pub tel_next: u64,
    /// Engine dynamic state.
    pub engine: EngineCheckpoint,
    /// Workload dynamic state (RNG streams, burst schedules, pool).
    pub workload: WorkloadCheckpoint,
    /// The capture buffer itself (the engine's tap).
    pub mirror: PortMirror,
}

/// Runs a capture under supervision from the start.
pub fn run_capture(
    cfg: &CaptureConfig,
    opts: &SuperviseOptions,
) -> Result<(RunStatus, Option<StandardCapture>), SupervisedError> {
    let state = CaptureState::build(cfg).map_err(SupervisedError::Build)?;
    drive_capture(cfg.clone(), state, opts)
}

/// Resumes a capture from a checkpoint file written by a prior supervised
/// run. The resumed run's final report is byte-identical to what the
/// uninterrupted run would have produced.
pub fn resume_capture(
    ckpt_path: &Path,
    opts: &SuperviseOptions,
) -> Result<(RunStatus, Option<StandardCapture>), SupervisedError> {
    let text = fs::read_to_string(ckpt_path)?;
    let ckpt: CaptureCheckpoint = serde_json::from_str(&text)
        .map_err(|e| SupervisedError::Corrupt(format!("{}: {e}", ckpt_path.display())))?;
    let cfg = ckpt.config.clone();
    let mut statics = CaptureState::rebuild_static(&cfg).map_err(SupervisedError::Build)?;
    statics
        .workload
        .restore(ckpt.workload)
        .map_err(|e| SupervisedError::Corrupt(e.to_string()))?;
    let sim = Simulator::restore(statics.topo.clone(), ckpt.mirror, ckpt.engine)
        .map_err(|e| SupervisedError::Corrupt(e.to_string()))?;
    if ckpt.tel_next as usize > statics.telemetry.len() {
        return Err(SupervisedError::Corrupt(format!(
            "telemetry cursor {} exceeds the {} scheduled events",
            ckpt.tel_next,
            statics.telemetry.len()
        )));
    }
    let state = CaptureState {
        topo: statics.topo,
        workload: statics.workload,
        sim,
        monitored: statics.monitored,
        telemetry: statics.telemetry,
        tel_next: ckpt.tel_next as usize,
        t: ckpt.at,
    };
    drive_capture(cfg, state, opts)
}

fn drive_capture(
    cfg: CaptureConfig,
    mut state: CaptureState,
    opts: &SuperviseOptions,
) -> Result<(RunStatus, Option<StandardCapture>), SupervisedError> {
    use sonet_util::obs;
    fs::create_dir_all(&opts.checkpoint_dir)?;
    let ckpt_path = opts.capture_checkpoint_path();
    let audit_on = opts.audit_enabled();
    // Engine worker width for the partitioned calendar. `None` defers to
    // the process default; any value produces identical bytes.
    state.sim.set_parallel_width(opts.threads);
    // Flight recorder: run manifest + heartbeat. Strictly write-only side
    // channel — a run behaves identically with this on or off.
    let mut runinfo = obs::on().then(|| {
        let mut ri = obs::runinfo::RunInfo::start(
            "capture",
            cfg.seed,
            &serde_json::to_string(&cfg).unwrap_or_default(),
            sonet_util::par::resolve_threads(opts.threads),
        );
        if !cfg.faults.is_empty() {
            let hash = crate::chaos::plan_hash(&cfg.faults);
            obs::trace::set_export_meta("fault_plan_hash", hash.clone());
            ri.fault_plan_hash = Some(hash);
        }
        ri
    });
    let runinfo_path = opts.runinfo_path();
    let mut hb = obs::report::Heartbeat::new("capture");
    let sup = RunSupervisor::new(opts.budget.clone());
    let horizon = SimTime::ZERO + cfg.duration;
    let mut next_ckpt = state.t + opts.every;
    while state.t < horizon {
        state.advance(horizon).map_err(SupervisedError::Build)?;
        hb.tick(state.sim.processed_events());
        if state.t < next_ckpt && state.t < horizon {
            continue;
        }
        // A clean boundary: audit, checkpoint, then honor the budget.
        if audit_on {
            if let Err(e) = audit_capture(&state) {
                let notes = error_obs(&e);
                finish_runinfo(
                    &mut runinfo,
                    &runinfo_path,
                    "failed: audit".to_owned(),
                    notes,
                );
                return Err(e);
            }
            obs::gauge_set!("supervisor.audit_violations", 0);
        }
        let snapshot = CaptureCheckpoint {
            config: cfg.clone(),
            at: state.t,
            tel_next: state.tel_next as u64,
            engine: state.sim.checkpoint(),
            workload: state.workload.checkpoint(),
            mirror: state.sim.tap().clone(),
        };
        let text =
            serde_json::to_string(&snapshot).map_err(|e| SupervisedError::Build(e.to_string()))?;
        atomic_write(&ckpt_path, text.as_bytes())?;
        next_ckpt = state.t + opts.every;
        if state.t < horizon {
            if let Some(reason) = sup.check(state.sim.processed_events()) {
                finish_runinfo(
                    &mut runinfo,
                    &runinfo_path,
                    format!("stopped: {reason}"),
                    Vec::new(),
                );
                return Ok((RunStatus::Stopped(reason), None));
            }
        }
    }
    let capture = state.finish(&cfg);
    if runinfo.is_some() {
        let deg = crate::reports::degradation(&capture);
        deg.publish_obs();
        let notes = if deg.is_clean() {
            Vec::new()
        } else {
            vec![format!("degradation: {}", deg.summary_line())]
        };
        finish_runinfo(&mut runinfo, &runinfo_path, "completed".to_owned(), notes);
    }
    Ok((RunStatus::Completed, Some(capture)))
}

/// Audits the engine plus the telemetry-accounting invariant the engine
/// cannot see (it owns the tap but not its counters): packets offered to
/// the mirror must equal captured + overflowed + fault-dropped.
fn audit_capture(state: &CaptureState) -> Result<(), SupervisedError> {
    state.sim.audit().map_err(SupervisedError::Audit)?;
    let m = state.sim.tap();
    let captured = m.records().len() as u64;
    if m.offered() != captured + m.overflow() + m.fault_dropped() {
        return Err(SupervisedError::Audit(AuditReport {
            at: state.t,
            violations: vec![AuditViolation::TelemetryAccounting {
                offered: m.offered(),
                captured,
                overflow: m.overflow(),
                fault_dropped: m.fault_dropped(),
            }],
        }));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Fleet tier
// ---------------------------------------------------------------------

/// On-disk snapshot of a supervised fleet run. Samples themselves live in
/// the crash-safe spool next to the checkpoint; the checkpoint records how
/// many spooled lines are durable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetCheckpoint {
    /// The run's configuration.
    pub config: FleetRunConfig,
    /// Generator dynamic state (host cursor + relaxation counter; RNG
    /// streams are per-host forks and need no saving).
    pub model: FleetModelState,
    /// Durable lines in the sample spool at snapshot time.
    pub spool_lines: u64,
}

/// Runs the fleet tier under supervision from the start.
pub fn run_fleet(
    cfg: &FleetRunConfig,
    opts: &SuperviseOptions,
) -> Result<(RunStatus, Option<FleetData>), SupervisedError> {
    let (topo, mut model) = build_fleet_model(cfg).map_err(SupervisedError::Fleet)?;
    model.set_parallelism(opts.threads);
    fs::create_dir_all(&opts.checkpoint_dir)?;
    let spool = TraceSpool::create(opts.fleet_spool_path())?;
    drive_fleet(cfg.clone(), topo, model, spool, Vec::new(), opts)
}

/// Resumes a fleet run from its checkpoint, recovering already-generated
/// samples from the spool (truncating any appended after the checkpoint).
pub fn resume_fleet(
    ckpt_path: &Path,
    opts: &SuperviseOptions,
) -> Result<(RunStatus, Option<FleetData>), SupervisedError> {
    let text = fs::read_to_string(ckpt_path)?;
    let ckpt: FleetCheckpoint = serde_json::from_str(&text)
        .map_err(|e| SupervisedError::Corrupt(format!("{}: {e}", ckpt_path.display())))?;
    let cfg = ckpt.config.clone();
    let (topo, mut model) = build_fleet_model(&cfg).map_err(SupervisedError::Fleet)?;
    model.set_parallelism(opts.threads);
    model
        .restore_state(ckpt.model)
        .map_err(SupervisedError::Corrupt)?;
    let spool_path = opts.fleet_spool_path();
    let spool = TraceSpool::resume(&spool_path, ckpt.spool_lines).map_err(|e| {
        if e.kind() == io::ErrorKind::InvalidData {
            SupervisedError::Corrupt(e.to_string())
        } else {
            SupervisedError::Io(e)
        }
    })?;
    let (samples, stats) = read_flows(File::open(&spool_path)?)?;
    if stats.skipped > 0 || stats.ok != ckpt.spool_lines {
        return Err(SupervisedError::Corrupt(format!(
            "spool {} re-read as {} ok / {} skipped lines, checkpoint expects {}",
            spool_path.display(),
            stats.ok,
            stats.skipped,
            ckpt.spool_lines
        )));
    }
    drive_fleet(cfg, topo, model, spool, samples, opts)
}

fn drive_fleet(
    cfg: FleetRunConfig,
    topo: std::sync::Arc<sonet_topology::Topology>,
    mut model: sonet_workload::FleetModel,
    mut spool: TraceSpool,
    mut samples: Vec<FlowRecord>,
    opts: &SuperviseOptions,
) -> Result<(RunStatus, Option<FleetData>), SupervisedError> {
    use sonet_util::obs;
    let ckpt_path = opts.fleet_checkpoint_path();
    let audit_on = opts.audit_enabled();
    let mut runinfo = obs::on().then(|| {
        obs::runinfo::RunInfo::start(
            "fleet",
            cfg.seed,
            &serde_json::to_string(&cfg).unwrap_or_default(),
            sonet_util::par::resolve_threads(opts.threads),
        )
    });
    let runinfo_path = opts.runinfo_path();
    let mut hb = obs::report::Heartbeat::new("fleet");
    let sup = RunSupervisor::new(opts.budget.clone());
    let chunk_hosts = opts.hosts_per_chunk.max(1);
    while !model.exhausted() {
        let chunk = {
            let _span = obs::trace::span("generate");
            model.generate_chunk(chunk_hosts)
        };
        for r in &chunk {
            spool.append(r)?;
        }
        samples.extend(chunk);
        // A clean boundary: make the spool durable, audit the accounting,
        // snapshot the generator, then honor the budget.
        let durable = spool.sync()?;
        obs::gauge_set!("fleet.samples", samples.len() as u64);
        obs::gauge_set!("fleet.spool_durable_lines", durable);
        hb.tick(samples.len() as u64);
        if audit_on {
            if let Err(e) = audit_fleet(&cfg, &model, &samples, durable) {
                let notes = error_obs(&e);
                finish_runinfo(
                    &mut runinfo,
                    &runinfo_path,
                    "failed: audit".to_owned(),
                    notes,
                );
                return Err(e);
            }
            obs::gauge_set!("supervisor.audit_violations", 0);
        }
        let snapshot = FleetCheckpoint {
            config: cfg.clone(),
            model: model.state(),
            spool_lines: durable,
        };
        let text =
            serde_json::to_string(&snapshot).map_err(|e| SupervisedError::Build(e.to_string()))?;
        atomic_write(&ckpt_path, text.as_bytes())?;
        if !model.exhausted() {
            if let Some(reason) = sup.check(samples.len() as u64) {
                finish_runinfo(
                    &mut runinfo,
                    &runinfo_path,
                    format!("stopped: {reason}"),
                    Vec::new(),
                );
                return Ok((RunStatus::Stopped(reason), None));
            }
        }
    }
    // Chunks are per-host; the one-shot path emits the same records then
    // time-sorts them. The sort is stable and record order within equal
    // timestamps is the per-host generation order either way, so the
    // assembled table is byte-identical to an uninterrupted run's.
    samples.sort_by_key(|r| r.at);
    let data = FleetData::assemble(&cfg, topo, samples, model.relaxed_picks(), opts.threads);
    finish_runinfo(
        &mut runinfo,
        &runinfo_path,
        "completed".to_owned(),
        Vec::new(),
    );
    Ok((RunStatus::Completed, Some(data)))
}

/// Fleet-tier accounting invariants: every generated sample is in memory
/// and durable in the spool, and the generator emitted exactly
/// `samples_per_host` records per completed host.
fn audit_fleet(
    cfg: &FleetRunConfig,
    model: &sonet_workload::FleetModel,
    samples: &[FlowRecord],
    durable_lines: u64,
) -> Result<(), SupervisedError> {
    let expected = model.hosts_done() as u64 * cfg.samples_per_host as u64;
    if samples.len() as u64 != expected {
        return Err(SupervisedError::Corrupt(format!(
            "fleet accounting: {} samples in memory, {} hosts done x {} samples/host = {}",
            samples.len(),
            model.hosts_done(),
            cfg.samples_per_host,
            expected
        )));
    }
    if durable_lines != samples.len() as u64 {
        return Err(SupervisedError::Corrupt(format!(
            "fleet accounting: spool holds {durable_lines} durable lines, memory holds {}",
            samples.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioScale;
    use std::time::Duration;

    fn temp_dir(name: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("sonet-supervised-{}-{name}", std::process::id()));
        fs::create_dir_all(&d).expect("mkdir");
        d
    }

    fn tiny_capture(seed: u64) -> CaptureConfig {
        CaptureConfig {
            duration: SimDuration::from_secs(1),
            ..CaptureConfig::fast(seed)
        }
    }

    #[test]
    fn supervised_capture_completes_and_matches_plain_run() {
        let dir = temp_dir("cap-complete");
        let cfg = tiny_capture(5);
        let opts = SuperviseOptions {
            every: SimDuration::from_millis(250),
            ..SuperviseOptions::new(&dir)
        };
        let (status, cap) = run_capture(&cfg, &opts).expect("run");
        assert_eq!(status, RunStatus::Completed);
        let supervised = cap.expect("completed run yields a capture");
        let plain = StandardCapture::run(&cfg);
        let a = serde_json::to_string(&supervised.outputs).expect("json");
        let b = serde_json::to_string(&plain.outputs).expect("json");
        assert_eq!(a, b, "supervised run must not perturb the simulation");
        assert!(opts.capture_checkpoint_path().exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn capture_stop_and_resume_is_byte_identical() {
        let dir = temp_dir("cap-resume");
        let cfg = tiny_capture(7);
        // Zero wall-clock budget: stops at the first checkpoint boundary.
        let stop_opts = SuperviseOptions {
            every: SimDuration::from_millis(250),
            budget: RunBudget {
                wall_clock: Some(Duration::ZERO),
                ..RunBudget::unlimited()
            },
            ..SuperviseOptions::new(&dir)
        };
        let (status, cap) = run_capture(&cfg, &stop_opts).expect("run");
        assert!(matches!(
            status,
            RunStatus::Stopped(StopReason::WallClock(_))
        ));
        assert!(cap.is_none());

        let resume_opts = SuperviseOptions {
            every: SimDuration::from_millis(250),
            ..SuperviseOptions::new(&dir)
        };
        let (status, cap) =
            resume_capture(&stop_opts.capture_checkpoint_path(), &resume_opts).expect("resume");
        assert_eq!(status, RunStatus::Completed);
        let resumed = cap.expect("capture");
        let plain = StandardCapture::run(&cfg);
        assert_eq!(
            serde_json::to_string(&resumed.outputs).expect("json"),
            serde_json::to_string(&plain.outputs).expect("json"),
            "kill + resume must be byte-identical to an uninterrupted run"
        );
        assert_eq!(resumed.issued_calls, plain.issued_calls);
        assert_eq!(resumed.mirror_offered, plain.mirror_offered);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fleet_stop_and_resume_is_byte_identical() {
        let dir = temp_dir("fleet-resume");
        let cfg = FleetRunConfig::fast(11);
        let stop_opts = SuperviseOptions {
            hosts_per_chunk: 16,
            budget: RunBudget {
                wall_clock: Some(Duration::ZERO),
                ..RunBudget::unlimited()
            },
            ..SuperviseOptions::new(&dir)
        };
        let (status, data) = run_fleet(&cfg, &stop_opts).expect("run");
        assert!(matches!(status, RunStatus::Stopped(_)));
        assert!(data.is_none());

        let resume_opts = SuperviseOptions {
            hosts_per_chunk: 16,
            ..SuperviseOptions::new(&dir)
        };
        let (status, data) =
            resume_fleet(&stop_opts.fleet_checkpoint_path(), &resume_opts).expect("resume");
        assert_eq!(status, RunStatus::Completed);
        let resumed = data.expect("fleet data");
        let plain = FleetData::run(&cfg).expect("plain run");
        assert_eq!(
            serde_json::to_string(&resumed.table).expect("json"),
            serde_json::to_string(&plain.table).expect("json"),
            "kill + resume must be byte-identical to an uninterrupted run"
        );
        assert_eq!(resumed.relaxed_picks, plain.relaxed_picks);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_checkpoint_for_a_different_plant() {
        let dir = temp_dir("cap-mismatch");
        let cfg = tiny_capture(9);
        let opts = SuperviseOptions::new(&dir);
        let (_, cap) = run_capture(&cfg, &opts).expect("run");
        assert!(cap.is_some());

        // Corrupt the checkpoint: claim a different scale so the rebuilt
        // plant no longer matches the engine snapshot.
        let path = opts.capture_checkpoint_path();
        let text = fs::read_to_string(&path).expect("read");
        let mut ckpt: CaptureCheckpoint = serde_json::from_str(&text).expect("parse");
        ckpt.config.scale = ScenarioScale::Standard;
        fs::write(&path, serde_json::to_string(&ckpt).expect("json")).expect("write");
        match resume_capture(&path, &opts) {
            Err(SupervisedError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_truncated_fleet_spool() {
        let dir = temp_dir("fleet-spool-gone");
        let cfg = FleetRunConfig::fast(13);
        let opts = SuperviseOptions {
            hosts_per_chunk: 8,
            budget: RunBudget {
                wall_clock: Some(Duration::ZERO),
                ..RunBudget::unlimited()
            },
            ..SuperviseOptions::new(&dir)
        };
        let (status, _) = run_fleet(&cfg, &opts).expect("run");
        assert!(matches!(status, RunStatus::Stopped(_)));
        // Blow away spooled samples the checkpoint depends on.
        fs::write(opts.fleet_spool_path(), b"").expect("truncate");
        match resume_fleet(&opts.fleet_checkpoint_path(), &opts) {
            Err(SupervisedError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn event_budget_stops_a_capture_cooperatively() {
        let dir = temp_dir("cap-events");
        let cfg = tiny_capture(15);
        let opts = SuperviseOptions {
            every: SimDuration::from_millis(250),
            budget: RunBudget {
                max_events: Some(1),
                ..RunBudget::unlimited()
            },
            ..SuperviseOptions::new(&dir)
        };
        let (status, _) = run_capture(&cfg, &opts).expect("run");
        assert!(matches!(status, RunStatus::Stopped(StopReason::Events(_))));
        assert!(
            opts.capture_checkpoint_path().exists(),
            "a budget stop must leave a resumable checkpoint behind"
        );
        fs::remove_dir_all(&dir).ok();
    }
}
