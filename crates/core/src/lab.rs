//! The experiment harness: one lazily shared capture + fleet run, one
//! method per table/figure.

use crate::capture::{CaptureConfig, StandardCapture};
use crate::fleet_run::{FleetData, FleetRunConfig};
use crate::reports::{
    self, ConcurrencyReport, Fig12Report, Fig13Report, Fig14Report, Fig15Config, Fig15Report,
    Fig4Report, Fig5Report, Fig8Report, Fig9Report, FlowCdfReport, HitterDynamicsReport,
    Table2Report, Table3Report, Table4Report, UtilizationReport,
};

/// Top-level configuration of a [`Lab`].
#[derive(Debug, Clone)]
pub struct LabConfig {
    /// Packet-tier capture parameters.
    pub capture: CaptureConfig,
    /// Fleet-tier parameters.
    pub fleet: FleetRunConfig,
    /// Fig 15 (buffer study) parameters.
    pub fig15: Fig15Config,
    /// Worker threads for parallelizable stages (fleet generation,
    /// tagging, analysis fan-out); `None` defers to the process-wide
    /// default. Thread count never changes any report, only wall-clock.
    pub threads: Option<usize>,
}

impl LabConfig {
    /// Bench-grade configuration (tens of seconds of simulated traffic).
    pub fn standard(seed: u64) -> LabConfig {
        LabConfig {
            capture: CaptureConfig::standard(seed),
            fleet: FleetRunConfig::standard(seed),
            fig15: Fig15Config::standard(seed),
            threads: None,
        }
    }

    /// Test-grade configuration (a few seconds on a tiny plant).
    pub fn fast(seed: u64) -> LabConfig {
        LabConfig {
            capture: CaptureConfig::fast(seed),
            fleet: FleetRunConfig::fast(seed),
            fig15: Fig15Config::fast(seed),
            threads: None,
        }
    }
}

/// Lazily materialized experiment inputs plus one method per experiment.
pub struct Lab {
    cfg: LabConfig,
    capture: Option<StandardCapture>,
    fleet: Option<FleetData>,
}

impl Lab {
    /// Creates an empty lab; substrates are built on first use.
    pub fn new(cfg: LabConfig) -> Lab {
        Lab {
            cfg,
            capture: None,
            fleet: None,
        }
    }

    /// The packet-tier capture (runs the simulation on first call).
    pub fn capture(&mut self) -> &StandardCapture {
        if self.capture.is_none() {
            self.capture = Some(StandardCapture::run(&self.cfg.capture));
        }
        self.capture.as_ref().expect("just materialized")
    }

    /// The fleet-tier data (generated on first call).
    pub fn fleet(&mut self) -> &FleetData {
        if self.fleet.is_none() {
            self.fleet = Some(
                FleetData::run_with(&self.cfg.fleet, self.cfg.threads)
                    .expect("preset fleet configs are valid"),
            );
        }
        self.fleet.as_ref().expect("just materialized")
    }

    /// Table 2: outbound service mix per host type.
    pub fn table2(&mut self) -> Table2Report {
        reports::table2(self.capture())
    }

    /// Table 3: locality per cluster type (fleet tier).
    pub fn table3(&mut self) -> Table3Report {
        reports::table3(self.fleet())
    }

    /// Table 4: heavy hitters in 1-ms intervals.
    pub fn table4(&mut self) -> Table4Report {
        reports::table4(self.capture())
    }

    /// Fig 4: per-second locality time series.
    pub fn fig4(&mut self) -> Fig4Report {
        reports::fig4(self.capture())
    }

    /// Fig 5: demand matrices (fleet tier).
    pub fn fig5(&mut self) -> Fig5Report {
        reports::fig5(self.fleet()).expect("preset fleet plants have all cluster types")
    }

    /// Fig 6: flow size CDFs by locality.
    pub fn fig6(&mut self) -> FlowCdfReport {
        reports::fig6(self.capture())
    }

    /// Fig 7: flow duration CDFs by locality.
    pub fn fig7(&mut self) -> FlowCdfReport {
        reports::fig7(self.capture())
    }

    /// Fig 8: per-destination-rack rate stability.
    pub fn fig8(&mut self) -> Option<Fig8Report> {
        reports::fig8(self.capture())
    }

    /// Fig 9: cache-follower per-host flow sizes.
    pub fn fig9(&mut self) -> Option<Fig9Report> {
        reports::fig9(self.capture())
    }

    /// Fig 10: heavy-hitter persistence.
    pub fn fig10(&mut self) -> HitterDynamicsReport {
        reports::fig10(self.capture())
    }

    /// Fig 11: heavy-hitter intersection with the enclosing second.
    pub fn fig11(&mut self) -> HitterDynamicsReport {
        reports::fig11(self.capture())
    }

    /// Fig 12: packet size distributions.
    pub fn fig12(&mut self) -> Fig12Report {
        reports::fig12(self.capture())
    }

    /// Fig 13: Hadoop (non-)on/off arrival structure.
    pub fn fig13(&mut self) -> Option<Fig13Report> {
        reports::fig13(self.capture())
    }

    /// Fig 14: SYN inter-arrival CDFs.
    pub fn fig14(&mut self) -> Fig14Report {
        reports::fig14(self.capture())
    }

    /// Fig 15: buffer occupancy study (runs its own simulation).
    pub fn fig15(&mut self) -> Fig15Report {
        reports::fig15(&self.cfg.fig15).expect("preset fig15 configs are valid")
    }

    /// Fig 16: concurrent racks per 5-ms window.
    pub fn fig16(&mut self) -> ConcurrencyReport {
        reports::fig16(self.capture())
    }

    /// Fig 17: concurrent heavy-hitter racks per 5-ms window.
    pub fn fig17(&mut self) -> ConcurrencyReport {
        reports::fig17(self.capture())
    }

    /// §4.1 utilization rollup.
    pub fn utilization(&mut self) -> UtilizationReport {
        reports::utilization(self.capture())
    }

    /// §5.4 traffic-engineering predictability table.
    pub fn te_predictability(&mut self) -> reports::TeReport {
        reports::te_predictability(self.capture())
    }

    /// Degradation rollup: what the configured fault plan cost the plant
    /// and the telemetry (all-zero on a healthy baseline).
    pub fn degradation(&mut self) -> reports::DegradationReport {
        reports::degradation(self.capture())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonet_topology::HostRole;

    #[test]
    fn lab_runs_every_packet_tier_experiment_fast() {
        let mut lab = Lab::new(LabConfig::fast(11));
        let t2 = lab.table2();
        assert!(!t2.rows.is_empty());
        assert!(t2.render().contains("Web"));
        let t4 = lab.table4();
        assert!(!t4.rows.is_empty());
        let f4 = lab.fig4();
        assert!(f4.locality_fractions(HostRole::Web).is_some());
        let f6 = lab.fig6();
        assert!(!f6.rows.is_empty());
        let f7 = lab.fig7();
        assert!(!f7.rows.is_empty());
        assert!(lab.fig8().is_some());
        assert!(lab.fig9().is_some());
        let f10 = lab.fig10();
        assert!(!f10.rows.is_empty());
        let f11 = lab.fig11();
        assert!(!f11.rows.is_empty());
        let f12 = lab.fig12();
        assert!(f12.median_for(HostRole::Web).is_some());
        assert!(lab.fig13().is_some());
        let f14 = lab.fig14();
        assert!(!f14.rows.is_empty());
        let f16 = lab.fig16();
        assert!(!f16.rows.is_empty());
        let f17 = lab.fig17();
        assert!(!f17.rows.is_empty());
        let util = lab.utilization();
        assert!(!util.rows.is_empty());
    }

    #[test]
    fn lab_runs_fleet_experiments_fast() {
        let mut lab = Lab::new(LabConfig::fast(13));
        let t3 = lab.table3();
        assert!(t3.table.all.bytes > 0);
        assert!(t3.render().contains("Cluster"));
        let f5 = lab.fig5();
        assert!(f5.hadoop.diagonal_fraction > 0.0);
        assert!(f5.render().contains("bipartite"));
    }

    #[test]
    fn fig15_produces_series() {
        let mut lab = Lab::new(LabConfig::fast(17));
        let f15 = lab.fig15();
        assert!(!f15.web_median.is_empty());
        assert_eq!(f15.web_drops.len(), 4);
        assert!(f15.render().contains("occupancy"));
    }
}
