//! Scenario presets: topology specs sized for different budgets.
//!
//! Production scale (hundreds of thousands of hosts) is replaced by
//! scaled-down plants that preserve the *structure* every experiment
//! depends on: role-homogeneous racks, the ~75/20/few frontend mix,
//! cache leaders in a separate cluster (often a separate datacenter),
//! and a second datacenter so all four locality classes exist.

use serde::{Deserialize, Serialize};
use sonet_topology::{ClusterSpec, DatacenterSpec, SiteSpec, TopologySpec};

/// How big a plant to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioScale {
    /// Minimal plant for unit/integration tests (seconds of runtime).
    Tiny,
    /// Bench-sized plant: large enough for meaningful per-ms statistics.
    Standard,
    /// Fleet-tier plant for Fbflow experiments (thousands of hosts,
    /// flow-level only — never packet-simulated).
    Fleet,
}

/// The packet-tier plant: two datacenters on two sites. DC0 holds the
/// monitored Frontend cluster plus a Hadoop cluster, a Service cluster,
/// and a Database cluster; DC1 holds the Cache (leader) cluster plus a
/// small Frontend, so leader traffic is split intra-/inter-DC as in §4.2.
pub fn packet_tier_spec(scale: ScenarioScale) -> TopologySpec {
    let (fe_racks, hosts, hadoop_racks, cache_racks, svc_racks, db_racks) = match scale {
        ScenarioScale::Tiny => (6, 3, 3, 2, 2, 2),
        ScenarioScale::Standard => (16, 5, 8, 4, 6, 3),
        ScenarioScale::Fleet => (24, 8, 16, 6, 10, 4),
    };
    TopologySpec {
        sites: vec![
            SiteSpec {
                datacenters: vec![DatacenterSpec {
                    clusters: vec![
                        ClusterSpec::frontend(fe_racks, hosts),
                        ClusterSpec::hadoop(hadoop_racks, hosts),
                        ClusterSpec::service(svc_racks, hosts),
                        ClusterSpec::database(db_racks, hosts),
                        ClusterSpec::cache(cache_racks.max(2) / 2, hosts),
                    ],
                }],
            },
            SiteSpec {
                datacenters: vec![DatacenterSpec {
                    clusters: vec![
                        ClusterSpec::cache(cache_racks, hosts),
                        ClusterSpec::frontend((fe_racks / 2).max(4), hosts),
                        ClusterSpec::database(db_racks, hosts),
                        ClusterSpec::service((svc_racks / 2).max(2), hosts),
                    ],
                }],
            },
        ],
        ..TopologySpec::default()
    }
}

/// The fleet-tier plant: two sites × one datacenter each, every cluster
/// type in both, with a 64-rack Hadoop cluster and 64-rack Frontend
/// cluster in DC0 so Fig 5's 64×64 matrices can be read off directly.
pub fn fleet_spec(scale: ScenarioScale) -> TopologySpec {
    let (big, hosts) = match scale {
        ScenarioScale::Tiny => (16, 4),
        ScenarioScale::Standard | ScenarioScale::Fleet => (64, 10),
    };
    let dc = |fe: u32| DatacenterSpec {
        clusters: vec![
            ClusterSpec::frontend(fe, hosts),      // cluster 0 (per DC)
            ClusterSpec::hadoop(big, hosts),       // cluster 1
            ClusterSpec::service(big / 2, hosts),  // cluster 2
            ClusterSpec::database(big / 4, hosts), // cluster 3
            ClusterSpec::cache(big / 4, hosts),    // cluster 4
            ClusterSpec::frontend(big / 2, hosts), // cluster 5 (second FE)
            ClusterSpec::hadoop(big / 2, hosts),   // cluster 6
            ClusterSpec::service(big / 4, hosts),  // cluster 7
        ],
    };
    TopologySpec {
        sites: vec![
            SiteSpec {
                datacenters: vec![dc(big)],
            },
            SiteSpec {
                datacenters: vec![dc(big / 2)],
            },
        ],
        ..TopologySpec::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonet_topology::{ClusterType, Topology};

    #[test]
    fn packet_tier_builds_at_all_scales() {
        for scale in [
            ScenarioScale::Tiny,
            ScenarioScale::Standard,
            ScenarioScale::Fleet,
        ] {
            let topo = Topology::build(packet_tier_spec(scale)).expect("valid");
            assert_eq!(topo.datacenters().len(), 2);
            // Every cluster type present somewhere.
            for t in ClusterType::ALL {
                assert!(
                    topo.first_cluster_of_type(t).is_some(),
                    "{t} missing at {scale:?}"
                );
            }
        }
    }

    #[test]
    fn fleet_has_64_rack_clusters_at_standard() {
        let topo = Topology::build(fleet_spec(ScenarioScale::Standard)).expect("valid");
        let hadoop = topo
            .first_cluster_of_type(ClusterType::Hadoop)
            .expect("hadoop");
        assert_eq!(topo.cluster(hadoop).racks.len(), 64);
        let fe = topo
            .first_cluster_of_type(ClusterType::Frontend)
            .expect("fe");
        assert_eq!(topo.cluster(fe).racks.len(), 64);
        assert!(
            topo.hosts().len() > 3000,
            "fleet should be thousands of hosts"
        );
    }
}
