//! Run budgets and panic isolation for supervised runs.
//!
//! The paper's measurement fleet never gets to run unattended: captures
//! are wall-clock bounded by collection-server RAM, Fbflow jobs by their
//! batch scheduler. This module is the simulator-side analogue — a
//! [`RunSupervisor`] checks wall-clock / event-count / peak-RSS budgets
//! at cooperative cancellation points (checkpoint boundaries), and
//! [`isolate`] converts a panicking scenario into an error so a batch of
//! scenarios degrades to partial results instead of dying wholesale.

use std::fmt;
use std::panic::{catch_unwind, UnwindSafe};
use std::time::{Duration, Instant};

/// Resource budget for a supervised run. `None` fields are unlimited.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// Maximum wall-clock time.
    pub wall_clock: Option<Duration>,
    /// Maximum engine events processed.
    pub max_events: Option<u64>,
    /// Maximum peak RSS in bytes (checked against `VmHWM`; only
    /// enforceable on Linux, silently unlimited elsewhere).
    pub max_peak_rss: Option<u64>,
}

impl RunBudget {
    /// A budget with no limits (every check passes).
    pub fn unlimited() -> RunBudget {
        RunBudget::default()
    }
}

/// Why a supervised run stopped before completing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// The wall-clock budget ran out.
    WallClock(Duration),
    /// The event budget ran out after this many processed events.
    Events(u64),
    /// Peak RSS exceeded the budget (bytes observed).
    PeakRss(u64),
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::WallClock(d) => {
                write!(
                    f,
                    "wall-clock budget exhausted after {:.1}s",
                    d.as_secs_f64()
                )
            }
            StopReason::Events(n) => write!(f, "event budget exhausted after {n} events"),
            StopReason::PeakRss(b) => {
                write!(f, "peak RSS {} MiB exceeded budget", b / (1024 * 1024))
            }
        }
    }
}

/// Watches a run against its [`RunBudget`]. Cancellation is cooperative:
/// the driver calls [`RunSupervisor::check`] at clean checkpoint
/// boundaries and stops (after writing a checkpoint) when a limit trips.
#[derive(Debug)]
pub struct RunSupervisor {
    budget: RunBudget,
    started: Instant,
}

impl RunSupervisor {
    /// Starts the wall clock now.
    pub fn new(budget: RunBudget) -> RunSupervisor {
        RunSupervisor {
            budget,
            started: Instant::now(),
        }
    }

    /// Elapsed wall-clock time since the supervisor started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Checks every budget axis; `work_units` is the engine's processed
    /// event count so far. Returns the first exceeded limit, if any.
    ///
    /// Each axis also publishes its remaining headroom as a flight-
    /// recorder gauge (obs side channel; write-only, so budgets behave
    /// identically with observability off or on).
    pub fn check(&self, work_units: u64) -> Option<StopReason> {
        if let Some(limit) = self.budget.wall_clock {
            let elapsed = self.started.elapsed();
            sonet_util::obs::gauge_set!(
                "supervisor.headroom_wall_ms",
                limit.saturating_sub(elapsed).as_millis() as u64
            );
            if elapsed >= limit {
                return Some(StopReason::WallClock(elapsed));
            }
        }
        if let Some(limit) = self.budget.max_events {
            sonet_util::obs::gauge_set!(
                "supervisor.headroom_events",
                limit.saturating_sub(work_units)
            );
            if work_units >= limit {
                return Some(StopReason::Events(work_units));
            }
        }
        if let Some(limit) = self.budget.max_peak_rss {
            if let Some(rss) = peak_rss_bytes() {
                sonet_util::obs::gauge_set!(
                    "supervisor.headroom_rss_bytes",
                    limit.saturating_sub(rss)
                );
                if rss > limit {
                    return Some(StopReason::PeakRss(rss));
                }
            }
        }
        None
    }
}

/// Peak resident set size of this process in bytes, from
/// `/proc/self/status` `VmHWM`. `None` off Linux or if the field is
/// missing/unparsable — budget checks then skip the RSS axis rather
/// than guess.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Runs `f`, converting a panic into `Err` with the panic message. The
/// unit of isolation for multi-scenario batches: one scenario tripping an
/// assert (or an auditor `panic!`) must not take down its siblings.
pub fn isolate<R>(f: impl FnOnce() -> R + UnwindSafe) -> Result<R, String> {
    match catch_unwind(f) {
        Ok(r) => Ok(r),
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "panic with non-string payload".to_string()
            };
            Err(msg)
        }
    }
}

/// Outcome of one scenario in a batch run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// `Ok(summary line)` or `Err(panic/abort message)`.
    pub result: Result<String, String>,
}

/// Partial-results rollup of a batch of isolated scenarios.
#[derive(Debug, Clone, Default)]
pub struct BatchSummary {
    /// One outcome per scenario, in run order.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl BatchSummary {
    /// An empty summary.
    pub fn new() -> BatchSummary {
        BatchSummary::default()
    }

    /// Records one scenario's outcome.
    pub fn push(&mut self, name: impl Into<String>, result: Result<String, String>) {
        self.outcomes.push(ScenarioOutcome {
            name: name.into(),
            result,
        });
    }

    /// True when every scenario succeeded.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(|o| o.result.is_ok())
    }

    /// Number of failed scenarios.
    pub fn failures(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.is_err()).count()
    }

    /// ASCII rollup: one line per scenario, failures marked.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            match &o.result {
                Ok(line) => out.push_str(&format!("ok   {:<14} {}\n", o.name, line)),
                Err(e) => out.push_str(&format!("FAIL {:<14} {}\n", o.name, e)),
            }
        }
        out.push_str(&format!(
            "{}/{} scenarios ok\n",
            self.outcomes.len() - self.failures(),
            self.outcomes.len()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let sup = RunSupervisor::new(RunBudget::unlimited());
        assert_eq!(sup.check(u64::MAX), None);
    }

    #[test]
    fn zero_wall_clock_budget_trips_immediately() {
        let sup = RunSupervisor::new(RunBudget {
            wall_clock: Some(Duration::ZERO),
            ..RunBudget::unlimited()
        });
        assert!(matches!(sup.check(0), Some(StopReason::WallClock(_))));
    }

    #[test]
    fn event_budget_trips_at_threshold() {
        let sup = RunSupervisor::new(RunBudget {
            max_events: Some(100),
            ..RunBudget::unlimited()
        });
        assert_eq!(sup.check(99), None);
        assert_eq!(sup.check(100), Some(StopReason::Events(100)));
    }

    #[test]
    fn tiny_rss_budget_trips_on_linux() {
        let sup = RunSupervisor::new(RunBudget {
            max_peak_rss: Some(1),
            ..RunBudget::unlimited()
        });
        // Any live process has >1 byte peak RSS; off Linux the axis is
        // unenforceable and the check passes.
        if peak_rss_bytes().is_some() {
            assert!(matches!(sup.check(0), Some(StopReason::PeakRss(_))));
        } else {
            assert_eq!(sup.check(0), None);
        }
    }

    #[test]
    fn isolate_returns_ok_value() {
        assert_eq!(isolate(|| 7), Ok(7));
    }

    #[test]
    fn isolate_converts_panics_to_errors() {
        let r: Result<(), String> = isolate(|| panic!("scenario blew up"));
        assert_eq!(r, Err("scenario blew up".to_string()));
    }

    #[test]
    fn batch_summary_reports_partial_results() {
        let mut batch = BatchSummary::new();
        batch.push("table2", Ok("4 rows".into()));
        batch.push("fig9", Err("index out of bounds".into()));
        batch.push("fig12", Ok("2 modes".into()));
        assert!(!batch.all_ok());
        assert_eq!(batch.failures(), 1);
        let r = batch.render();
        assert!(r.contains("FAIL fig9"));
        assert!(r.contains("2/3 scenarios ok"));
    }
}
