//! The standard packet-tier capture: one simulation run with port
//! mirrors on a representative host of each monitored type, mirroring the
//! paper's §3.3.2 deployment ("a rack of Web servers, a Hadoop node,
//! cache followers and leaders, and a Multifeed node").

use crate::scenario::{packet_tier_spec, ScenarioScale};
use serde::{Deserialize, Serialize};
use sonet_analysis::HostTrace;
use sonet_netsim::{
    FaultEvent, FaultKind, FaultPlan, FidelityConfig, FidelityMode, SimConfig, SimOutputs,
    Simulator,
};
use sonet_telemetry::PortMirror;
use sonet_topology::{HostId, HostRole, Topology};
use sonet_util::{SimDuration, SimTime};
use sonet_workload::{ServiceProfiles, Workload};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Configuration of a standard capture run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaptureConfig {
    /// Scenario seed (determines every trace byte).
    pub seed: u64,
    /// Plant size.
    pub scale: ScenarioScale,
    /// Trace length (paper: 10 minutes, 2.5 for the Web rack; scaled
    /// runs use tens of seconds).
    pub duration: SimDuration,
    /// Global rate multiplier over the profile defaults.
    pub rate_scale: f64,
    /// Mirror buffer capacity in packets per §3.3.2's RAM limit.
    pub mirror_capacity: usize,
    /// Faults injected during the run (empty = healthy baseline).
    /// Network faults go to the engine; mirror-loss faults are applied to
    /// the capture path at the next 250 ms generation-window boundary.
    pub faults: FaultPlan,
    /// Engine fidelity: full packet DES (default) or the hybrid
    /// flow/packet fast path. Mirrored hosts are fidelity islands, so
    /// traces stay packet-exact either way.
    pub fidelity: FidelityMode,
}

impl CaptureConfig {
    /// Bench-grade capture: tens of simulated seconds at elevated rates.
    pub fn standard(seed: u64) -> CaptureConfig {
        CaptureConfig {
            seed,
            scale: ScenarioScale::Standard,
            duration: SimDuration::from_secs(15),
            rate_scale: 10.0,
            mirror_capacity: 4_000_000,
            faults: FaultPlan::new(),
            fidelity: FidelityMode::Packet,
        }
    }

    /// Test-grade capture: a few simulated seconds on a tiny plant.
    pub fn fast(seed: u64) -> CaptureConfig {
        CaptureConfig {
            seed,
            scale: ScenarioScale::Tiny,
            duration: SimDuration::from_secs(3),
            rate_scale: 5.0,
            mirror_capacity: 500_000,
            faults: FaultPlan::new(),
            fidelity: FidelityMode::Packet,
        }
    }

    /// The same capture with `faults` injected.
    pub fn with_faults(mut self, faults: FaultPlan) -> CaptureConfig {
        self.faults = faults;
        self
    }

    /// The same capture under a different engine fidelity.
    pub fn with_fidelity(mut self, fidelity: FidelityMode) -> CaptureConfig {
        self.fidelity = fidelity;
        self
    }
}

/// The roles the paper monitored with port mirrors.
pub const MONITORED_ROLES: [HostRole; 5] = [
    HostRole::Web,
    HostRole::CacheFollower,
    HostRole::CacheLeader,
    HostRole::Hadoop,
    HostRole::Multifeed,
];

/// Output of one capture run: per-role host traces plus engine counters.
pub struct StandardCapture {
    /// The plant.
    pub topo: Arc<Topology>,
    /// Monitored host per role.
    pub monitored: HashMap<HostRole, HostId>,
    /// Per-role traces of the monitored hosts.
    pub traces: HashMap<HostRole, HostTrace>,
    /// Engine outputs (counters, drops).
    pub outputs: SimOutputs,
    /// Trace duration.
    pub duration: SimDuration,
    /// Whether the mirror hit its memory limit.
    pub truncated: bool,
    /// Total calls the workload issued.
    pub issued_calls: u64,
    /// Mirrored packets lost to injected capture faults (counted, not
    /// silently gone).
    pub mirror_fault_dropped: u64,
    /// Mirrored packets lost to the mirror's memory limit.
    pub mirror_overflow: u64,
    /// Packets offered to the mirror (captured + overflowed + lost).
    pub mirror_offered: u64,
}

/// The live, resumable innards of a capture run: plant, workload, engine
/// (with the port mirror as its tap), and the telemetry-fault cursor.
///
/// [`StandardCapture::run`] drives it start to finish in one go; the
/// supervised driver ([`crate::supervised`]) drives it window by window so
/// it can checkpoint at window boundaries and resume mid-trace.
pub(crate) struct CaptureState {
    /// The plant.
    pub(crate) topo: Arc<Topology>,
    /// Traffic generator.
    pub(crate) workload: Workload,
    /// The engine; the port mirror is its tap.
    pub(crate) sim: Simulator<PortMirror>,
    /// Monitored host per role.
    pub(crate) monitored: HashMap<HostRole, HostId>,
    /// Telemetry fault events, time-ordered.
    pub(crate) telemetry: Vec<FaultEvent>,
    /// Next telemetry event to apply.
    pub(crate) tel_next: usize,
    /// Virtual time reached so far.
    pub(crate) t: SimTime,
}

/// The deterministic structure [`CaptureState::rebuild_static`] recomputes
/// from a [`CaptureConfig`] on resume; the caller pairs it with the
/// checkpointed dynamic state (engine, workload RNGs, mirror).
pub(crate) struct CaptureStatics {
    /// The plant.
    pub(crate) topo: Arc<Topology>,
    /// Traffic generator with freshly built (not yet restored) state.
    pub(crate) workload: Workload,
    /// Monitored host per role.
    pub(crate) monitored: HashMap<HostRole, HostId>,
    /// Telemetry fault events, time-ordered.
    pub(crate) telemetry: Vec<FaultEvent>,
}

/// The generation-window stride of every capture run. Supervised
/// checkpoints land on these boundaries, which is what keeps a resumed
/// run's window sequence identical to an uninterrupted one.
pub(crate) const CAPTURE_WINDOW: SimDuration = SimDuration::from_millis(250);

impl CaptureState {
    /// Builds the plant, workload, engine, and mirrors for `cfg`. Fallible:
    /// arbitrary configs (wrong scale spec, invalid fault plan) surface as
    /// errors instead of panics.
    pub(crate) fn build(cfg: &CaptureConfig) -> Result<CaptureState, String> {
        let topo =
            Arc::new(Topology::build(packet_tier_spec(cfg.scale)).map_err(|e| e.to_string())?);
        let mut profiles = ServiceProfiles::default();
        profiles.rate_scale = cfg.rate_scale;
        let mut workload =
            Workload::new(Arc::clone(&topo), profiles, cfg.seed).map_err(|e| e.to_string())?;

        let mirror = PortMirror::new(cfg.mirror_capacity);
        let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), mirror)
            .map_err(|e| e.to_string())?;
        if cfg.fidelity == FidelityMode::Hybrid {
            sim.set_fidelity(FidelityConfig::hybrid())
                .map_err(|e| e.to_string())?;
        }

        // Mirror one host of each monitored role (§3.3.2).
        let mut monitored = HashMap::new();
        for role in MONITORED_ROLES {
            if let Some(h) = workload.monitored_host(role) {
                sim.watch_link(topo.host_uplink(h));
                sim.watch_link(topo.host_downlink(h));
                monitored.insert(role, h);
            }
        }
        // The paper traced its Hadoop node "over a relatively busy
        // 10-minute interval" — pin the monitored node busy for the trace.
        if let Some(&h) = monitored.get(&HostRole::Hadoop) {
            workload.ensure_busy_start(h, cfg.duration.as_secs_f64());
        }

        // Network faults ride the engine's event calendar; telemetry
        // faults are applied to the tap at window boundaries.
        cfg.faults.validate(&topo).map_err(|e| e.to_string())?;
        sim.inject_faults(&cfg.faults).map_err(|e| e.to_string())?;
        let telemetry: Vec<FaultEvent> = cfg.faults.telemetry_events().copied().collect();
        let mut state = CaptureState {
            topo,
            workload,
            sim,
            monitored,
            telemetry,
            tel_next: 0,
            t: SimTime::ZERO,
        };
        state.apply_telemetry();
        Ok(state)
    }

    /// Rebuilds the deterministic structure (plant, monitored hosts,
    /// telemetry schedule) for `cfg` *without* touching dynamic state —
    /// the restore path: the caller then installs the checkpointed engine,
    /// workload, and mirror.
    pub(crate) fn rebuild_static(cfg: &CaptureConfig) -> Result<CaptureStatics, String> {
        let topo =
            Arc::new(Topology::build(packet_tier_spec(cfg.scale)).map_err(|e| e.to_string())?);
        let mut profiles = ServiceProfiles::default();
        profiles.rate_scale = cfg.rate_scale;
        let workload =
            Workload::new(Arc::clone(&topo), profiles, cfg.seed).map_err(|e| e.to_string())?;
        let mut monitored = HashMap::new();
        for role in MONITORED_ROLES {
            if let Some(h) = workload.monitored_host(role) {
                monitored.insert(role, h);
            }
        }
        let telemetry: Vec<FaultEvent> = cfg.faults.telemetry_events().copied().collect();
        Ok(CaptureStatics {
            topo,
            workload,
            monitored,
            telemetry,
        })
    }

    fn apply_telemetry(&mut self) {
        while self.tel_next < self.telemetry.len() && self.telemetry[self.tel_next].at <= self.t {
            if let FaultKind::MirrorLoss { fraction } = self.telemetry[self.tel_next].kind {
                self.sim.tap_mut().set_fault_loss(fraction);
            }
            self.tel_next += 1;
        }
    }

    /// Advances one generation window (or to `horizon`, whichever is
    /// nearer): generate calls, run the engine, apply due telemetry
    /// faults. Returns the new virtual time.
    pub(crate) fn advance(&mut self, horizon: SimTime) -> Result<SimTime, String> {
        self.t = (self.t + CAPTURE_WINDOW).min(horizon);
        {
            let _span = sonet_util::obs::trace::span("generate");
            self.workload
                .generate(&mut self.sim, self.t)
                .map_err(|e| e.to_string())?;
        }
        let _span = sonet_util::obs::trace::span("ingest");
        self.sim.run_until(self.t);
        self.apply_telemetry();
        Ok(self.t)
    }

    /// Finishes the run, turning engine state into a [`StandardCapture`].
    pub(crate) fn finish(self, cfg: &CaptureConfig) -> StandardCapture {
        let _span = sonet_util::obs::trace::span("analyze");
        let issued_calls = self.workload.issued_calls();
        let (outputs, mirror) = self.sim.finish();
        let truncated = mirror.truncated();
        let mirror_fault_dropped = mirror.fault_dropped();
        let mirror_overflow = mirror.overflow();
        let mirror_offered = mirror.offered();
        let records = mirror.into_records();
        // Each monitored host filters the full mirror stream independently,
        // so the per-role trace builds fan out across the worker pool.
        let monitored: Vec<(HostRole, HostId)> =
            self.monitored.iter().map(|(&r, &h)| (r, h)).collect();
        let threads = sonet_util::par::resolve_threads(None);
        let traces = sonet_util::par::map_indexed(threads, monitored.len(), |i| {
            let (role, host) = monitored[i];
            (role, HostTrace::from_mirror(&records, host))
        })
        .into_iter()
        .collect();
        StandardCapture {
            topo: self.topo,
            monitored: self.monitored,
            traces,
            outputs,
            duration: cfg.duration,
            truncated,
            issued_calls,
            mirror_fault_dropped,
            mirror_overflow,
            mirror_offered,
        }
    }
}

impl fmt::Debug for StandardCapture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StandardCapture")
            .field("monitored", &self.monitored.len())
            .field("duration", &self.duration)
            .field("issued_calls", &self.issued_calls)
            .field("mirror_offered", &self.mirror_offered)
            .field("truncated", &self.truncated)
            .finish()
    }
}

impl StandardCapture {
    /// Runs the capture.
    pub fn run(cfg: &CaptureConfig) -> StandardCapture {
        let mut state = CaptureState::build(cfg).expect("preset capture configs are valid");
        let horizon = SimTime::ZERO + cfg.duration;
        let mut hb = sonet_util::obs::report::Heartbeat::new("capture");
        while state.t < horizon {
            state
                .advance(horizon)
                .expect("generation stays in the future");
            hb.tick(state.sim.processed_events());
        }
        state.finish(cfg)
    }

    /// The trace of a monitored role, if that role exists in the plant.
    pub fn trace(&self, role: HostRole) -> Option<&HostTrace> {
        self.traces.get(&role)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_produces_traces_for_all_monitored_roles() {
        let cap = StandardCapture::run(&CaptureConfig::fast(1));
        for role in MONITORED_ROLES {
            let trace = cap.trace(role).unwrap_or_else(|| panic!("{role} missing"));
            assert!(
                !trace.outbound().is_empty(),
                "{role} produced no outbound packets"
            );
        }
        assert!(
            !cap.truncated,
            "tiny capture should not overflow the mirror"
        );
        assert!(cap.issued_calls > 0);
        assert!(cap.outputs.delivered_packets > 0);
    }

    #[test]
    fn capture_is_deterministic() {
        let a = StandardCapture::run(&CaptureConfig::fast(7));
        let b = StandardCapture::run(&CaptureConfig::fast(7));
        assert_eq!(a.outputs.delivered_packets, b.outputs.delivered_packets);
        let ta = &a.traces[&HostRole::Web];
        let tb = &b.traces[&HostRole::Web];
        assert_eq!(ta.outbound().len(), tb.outbound().len());
    }

    #[test]
    fn faulted_capture_degrades_instead_of_panicking() {
        use sonet_netsim::{FaultKind, FaultPlan};
        use sonet_topology::{SwitchId, SwitchKind};

        // Find a CSW on the same plant the capture will build.
        let topo = Topology::build(packet_tier_spec(ScenarioScale::Tiny)).expect("valid");
        let csw = topo
            .switches()
            .iter()
            .position(|s| s.kind == SwitchKind::Csw)
            .map(|i| SwitchId(i as u32))
            .expect("tiny plant has CSWs");

        // A CSW post dies one second in and never recovers, and the
        // mirror's capture path fails completely half-way through.
        let plan = FaultPlan::new()
            .at(SimTime::from_secs(1), FaultKind::SwitchDown(csw))
            .at(
                SimTime::from_millis(1500),
                FaultKind::MirrorLoss { fraction: 1.0 },
            );
        let cap = StandardCapture::run(&CaptureConfig::fast(7).with_faults(plan));

        assert_eq!(
            cap.outputs.faults_applied, 1,
            "network fault reached the engine"
        );
        assert!(
            cap.outputs.reroutes > 0,
            "flows re-hashed around the dead post"
        );
        let fault_drops: u64 = cap
            .outputs
            .link_counters
            .iter()
            .map(|c| c.fault_drop_packets)
            .sum();
        assert!(
            fault_drops > 0,
            "in-flight packets on the dead post were counted"
        );
        assert!(cap.mirror_fault_dropped > 0, "telemetry losses are counted");
        assert!(
            cap.mirror_offered > cap.mirror_fault_dropped,
            "the first half of the capture still exists"
        );
        assert!(cap.outputs.delivered_packets > 0);

        // Faulted runs are just as deterministic as healthy ones.
        let plan2 = FaultPlan::new()
            .at(SimTime::from_secs(1), FaultKind::SwitchDown(csw))
            .at(
                SimTime::from_millis(1500),
                FaultKind::MirrorLoss { fraction: 1.0 },
            );
        let again = StandardCapture::run(&CaptureConfig::fast(7).with_faults(plan2));
        assert_eq!(
            cap.outputs.delivered_packets,
            again.outputs.delivered_packets
        );
        assert_eq!(cap.outputs.reroutes, again.outputs.reroutes);
        assert_eq!(cap.mirror_fault_dropped, again.mirror_fault_dropped);
    }
}
