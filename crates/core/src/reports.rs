//! Typed reports for every table and figure, with paper-expected values
//! embedded so each `render()` prints paper-vs-measured.

use crate::capture::StandardCapture;
use crate::fleet_run::FleetData;
use crate::render::{cdf_series, num, quantiles, series_row, table};
use crate::scenario::{packet_tier_spec, ScenarioScale};
use serde::Serialize;
use sonet_analysis::concurrency::{concurrency_cdfs, heavy_hitter_rack_cdfs, CountEntity};
use sonet_analysis::flows::{
    duration_cdfs_by_locality, flow_stats, size_cdfs_by_locality, FlowAgg,
};
use sonet_analysis::heavy_hitters::{
    enclosing_second_intersection, hitter_stats, persistence_fractions, HeavyHitterAgg, HitterStats,
};
use sonet_analysis::locality::{
    cluster_demand_matrix, locality_timeseries, rack_demand_matrix, service_matrix_row,
    LocalityTable, MatrixStats,
};
use sonet_analysis::packets::{
    bimodal_fraction, binned_counts, full_mtu_fraction, onoff_metrics, packet_size_cdf,
    per_destination_onoff, syn_interarrival_cdf, OnOffMetrics,
};
use sonet_analysis::rates::{rack_rate_series, StabilityMetrics};
use sonet_analysis::utilization::{layer_utilization, LinkLayer};
use sonet_netsim::{BufferConfig, SimConfig, Simulator};
use sonet_telemetry::PortMirror;
use sonet_topology::{ClusterType, HostRole, Locality, Node, Topology};
use sonet_util::{percentile, EmpiricalCdf, SimDuration, SimTime};
use sonet_workload::{DiurnalPattern, ServiceProfiles, Workload};
use std::sync::Arc;

/// Errors from report computations that build their own inputs or make
/// structural demands on the plant (currently [`fig5`] and [`fig15`];
/// capture-fed reports are infallible given a capture).
#[derive(Debug, Clone, PartialEq)]
pub enum ReportError {
    /// The plant has no cluster of the required type.
    MissingClusterType(ClusterType),
    /// The plant has no rack of the required role.
    MissingRole(HostRole),
    /// A report-owned simulation failed to build or run.
    Build(String),
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::MissingClusterType(t) => {
                write!(f, "plant has no {t:?} cluster")
            }
            ReportError::MissingRole(r) => write!(f, "plant has no {r:?} rack"),
            ReportError::Build(e) => write!(f, "report simulation failed: {e}"),
        }
    }
}

impl std::error::Error for ReportError {}

/// Roles whose traces the sub-second experiments analyze.
const TRACE_ROLES: [HostRole; 4] = [
    HostRole::Web,
    HostRole::CacheFollower,
    HostRole::CacheLeader,
    HostRole::Hadoop,
];

// ---------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------

/// Table 2: outbound traffic percentages by destination service.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Report {
    /// `(source role, destination role → %)`, in stable order.
    pub rows: Vec<(HostRole, std::collections::BTreeMap<HostRole, f64>)>,
}

/// Paper values for Table 2 (columns: Web, Cache, MF, SLB, Hadoop, Rest).
pub const TABLE2_PAPER: [(&str, [f64; 6]); 4] = [
    ("Web", [0.0, 63.1, 15.2, 5.6, 0.0, 16.1]),
    ("Cache-l", [0.0, 86.6, 5.9, 0.0, 0.0, 7.5]),
    ("Cache-f", [88.7, 5.8, 0.0, 0.0, 0.0, 5.5]),
    ("Hadoop", [0.0, 0.0, 0.0, 0.0, 99.8, 0.2]),
];

/// Computes Table 2 from the packet-tier capture.
pub fn table2(cap: &StandardCapture) -> Table2Report {
    let rows = TRACE_ROLES
        .iter()
        .filter_map(|&role| {
            cap.trace(role).map(|t| {
                let sorted: std::collections::BTreeMap<HostRole, f64> =
                    service_matrix_row(t, &cap.topo).into_iter().collect();
                (role, sorted)
            })
        })
        .collect();
    Table2Report { rows }
}

impl Table2Report {
    /// Collapses a measured row into the paper's six columns.
    fn collapse(row: &std::collections::BTreeMap<HostRole, f64>) -> [f64; 6] {
        let g = |r: HostRole| row.get(&r).copied().unwrap_or(0.0);
        [
            g(HostRole::Web),
            g(HostRole::CacheFollower) + g(HostRole::CacheLeader),
            g(HostRole::Multifeed),
            g(HostRole::Slb),
            g(HostRole::Hadoop),
            g(HostRole::Db) + g(HostRole::Misc),
        ]
    }

    /// ASCII paper-vs-measured table.
    pub fn render(&self) -> String {
        let headers = ["Type", "Web", "Cache", "MF", "SLB", "Hadoop", "Rest"];
        let mut rows = Vec::new();
        for (role, shares) in &self.rows {
            let m = Self::collapse(shares);
            rows.push(
                std::iter::once(format!("{} (measured)", role.label()))
                    .chain(m.iter().map(|v| num(*v)))
                    .collect(),
            );
            if let Some((_, p)) = TABLE2_PAPER.iter().find(|(l, _)| *l == role.label()) {
                rows.push(
                    std::iter::once(format!("{} (paper)", role.label()))
                        .chain(p.iter().map(|v| num(*v)))
                        .collect(),
                );
            }
        }
        format!(
            "Table 2: outbound traffic % by destination service\n{}",
            table(&headers, &rows)
        )
    }
}

// ---------------------------------------------------------------------
// Table 3
// ---------------------------------------------------------------------

/// Table 3: locality per cluster type plus traffic shares.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Report {
    /// Measured table.
    pub table: LocalityTable,
}

/// Paper Table 3 (columns All, Hadoop, FE, Svc, Cache, DB; rows rack,
/// cluster, DC, inter-DC; Cache DC read as 70.7 per the text — see
/// EXPERIMENTS.md).
pub const TABLE3_PAPER: [[f64; 6]; 4] = [
    [12.9, 13.3, 2.7, 12.1, 0.2, 0.0],
    [57.5, 80.9, 81.3, 56.3, 13.0, 30.7],
    [11.9, 3.3, 7.3, 15.7, 70.7, 34.5],
    [17.7, 2.5, 8.6, 15.9, 16.1, 34.8],
];

/// Paper traffic shares (bottom row of Table 3).
pub const TABLE3_PAPER_SHARES: [f64; 5] = [23.7, 21.5, 18.0, 10.2, 5.2];

/// Computes Table 3 from the fleet tier.
pub fn table3(fleet: &FleetData) -> Table3Report {
    Table3Report {
        table: LocalityTable::of(&fleet.table),
    }
}

impl Table3Report {
    /// ASCII paper-vs-measured table.
    pub fn render(&self) -> String {
        let headers = ["Locality", "All", "Hadoop", "FE", "Svc", "Cache", "DB"];
        let row_names = ["Rack", "Cluster", "DC", "Inter-DC"];
        let pick = |b: &sonet_analysis::locality::LocalityBreakdown, i: usize| match i {
            0 => b.rack,
            1 => b.cluster,
            2 => b.datacenter,
            _ => b.inter_dc,
        };
        let col = |t: ClusterType| {
            self.table
                .per_type
                .iter()
                .find(|(ty, _, _)| *ty == t)
                .map(|(_, b, s)| (*b, *s))
        };
        let order = [
            ClusterType::Hadoop,
            ClusterType::Frontend,
            ClusterType::Service,
            ClusterType::Cache,
            ClusterType::Database,
        ];
        let mut rows = Vec::new();
        for (i, name) in row_names.iter().enumerate() {
            let mut r = vec![format!("{name} (measured)"), num(pick(&self.table.all, i))];
            for t in order {
                r.push(
                    col(t)
                        .map(|(b, _)| num(pick(&b, i)))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            rows.push(r);
            let mut p = vec![format!("{name} (paper)")];
            p.extend(TABLE3_PAPER[i].iter().map(|v| num(*v)));
            rows.push(p);
        }
        let mut share_row = vec!["Share% (measured)".to_string(), "100".to_string()];
        for t in order {
            share_row.push(col(t).map(|(_, s)| num(s)).unwrap_or_else(|| "-".into()));
        }
        rows.push(share_row);
        let mut p = vec!["Share% (paper)".to_string(), "-".to_string()];
        p.extend(TABLE3_PAPER_SHARES.iter().map(|v| num(*v)));
        rows.push(p);
        format!(
            "Table 3: traffic locality by cluster type\n{}",
            table(&headers, &rows)
        )
    }
}

// ---------------------------------------------------------------------
// Table 4
// ---------------------------------------------------------------------

/// Table 4: heavy-hitter count and rate percentiles in 1-ms intervals.
#[derive(Debug, Clone, Serialize)]
pub struct Table4Report {
    /// `(role, aggregation, stats)`.
    pub rows: Vec<(HostRole, HeavyHitterAgg, HitterStats)>,
}

/// Computes Table 4 from the capture.
pub fn table4(cap: &StandardCapture) -> Table4Report {
    let mut rows = Vec::new();
    for role in TRACE_ROLES {
        let Some(trace) = cap.trace(role) else {
            continue;
        };
        for agg in [
            HeavyHitterAgg::Flow,
            HeavyHitterAgg::Host,
            HeavyHitterAgg::Rack,
        ] {
            if let Some(stats) = hitter_stats(trace, &cap.topo, SimDuration::from_millis(1), agg) {
                rows.push((role, agg, stats));
            }
        }
    }
    Table4Report { rows }
}

impl Table4Report {
    /// ASCII table (paper shape: counts of a few to tens; Hadoop 1–3).
    pub fn render(&self) -> String {
        let headers = [
            "Type", "Agg", "n p10", "n p50", "n p90", "Mbps p10", "Mbps p50", "Mbps p90",
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(role, agg, s)| {
                vec![
                    role.label().to_string(),
                    agg.label().to_string(),
                    num(s.count.p10),
                    num(s.count.p50),
                    num(s.count.p90),
                    num(s.rate_mbps.p10),
                    num(s.rate_mbps.p50),
                    num(s.rate_mbps.p90),
                ]
            })
            .collect();
        format!(
            "Table 4: heavy hitters in 1-ms intervals (paper: Web 4/4/3 median, \
             Cache-f 19/19/15, Cache-l 16/8/7, Hadoop 2/2/2)\n{}",
            table(&headers, &rows)
        )
    }
}

// ---------------------------------------------------------------------
// Fig 4
// ---------------------------------------------------------------------

/// Fig 4: per-second outbound locality series per server type.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Report {
    /// Per role: rows of `[rack, cluster, dc, inter-dc]` Mbps per second.
    pub series: Vec<(HostRole, Vec<[f64; 4]>)>,
}

/// Computes Fig 4 from the capture.
pub fn fig4(cap: &StandardCapture) -> Fig4Report {
    let horizon = SimTime::ZERO + cap.duration;
    let series = TRACE_ROLES
        .iter()
        .filter_map(|&role| {
            cap.trace(role).map(|t| {
                (
                    role,
                    locality_timeseries(t, &cap.topo, SimDuration::from_secs(1), horizon),
                )
            })
        })
        .collect();
    Fig4Report { series }
}

impl Fig4Report {
    /// Locality byte fractions over the whole series for one role.
    pub fn locality_fractions(&self, role: HostRole) -> Option<[f64; 4]> {
        let (_, s) = self.series.iter().find(|(r, _)| *r == role)?;
        let mut sums = [0.0; 4];
        for row in s {
            for i in 0..4 {
                sums[i] += row[i];
            }
        }
        let total: f64 = sums.iter().sum();
        if total <= 0.0 {
            return None;
        }
        Some([
            sums[0] / total * 100.0,
            sums[1] / total * 100.0,
            sums[2] / total * 100.0,
            sums[3] / total * 100.0,
        ])
    }

    /// Coefficient of variation of the per-second total (flatness; paper:
    /// "essentially flat" for Frontend/Cache, diverse for Hadoop).
    pub fn total_cov(&self, role: HostRole) -> Option<f64> {
        let (_, s) = self.series.iter().find(|(r, _)| *r == role)?;
        let totals: Vec<f64> = s.iter().map(|r| r.iter().sum()).collect();
        let n = totals.len() as f64;
        if n == 0.0 {
            return None;
        }
        let mean = totals.iter().sum::<f64>() / n;
        if mean <= 0.0 {
            return None;
        }
        let var = totals.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / n;
        Some(var.sqrt() / mean)
    }

    /// ASCII summary.
    pub fn render(&self) -> String {
        let headers = [
            "Type",
            "Rack%",
            "Cluster%",
            "DC%",
            "InterDC%",
            "CoV(total)",
            "Mbps series",
        ];
        let mut rows = Vec::new();
        for (role, s) in &self.series {
            let f = self.locality_fractions(*role).unwrap_or([0.0; 4]);
            let cov = self.total_cov(*role).unwrap_or(f64::NAN);
            let totals: Vec<f64> = s.iter().map(|r| r.iter().sum()).collect();
            rows.push(vec![
                role.label().to_string(),
                num(f[0]),
                num(f[1]),
                num(f[2]),
                num(f[3]),
                num(cov),
                series_row(&totals, 10),
            ]);
        }
        format!(
            "Fig 4: per-second locality (paper: Hadoop rack+cluster local & variable; \
             Web/Cache minimal rack-local & flat)\n{}",
            table(&headers, &rows)
        )
    }
}

// ---------------------------------------------------------------------
// Fig 5
// ---------------------------------------------------------------------

/// Fig 5: demand matrices.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Report {
    /// Hadoop cluster rack-to-rack matrix stats.
    pub hadoop: MatrixStats,
    /// Frontend cluster rack-to-rack matrix stats.
    pub frontend: MatrixStats,
    /// Cluster-to-cluster matrix stats (within the fleet).
    pub clusters: MatrixStats,
    /// Fraction of frontend intra-cluster bytes flowing between Web racks
    /// and cache racks (the bipartite block of Fig 5b).
    pub frontend_bipartite_fraction: f64,
    /// The frontend matrix itself (row-major), for plotting.
    pub frontend_matrix: Vec<Vec<u64>>,
    /// The Hadoop matrix.
    pub hadoop_matrix: Vec<Vec<u64>>,
}

/// Computes Fig 5 from the fleet tier. Errors if the plant lacks a Hadoop
/// or Frontend cluster (possible with hand-built specs; presets have both).
pub fn fig5(fleet: &FleetData) -> Result<Fig5Report, ReportError> {
    let topo = &fleet.topo;
    let hadoop_cluster = topo
        .first_cluster_of_type(ClusterType::Hadoop)
        .ok_or(ReportError::MissingClusterType(ClusterType::Hadoop))?;
    let fe_cluster = topo
        .first_cluster_of_type(ClusterType::Frontend)
        .ok_or(ReportError::MissingClusterType(ClusterType::Frontend))?;
    let hadoop_matrix = rack_demand_matrix(&fleet.table, topo, hadoop_cluster);
    let frontend_matrix = rack_demand_matrix(&fleet.table, topo, fe_cluster);
    let clusters_m = cluster_demand_matrix(&fleet.table, topo.clusters().len());

    // Bipartite fraction: bytes between web racks and cache racks over all
    // intra-cluster bytes.
    let racks = &topo.cluster(fe_cluster).racks;
    let mut web_cache = 0u64;
    let mut total = 0u64;
    for (i, row) in frontend_matrix.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            total += v;
            let ri = topo.rack(racks[i]).role;
            let rj = topo.rack(racks[j]).role;
            let pair = (ri, rj);
            if matches!(
                pair,
                (HostRole::Web, HostRole::CacheFollower) | (HostRole::CacheFollower, HostRole::Web)
            ) {
                web_cache += v;
            }
        }
    }
    Ok(Fig5Report {
        hadoop: MatrixStats::of(&hadoop_matrix),
        frontend: MatrixStats::of(&frontend_matrix),
        clusters: MatrixStats::of(&clusters_m),
        frontend_bipartite_fraction: if total > 0 {
            web_cache as f64 / total as f64
        } else {
            0.0
        },
        frontend_matrix,
        hadoop_matrix,
    })
}

impl Fig5Report {
    /// ASCII summary.
    pub fn render(&self) -> String {
        let headers = ["Matrix", "diag%", "fill%", "decades"];
        let rows = vec![
            vec![
                "Hadoop rack-to-rack".into(),
                num(self.hadoop.diagonal_fraction * 100.0),
                num(self.hadoop.fill * 100.0),
                num(self.hadoop.decades),
            ],
            vec![
                "Frontend rack-to-rack".into(),
                num(self.frontend.diagonal_fraction * 100.0),
                num(self.frontend.fill * 100.0),
                num(self.frontend.decades),
            ],
            vec![
                "Cluster-to-cluster".into(),
                num(self.clusters.diagonal_fraction * 100.0),
                num(self.clusters.fill * 100.0),
                num(self.clusters.decades),
            ],
        ];
        format!(
            "Fig 5: demand matrices (paper: Hadoop strong diagonal; Frontend \
             bipartite web<->cache, not rack-local; cluster pairs span >7 decades)\n{}\
             Frontend web<->cache bipartite share: {}%\n",
            table(&headers, &rows),
            num(self.frontend_bipartite_fraction * 100.0)
        )
    }
}

// ---------------------------------------------------------------------
// Figs 6, 7, 9
// ---------------------------------------------------------------------

/// One [`FlowCdfReport`] row: (role, locality → p10/p50/p90 string,
/// overall CDF quantiles).
pub type FlowCdfRow = (HostRole, Vec<(Locality, String)>, String);

/// Fig 6/7: flow size & duration CDFs by destination locality.
#[derive(Debug, Clone, Serialize)]
pub struct FlowCdfReport {
    /// Which figure ("size KB" or "duration ms").
    pub what: String,
    /// Per role: (locality → p10/p50/p90 string, overall CDF quantiles).
    pub rows: Vec<FlowCdfRow>,
}

fn flow_cdf_report(cap: &StandardCapture, sizes: bool) -> FlowCdfReport {
    // Each role's CDF construction walks its own trace, so the rows fan
    // out across the worker pool; map_indexed keeps them in role order.
    let roles = [HostRole::Web, HostRole::CacheFollower, HostRole::Hadoop];
    let threads = sonet_util::par::resolve_threads(None);
    let rows = sonet_util::par::map_indexed(threads, roles.len(), |i| {
        let role = roles[i];
        let trace = cap.trace(role)?;
        let flows = flow_stats(trace, &cap.topo, FlowAgg::FiveTuple);
        let (per, all) = if sizes {
            size_cdfs_by_locality(&flows)
        } else {
            duration_cdfs_by_locality(&flows)
        };
        let mut per_rows: Vec<(Locality, String)> =
            per.iter().map(|(l, cdf)| (*l, quantiles(cdf))).collect();
        per_rows.sort_by_key(|(l, _)| *l);
        Some((role, per_rows, quantiles(&all)))
    })
    .into_iter()
    .flatten()
    .collect();
    FlowCdfReport {
        what: if sizes {
            "size KB".into()
        } else {
            "duration ms".into()
        },
        rows,
    }
}

/// Computes Fig 6 (flow sizes).
pub fn fig6(cap: &StandardCapture) -> FlowCdfReport {
    flow_cdf_report(cap, true)
}

/// Computes Fig 7 (flow durations).
pub fn fig7(cap: &StandardCapture) -> FlowCdfReport {
    flow_cdf_report(cap, false)
}

impl FlowCdfReport {
    /// ASCII summary.
    pub fn render(&self) -> String {
        let headers = ["Type", "Locality", "p10/p50/p90"];
        let mut rows = Vec::new();
        for (role, per, all) in &self.rows {
            rows.push(vec![role.label().into(), "All".into(), all.clone()]);
            for (l, q) in per {
                rows.push(vec![role.label().into(), l.label().into(), q.clone()]);
            }
        }
        format!(
            "Flow {} CDFs by destination locality\n{}",
            self.what,
            table(&headers, &rows)
        )
    }
}

/// Fig 9: cache-follower flow sizes, 5-tuple vs per-host aggregation.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Report {
    /// 5-tuple flow size quantiles (KB), all destinations.
    pub five_tuple: String,
    /// Per-destination-host size quantiles (KB), all destinations.
    pub per_host: String,
    /// 5-tuple quantiles restricted to intra-cluster (web-bound) flows —
    /// the mass the paper's Fig 9 is about.
    pub five_tuple_cluster: String,
    /// Per-host quantiles restricted to intra-cluster flows.
    pub per_host_cluster: String,
    /// p90/p10 spread at 5-tuple granularity (intra-cluster).
    pub tuple_spread: f64,
    /// p90/p10 spread at host granularity (intra-cluster; paper: the wide
    /// flow distribution "disappears at host and rack levels, replaced by
    /// a very tight distribution").
    pub host_spread: f64,
}

/// Computes Fig 9 from the cache-follower trace.
pub fn fig9(cap: &StandardCapture) -> Option<Fig9Report> {
    let trace = cap.trace(HostRole::CacheFollower)?;
    let quants = |flows: &[sonet_analysis::FlowStat], cluster_only: bool| {
        let sizes: Vec<f64> = flows
            .iter()
            .filter(|f| {
                !cluster_only || matches!(f.locality, Locality::IntraRack | Locality::IntraCluster)
            })
            .map(|f| f.bytes as f64 / 1000.0)
            .collect();
        let p10 = percentile(&sizes, 10.0).unwrap_or(0.0).max(1e-9);
        let p90 = percentile(&sizes, 90.0).unwrap_or(0.0);
        (EmpiricalCdf::new(sizes), p90 / p10)
    };
    let tuple_flows = flow_stats(trace, &cap.topo, FlowAgg::FiveTuple);
    let host_flows = flow_stats(trace, &cap.topo, FlowAgg::Host);
    let (tuple_all, _) = quants(&tuple_flows, false);
    let (host_all, _) = quants(&host_flows, false);
    let (tuple_cl, tuple_spread) = quants(&tuple_flows, true);
    let (host_cl, host_spread) = quants(&host_flows, true);
    Some(Fig9Report {
        five_tuple: quantiles(&tuple_all),
        per_host: quantiles(&host_all),
        five_tuple_cluster: quantiles(&tuple_cl),
        per_host_cluster: quantiles(&host_cl),
        tuple_spread,
        host_spread,
    })
}

impl Fig9Report {
    /// ASCII summary.
    pub fn render(&self) -> String {
        format!(
            "Fig 9: cache-follower flow sizes (KB)\n\
             all dests    5-tuple p10/p50/p90: {}   per-host: {}\n\
             intra-cluster 5-tuple p10/p50/p90: {}  (p90/p10 spread {})\n\
             intra-cluster per-host p10/p50/p90: {}  (p90/p10 spread {})\n\
             paper: wide 5-tuple distribution collapses to a tight per-host \
             distribution under load balancing\n",
            self.five_tuple,
            self.per_host,
            self.five_tuple_cluster,
            num(self.tuple_spread),
            self.per_host_cluster,
            num(self.host_spread)
        )
    }
}

// ---------------------------------------------------------------------
// Fig 8
// ---------------------------------------------------------------------

/// Fig 8: per-destination-rack rate distributions and stability.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Report {
    /// Hadoop stability metrics (paper: middle-90 % spans ~6 decades).
    pub hadoop: StabilityMetrics,
    /// Cache-follower stability metrics (paper: ≈90 % within 2× of
    /// median; ≈45 % "significant change").
    pub cache: StabilityMetrics,
    /// Median per-second cache rate in KB/s (paper: ≈250 KB/s ≙ 2 Mbps).
    pub cache_median_rate_kbs: f64,
}

/// Computes Fig 8 from the capture.
pub fn fig8(cap: &StandardCapture) -> Option<Fig8Report> {
    let seconds = cap.duration.as_secs() as usize;
    let hadoop_trace = cap.trace(HostRole::Hadoop)?;
    let cache_trace = cap.trace(HostRole::CacheFollower)?;
    let hadoop = rack_rate_series(hadoop_trace, &cap.topo, seconds);
    let cache = rack_rate_series(cache_trace, &cap.topo, seconds);
    let med = {
        let cdfs = cache.per_second_cdfs();
        let meds: Vec<f64> = cdfs.iter().filter_map(|c| c.median()).collect();
        percentile(&meds, 50.0).unwrap_or(0.0)
    };
    Some(Fig8Report {
        hadoop: hadoop.stability_metrics(),
        cache: cache.stability_metrics(),
        cache_median_rate_kbs: med,
    })
}

impl Fig8Report {
    /// ASCII summary.
    pub fn render(&self) -> String {
        let headers = ["Metric", "Hadoop", "Cache", "Paper (cache)"];
        let rows = vec![
            vec![
                "within 2x of median".into(),
                num(self.hadoop.fraction_within_2x_of_median * 100.0),
                num(self.cache.fraction_within_2x_of_median * 100.0),
                "~90".into(),
            ],
            vec![
                ">20% deviation (significant)".into(),
                num(self.hadoop.fraction_significant_change * 100.0),
                num(self.cache.fraction_significant_change * 100.0),
                "~45".into(),
            ],
            vec![
                "mid-90% span (decades)".into(),
                num(self.hadoop.median_mid90_span_decades),
                num(self.cache.median_mid90_span_decades),
                "<<1 (Hadoop ~6)".into(),
            ],
        ];
        format!(
            "Fig 8: per-destination-rack rate stability (cache median rate {} KB/s)\n{}",
            num(self.cache_median_rate_kbs),
            table(&headers, &rows)
        )
    }
}

// ---------------------------------------------------------------------
// Figs 10, 11
// ---------------------------------------------------------------------

/// Fig 10/11 row: median heavy-hitter persistence / intersection.
#[derive(Debug, Clone, Serialize)]
pub struct HitterDynamicsReport {
    /// "persistence" (Fig 10) or "enclosing-second intersection" (Fig 11).
    pub what: String,
    /// `(role, aggregation, bin ms, median %, p90 %)`.
    pub rows: Vec<(HostRole, HeavyHitterAgg, u64, f64, f64)>,
}

fn hitter_dynamics(
    cap: &StandardCapture,
    roles: &[HostRole],
    enclosing: bool,
) -> HitterDynamicsReport {
    let mut rows = Vec::new();
    for &role in roles {
        let Some(trace) = cap.trace(role) else {
            continue;
        };
        for agg in [
            HeavyHitterAgg::Flow,
            HeavyHitterAgg::Host,
            HeavyHitterAgg::Rack,
        ] {
            for bin_ms in [1u64, 10, 100] {
                let vals = if enclosing {
                    enclosing_second_intersection(
                        trace,
                        &cap.topo,
                        SimDuration::from_millis(bin_ms),
                        agg,
                    )
                } else {
                    persistence_fractions(trace, &cap.topo, SimDuration::from_millis(bin_ms), agg)
                };
                if vals.is_empty() {
                    continue;
                }
                let p50 = percentile(&vals, 50.0).unwrap_or(0.0);
                let p90 = percentile(&vals, 90.0).unwrap_or(0.0);
                rows.push((role, agg, bin_ms, p50, p90));
            }
        }
    }
    HitterDynamicsReport {
        what: if enclosing {
            "enclosing-second intersection".into()
        } else {
            "persistence".into()
        },
        rows,
    }
}

/// Computes Fig 10 (heavy-hitter persistence between intervals).
pub fn fig10(cap: &StandardCapture) -> HitterDynamicsReport {
    hitter_dynamics(
        cap,
        &[
            HostRole::CacheFollower,
            HostRole::CacheLeader,
            HostRole::Web,
        ],
        false,
    )
}

/// Computes Fig 11 (intersection with the enclosing second's hitters).
pub fn fig11(cap: &StandardCapture) -> HitterDynamicsReport {
    hitter_dynamics(cap, &[HostRole::Web, HostRole::CacheFollower], true)
}

impl HitterDynamicsReport {
    /// Median value for a `(role, agg, bin)` cell.
    pub fn median_for(&self, role: HostRole, agg: HeavyHitterAgg, bin_ms: u64) -> Option<f64> {
        self.rows
            .iter()
            .find(|(r, a, b, _, _)| *r == role && *a == agg && *b == bin_ms)
            .map(|(_, _, _, p50, _)| *p50)
    }

    /// ASCII summary.
    pub fn render(&self) -> String {
        let headers = ["Type", "Agg", "bin ms", "median %", "p90 %"];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(role, agg, bin, p50, p90)| {
                vec![
                    role.label().into(),
                    agg.label().into(),
                    bin.to_string(),
                    num(*p50),
                    num(*p90),
                ]
            })
            .collect();
        format!(
            "Heavy-hitter {} (paper: flows <=15% median persistence, hosts <=20%, \
             racks 32-60%; rack-level most predictable)\n{}",
            self.what,
            table(&headers, &rows)
        )
    }
}

// ---------------------------------------------------------------------
// §5.4: traffic-engineering predictability
// ---------------------------------------------------------------------

/// §5.4's reactive-TE thought experiment: how much of each interval's
/// traffic would scheduling the previous interval's heavy hitters cover?
#[derive(Debug, Clone, Serialize)]
pub struct TeReport {
    /// `(role, predictability result)` rows across aggregations and bins.
    pub rows: Vec<(HostRole, sonet_analysis::te::TePredictability)>,
}

/// Computes the §5.4 predictability table from the capture.
pub fn te_predictability(cap: &StandardCapture) -> TeReport {
    use sonet_analysis::te::predictability;
    let mut rows = Vec::new();
    for role in [HostRole::Web, HostRole::CacheFollower] {
        let Some(trace) = cap.trace(role) else {
            continue;
        };
        for agg in [
            HeavyHitterAgg::Flow,
            HeavyHitterAgg::Host,
            HeavyHitterAgg::Rack,
        ] {
            for bin_ms in [100u64, 1000] {
                if let Some(p) =
                    predictability(trace, &cap.topo, SimDuration::from_millis(bin_ms), agg)
                {
                    rows.push((role, p));
                }
            }
        }
    }
    TeReport { rows }
}

impl TeReport {
    /// ASCII summary.
    pub fn render(&self) -> String {
        let headers = [
            "Type",
            "Agg",
            "bin ms",
            "median covered %",
            "p10 %",
            ">=35% bar",
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(role, p)| {
                vec![
                    role.label().into(),
                    p.agg.label().into(),
                    p.bin_ms.to_string(),
                    num(p.median_covered_pct),
                    num(p.p10_covered_pct),
                    if p.clears_benson_bar() { "yes" } else { "no" }.into(),
                ]
            })
            .collect();
        format!(
            "TE predictability (§5.4: scheduling last interval's heavy hitters; \
             paper: only rack-level reaches Benson's 35% effectiveness bar)\n{}",
            table(&headers, &rows)
        )
    }
}

// ---------------------------------------------------------------------
// Fig 12
// ---------------------------------------------------------------------

/// Fig 12: packet size distributions.
#[derive(Debug, Clone, Serialize)]
pub struct Fig12Report {
    /// `(role, median wire bytes, full-MTU fraction, CDF series)`.
    pub rows: Vec<(HostRole, f64, f64, String)>,
    /// Hadoop bimodality: fraction of packets near ACK or MTU modes.
    pub hadoop_bimodal_fraction: f64,
}

/// Computes Fig 12 from the capture.
pub fn fig12(cap: &StandardCapture) -> Fig12Report {
    let mut rows = Vec::new();
    let mut hadoop_bimodal = 0.0;
    for role in TRACE_ROLES {
        let Some(trace) = cap.trace(role) else {
            continue;
        };
        let cdf = packet_size_cdf(trace);
        let median = cdf.median().unwrap_or(0.0);
        let mtu_frac = full_mtu_fraction(trace, 1500);
        if role == HostRole::Hadoop {
            hadoop_bimodal = bimodal_fraction(trace, 66, 1526, 80);
        }
        rows.push((role, median, mtu_frac, cdf_series(&cdf, 8)));
    }
    Fig12Report {
        rows,
        hadoop_bimodal_fraction: hadoop_bimodal,
    }
}

impl Fig12Report {
    /// Median packet size for a role.
    pub fn median_for(&self, role: HostRole) -> Option<f64> {
        self.rows
            .iter()
            .find(|(r, _, _, _)| *r == role)
            .map(|(_, m, _, _)| *m)
    }

    /// ASCII summary.
    pub fn render(&self) -> String {
        let headers = ["Type", "median B", "full-MTU %", "CDF (bytes, frac)"];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(role, m, f, s)| vec![role.label().into(), num(*m), num(f * 100.0), s.clone()])
            .collect();
        format!(
            "Fig 12: packet sizes (paper: non-Hadoop median <200 B with 5-10% \
             full-MTU; Hadoop bimodal ACK/MTU — measured bimodal fraction {}%)\n{}",
            num(self.hadoop_bimodal_fraction * 100.0),
            table(&headers, &rows)
        )
    }
}

// ---------------------------------------------------------------------
// Fig 13
// ---------------------------------------------------------------------

/// Fig 13: Hadoop arrivals are not on/off at 15/100-ms binning.
#[derive(Debug, Clone, Serialize)]
pub struct Fig13Report {
    /// On/off metrics at 15-ms bins.
    pub at_15ms: OnOffMetrics,
    /// On/off metrics at 100-ms bins.
    pub at_100ms: OnOffMetrics,
    /// Median per-destination empty-bin fraction at 15 ms (paper: on/off
    /// "remerges" per destination, so this should be much higher).
    pub per_dest_median_empty: f64,
    /// The 15-ms binned series (packets per bin).
    pub counts_15ms: Vec<u32>,
}

/// Computes Fig 13 from the Hadoop trace.
pub fn fig13(cap: &StandardCapture) -> Option<Fig13Report> {
    let trace = cap.trace(HostRole::Hadoop)?;
    let bins15 = (cap.duration.as_millis() / 15) as usize;
    let bins100 = (cap.duration.as_millis() / 100) as usize;
    let c15 = binned_counts(trace, SimDuration::from_millis(15), bins15);
    let c100 = binned_counts(trace, SimDuration::from_millis(100), bins100);
    let per_dest = per_destination_onoff(trace, SimDuration::from_millis(15), bins15);
    let empties: Vec<f64> = per_dest.iter().map(|m| m.empty_fraction).collect();
    Some(Fig13Report {
        at_15ms: onoff_metrics(&c15),
        at_100ms: onoff_metrics(&c100),
        per_dest_median_empty: percentile(&empties, 50.0).unwrap_or(0.0),
        counts_15ms: c15,
    })
}

impl Fig13Report {
    /// ASCII summary.
    pub fn render(&self) -> String {
        format!(
            "Fig 13: Hadoop arrival structure\n\
             15-ms bins:  empty fraction {} (CoV {})\n\
             100-ms bins: empty fraction {} (CoV {})\n\
             per-destination median empty fraction at 15 ms: {}\n\
             paper: aggregate is NOT on/off, per-destination on/off remerges\n",
            num(self.at_15ms.empty_fraction),
            num(self.at_15ms.cov),
            num(self.at_100ms.empty_fraction),
            num(self.at_100ms.cov),
            num(self.per_dest_median_empty)
        )
    }
}

// ---------------------------------------------------------------------
// Fig 14
// ---------------------------------------------------------------------

/// Fig 14: SYN inter-arrival CDFs.
#[derive(Debug, Clone, Serialize)]
pub struct Fig14Report {
    /// `(role, median inter-arrival ms, CDF series in µs)`.
    pub rows: Vec<(HostRole, f64, String)>,
}

/// Computes Fig 14 from the capture.
pub fn fig14(cap: &StandardCapture) -> Fig14Report {
    let rows = TRACE_ROLES
        .iter()
        .filter_map(|&role| {
            let trace = cap.trace(role)?;
            let cdf = syn_interarrival_cdf(trace);
            let median_ms = cdf.median()? / 1000.0;
            Some((role, median_ms, cdf_series(&cdf, 8)))
        })
        .collect();
    Fig14Report { rows }
}

impl Fig14Report {
    /// Median SYN inter-arrival (ms) for a role.
    pub fn median_for(&self, role: HostRole) -> Option<f64> {
        self.rows
            .iter()
            .find(|(r, _, _)| *r == role)
            .map(|(_, m, _)| *m)
    }

    /// ASCII summary.
    pub fn render(&self) -> String {
        let headers = ["Type", "median ms", "CDF (usec, frac)"];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(role, m, s)| vec![role.label().into(), num(*m), s.clone()])
            .collect();
        format!(
            "Fig 14: flow (SYN) inter-arrival (paper medians: Web/Hadoop ~2 ms, \
             Cache-l ~3 ms, Cache-f ~8 ms; pooling stretches cache arrivals)\n{}",
            table(&headers, &rows)
        )
    }
}

// ---------------------------------------------------------------------
// Fig 15
// ---------------------------------------------------------------------

/// Configuration of the buffer-occupancy experiment (its own simulation:
/// diurnally modulated day compressed into `duration`).
#[derive(Debug, Clone)]
pub struct Fig15Config {
    /// Scenario seed.
    pub seed: u64,
    /// Plant scale.
    pub scale: ScenarioScale,
    /// Compressed "day" length.
    pub duration: SimDuration,
    /// Rate multiplier (higher → more buffer pressure).
    pub rate_scale: f64,
    /// Buffer occupancy sampling interval (paper: 10 µs).
    pub sample_interval: SimDuration,
    /// RSW shared-buffer configuration. Production ToRs pair ~12 MB with
    /// full-rate 10-Gbps bursts; our packet rates are scaled down
    /// (DESIGN.md §3), so the buffer scales down with them to preserve
    /// the occupancy *fractions* Fig 15 reports.
    pub rsw_buffer: BufferConfig,
}

impl Fig15Config {
    /// Bench-grade configuration.
    pub fn standard(seed: u64) -> Fig15Config {
        Fig15Config {
            seed,
            scale: ScenarioScale::Standard,
            duration: SimDuration::from_secs(16),
            rate_scale: 40.0,
            sample_interval: SimDuration::from_micros(10),
            rsw_buffer: BufferConfig {
                shared_bytes: 12 << 10,
                alpha: 1.0,
            },
        }
    }

    /// Test-grade configuration.
    pub fn fast(seed: u64) -> Fig15Config {
        Fig15Config {
            seed,
            scale: ScenarioScale::Tiny,
            duration: SimDuration::from_secs(4),
            rate_scale: 20.0,
            sample_interval: SimDuration::from_micros(100),
            rsw_buffer: BufferConfig {
                shared_bytes: 16 << 10,
                alpha: 1.0,
            },
        }
    }
}

/// Fig 15: buffer occupancy vs utilization vs drops over a (compressed)
/// day for a Web rack and a Cache rack.
#[derive(Debug, Clone, Serialize)]
pub struct Fig15Report {
    /// Per second: normalized median occupancy of the Web rack's RSW.
    pub web_median: Vec<f64>,
    /// Per second: normalized maximum occupancy of the Web rack's RSW.
    pub web_max: Vec<f64>,
    /// Per second: normalized median occupancy of the Cache rack's RSW.
    pub cache_median: Vec<f64>,
    /// Per second: normalized maximum occupancy of the Cache rack's RSW.
    pub cache_max: Vec<f64>,
    /// Per second: Web rack host-uplink utilization (fraction, mean over
    /// rack).
    pub web_util: Vec<f64>,
    /// Per second: Cache rack utilization.
    pub cache_util: Vec<f64>,
    /// Per second: egress drops at the Web rack's RSW.
    pub web_drops: Vec<u64>,
    /// Pearson correlation between web max occupancy and web utilization
    /// (the diurnal correlation the paper points out across Fig 15's
    /// panels).
    pub web_occ_util_correlation: f64,
    /// Seconds in which the Web rack's max occupancy exceeded 70 % of the
    /// dynamic-threshold ceiling (a single queue can hold at most
    /// `alpha/(1+alpha)` of the shared pool) while link utilization stayed
    /// under 5 % — the paper's microburst headline ("maximum buffer
    /// occupancy ... approaches the configured limit" at ~1 %
    /// utilization). Exact incast/microburst measurement is listed as
    /// impossible with the paper's host-based methodology (§7);
    /// switch-side sampling makes it directly observable here.
    pub microburst_seconds: usize,
}

/// Runs the Fig 15 experiment. Errors if the plant cannot be built, lacks
/// Web or cache racks, or the simulation setup is rejected.
pub fn fig15(cfg: &Fig15Config) -> Result<Fig15Report, ReportError> {
    let topo = Arc::new(
        Topology::build(packet_tier_spec(cfg.scale))
            .map_err(|e| ReportError::Build(e.to_string()))?,
    );
    let mut profiles = ServiceProfiles::default();
    profiles.rate_scale = cfg.rate_scale;
    profiles.diurnal = DiurnalPattern::compressed(cfg.duration);
    let mut workload = Workload::new(Arc::clone(&topo), profiles, cfg.seed)
        .map_err(|e| ReportError::Build(e.to_string()))?;
    let mirror = PortMirror::new(1); // unused; Fig 15 is switch-side only
    let mut sim_cfg = SimConfig::default();
    sim_cfg.rsw_buffer = cfg.rsw_buffer;
    let mut sim = Simulator::new(Arc::clone(&topo), sim_cfg, mirror)
        .map_err(|e| ReportError::Build(e.to_string()))?;

    // The monitored racks: the first Web rack and the first cache rack.
    let web_rack = topo
        .racks()
        .iter()
        .position(|r| r.role == HostRole::Web)
        .ok_or(ReportError::MissingRole(HostRole::Web))?;
    let cache_rack = topo
        .racks()
        .iter()
        .position(|r| r.role == HostRole::CacheFollower)
        .ok_or(ReportError::MissingRole(HostRole::CacheFollower))?;
    let web_rsw = topo.racks()[web_rack].rsw;
    let cache_rsw = topo.racks()[cache_rack].rsw;
    sim.sample_buffers(
        cfg.sample_interval,
        SimDuration::from_secs(1),
        vec![web_rsw, cache_rsw],
    )
    .map_err(|e| ReportError::Build(e.to_string()))?;

    // Utilization: host access links of both racks.
    let mut util_links = Vec::new();
    for &h in &topo.racks()[web_rack].hosts {
        util_links.push(topo.host_uplink(h));
        util_links.push(topo.host_downlink(h));
    }
    let web_util_count = util_links.len();
    for &h in &topo.racks()[cache_rack].hosts {
        util_links.push(topo.host_uplink(h));
        util_links.push(topo.host_downlink(h));
    }
    sim.track_utilization(SimDuration::from_secs(1), &util_links)
        .map_err(|e| ReportError::Build(e.to_string()))?;

    // Egress links of the web RSW (drop counters).
    let web_egress: Vec<_> = topo
        .links()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.from == Node::Switch(web_rsw))
        .map(|(i, _)| sonet_topology::LinkId(i as u32))
        .collect();

    // Drive second by second, polling drop counters.
    let seconds = cfg.duration.as_secs() as usize;
    let mut web_drops = Vec::with_capacity(seconds);
    let mut last_drops = 0u64;
    for s in 1..=seconds {
        let t = SimTime::from_secs(s as u64);
        workload
            .generate(&mut sim, t)
            .map_err(|e| ReportError::Build(e.to_string()))?;
        sim.run_until(t);
        let total: u64 = web_egress
            .iter()
            .map(|&l| sim.link_counters(l).drop_packets)
            .sum();
        web_drops.push(total - last_drops);
        last_drops = total;
    }
    let (outputs, _) = sim.finish();

    // Split buffer windows per switch.
    let mut web_median = Vec::new();
    let mut web_max = Vec::new();
    let mut cache_median = Vec::new();
    let mut cache_max = Vec::new();
    for w in &outputs.buffer_stats {
        let cap_b = w.capacity as f64;
        if w.switch == web_rsw {
            web_median.push(w.median as f64 / cap_b);
            web_max.push(w.max as f64 / cap_b);
        } else if w.switch == cache_rsw {
            cache_median.push(w.median as f64 / cap_b);
            cache_max.push(w.max as f64 / cap_b);
        }
    }

    // Per-second utilization: average across each rack's access links.
    let util_of = |links: &[sonet_topology::LinkId]| -> Vec<f64> {
        let mut acc = vec![0.0f64; seconds];
        let mut n = 0usize;
        for &l in links {
            if let Some(series) = outputs.util_series.get(&l) {
                let cap_bps = topo.links()[l.index()].gbps * 1e9;
                for (i, &b) in series.iter().take(seconds).enumerate() {
                    acc[i] += b as f64 * 8.0 / cap_bps;
                }
                n += 1;
            }
        }
        if n > 0 {
            for v in &mut acc {
                *v /= n as f64;
            }
        }
        acc
    };
    let web_util = util_of(&util_links[..web_util_count]);
    let cache_util = util_of(&util_links[web_util_count..]);

    let corr = pearson(&web_max, &web_util);
    // A single egress queue saturates at alpha/(1+alpha) of the shared
    // pool under DT admission; "near the limit" means near that ceiling.
    let dt_ceiling = cfg.rsw_buffer.alpha / (1.0 + cfg.rsw_buffer.alpha);
    let microburst_seconds = web_max
        .iter()
        .zip(web_util.iter().chain(std::iter::repeat(&0.0)))
        .filter(|(&occ, &util)| occ > 0.7 * dt_ceiling && util < 0.05)
        .count();
    Ok(Fig15Report {
        web_median,
        web_max,
        cache_median,
        cache_max,
        web_util,
        cache_util,
        web_drops,
        web_occ_util_correlation: corr,
        microburst_seconds,
    })
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n < 2 {
        return 0.0;
    }
    let (a, b) = (&a[..n], &b[..n]);
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..n {
        cov += (a[i] - ma) * (b[i] - mb);
        va += (a[i] - ma) * (a[i] - ma);
        vb += (b[i] - mb) * (b[i] - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

impl Fig15Report {
    /// ASCII summary (occupancy and utilization as percentages).
    pub fn render(&self) -> String {
        let pct = |v: &[f64]| -> Vec<f64> { v.iter().map(|x| x * 100.0).collect() };
        format!(
            "Fig 15: buffer occupancy / utilization / drops (compressed day)\n\
             web rack   median occ %: {}\n\
             web rack   max occ %:    {}\n\
             cache rack median occ %: {}\n\
             cache rack max occ %:    {}\n\
             web rack   utilization %: {}\n\
             cache rack utilization %: {}\n\
             web rack   drops/s:       {}\n\
             occ-vs-util correlation (web): {}   microburst seconds: {}\n\
             paper: web rack max occupancy near limit despite ~1% utilization; \
             diurnal correlation across all three panels\n",
            series_row(&pct(&self.web_median), 12),
            series_row(&pct(&self.web_max), 12),
            series_row(&pct(&self.cache_median), 12),
            series_row(&pct(&self.cache_max), 12),
            series_row(&pct(&self.web_util), 12),
            series_row(&pct(&self.cache_util), 12),
            series_row(
                &self.web_drops.iter().map(|&d| d as f64).collect::<Vec<_>>(),
                12
            ),
            num(self.web_occ_util_correlation),
            self.microburst_seconds
        )
    }
}

// ---------------------------------------------------------------------
// Figs 16, 17
// ---------------------------------------------------------------------

/// Fig 16/17: concurrency in 5-ms windows.
#[derive(Debug, Clone, Serialize)]
pub struct ConcurrencyReport {
    /// "all racks" (Fig 16) or "heavy-hitter racks" (Fig 17).
    pub what: String,
    /// `(role, scope label, p10/p50/p90 of per-window counts)`.
    pub rows: Vec<(HostRole, String, String)>,
    /// Median concurrent 5-tuple connections per role (§6.4 text).
    pub median_flows: Vec<(HostRole, f64)>,
}

fn concurrency_report(cap: &StandardCapture, heavy_only: bool) -> ConcurrencyReport {
    let window = SimDuration::from_millis(5);
    let roles = [
        HostRole::Web,
        HostRole::CacheFollower,
        HostRole::CacheLeader,
    ];
    let mut rows = Vec::new();
    let mut median_flows = Vec::new();
    for role in roles {
        let Some(trace) = cap.trace(role) else {
            continue;
        };
        let cdfs = if heavy_only {
            heavy_hitter_rack_cdfs(trace, &cap.topo, window)
        } else {
            concurrency_cdfs(trace, &cap.topo, window, CountEntity::Racks)
        };
        for (label, cdf) in [
            ("Intra-Cluster", &cdfs.intra_cluster),
            ("Intra-Datacenter", &cdfs.intra_datacenter),
            ("Inter-Datacenter", &cdfs.inter_datacenter),
            ("All", &cdfs.all),
        ] {
            rows.push((role, label.to_string(), quantiles(cdf)));
        }
        if !heavy_only {
            let flows = concurrency_cdfs(trace, &cap.topo, window, CountEntity::Flows);
            median_flows.push((role, flows.all.median().unwrap_or(0.0)));
        }
    }
    ConcurrencyReport {
        what: if heavy_only {
            "heavy-hitter racks".into()
        } else {
            "racks".into()
        },
        rows,
        median_flows,
    }
}

/// Computes Fig 16 (concurrent rack-level flows in 5-ms windows).
pub fn fig16(cap: &StandardCapture) -> ConcurrencyReport {
    concurrency_report(cap, false)
}

/// Computes Fig 17 (concurrent heavy-hitter racks in 5-ms windows).
pub fn fig17(cap: &StandardCapture) -> ConcurrencyReport {
    concurrency_report(cap, true)
}

impl ConcurrencyReport {
    /// ASCII summary.
    pub fn render(&self) -> String {
        let headers = ["Type", "Scope", "p10/p50/p90"];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(role, scope, q)| vec![role.label().into(), scope.clone(), q.clone()])
            .collect();
        let mut s = format!(
            "Concurrent {} per 5-ms window (counts scale with plant size; \
             paper ordering: cache-f > cache-l > web)\n{}",
            self.what,
            table(&headers, &rows)
        );
        if !self.median_flows.is_empty() {
            s.push_str("median concurrent 5-tuple connections: ");
            s.push_str(
                &self
                    .median_flows
                    .iter()
                    .map(|(r, m)| format!("{}={}", r.label(), num(*m)))
                    .collect::<Vec<_>>()
                    .join(" "),
            );
            s.push('\n');
        }
        s
    }
}

// ---------------------------------------------------------------------
// Utilization summary (§4.1, supports Fig 15 and the provisioning story)
// ---------------------------------------------------------------------

/// §4.1-style utilization rollup per fabric layer.
#[derive(Debug, Clone, Serialize)]
pub struct UtilizationReport {
    /// `(layer label, mean %, p99 %)` across active links.
    pub rows: Vec<(String, f64, f64)>,
}

/// Computes the utilization rollup from the capture.
pub fn utilization(cap: &StandardCapture) -> UtilizationReport {
    let mut rows = Vec::new();
    for (layer, label) in [
        (LinkLayer::Edge, "host<->RSW"),
        (LinkLayer::RswCsw, "RSW<->CSW"),
        (LinkLayer::CswFc, "CSW<->FC"),
    ] {
        if let Some(s) = layer_utilization(&cap.topo, &cap.outputs, layer, cap.duration, true) {
            rows.push((label.to_string(), s.mean * 100.0, s.p99 * 100.0));
        }
    }
    UtilizationReport { rows }
}

impl UtilizationReport {
    /// ASCII summary.
    pub fn render(&self) -> String {
        let headers = ["Layer", "mean %", "p99 %"];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(l, m, p)| vec![l.clone(), num(*m), num(*p)])
            .collect();
        format!(
            "Link utilization by layer (paper: edge <1% avg, 99% of links <10%; \
             utilization rises with aggregation)\n{}",
            table(&headers, &rows)
        )
    }
}

// ---------------------------------------------------------------------
// Degradation (fault injection)
// ---------------------------------------------------------------------

/// Graceful-degradation rollup of a faulted capture: what the injected
/// failures cost the plant and the telemetry, and how the transport
/// absorbed them. All quantities are zero on a healthy baseline.
#[derive(Debug, Clone, Serialize)]
pub struct DegradationReport {
    /// Fault events the engine applied.
    pub faults_applied: u64,
    /// Connections successfully re-hashed onto surviving ECMP paths.
    pub reroutes: u64,
    /// Reroute attempts that found no healthy path.
    pub reroute_failures: u64,
    /// Packets lost on dead links (vs. buffer drops, counted separately).
    pub fault_dropped_packets: u64,
    /// Bytes lost on dead links.
    pub fault_dropped_bytes: u64,
    /// Handshakes abandoned after the SYN retry budget.
    pub failed_handshakes: u64,
    /// Connections aborted by the broken-route RTO cap.
    pub aborted_connections: u64,
    /// Mirrored packets lost to the mirror's memory limit.
    pub mirror_overflow: u64,
    /// Mirrored packets lost to injected capture faults.
    pub mirror_fault_dropped: u64,
    /// Fraction of offered mirror traffic lost to injected faults.
    pub telemetry_loss_fraction: f64,
}

/// Computes the degradation rollup from a capture.
pub fn degradation(cap: &StandardCapture) -> DegradationReport {
    let out = &cap.outputs;
    let fault_dropped_packets: u64 = out.link_counters.iter().map(|c| c.fault_drop_packets).sum();
    let fault_dropped_bytes: u64 = out.link_counters.iter().map(|c| c.fault_drop_bytes).sum();
    let telemetry_loss_fraction = if cap.mirror_offered > 0 {
        cap.mirror_fault_dropped as f64 / cap.mirror_offered as f64
    } else {
        0.0
    };
    DegradationReport {
        faults_applied: out.faults_applied,
        reroutes: out.reroutes,
        reroute_failures: out.reroute_failures,
        fault_dropped_packets,
        fault_dropped_bytes,
        failed_handshakes: out.failed_handshakes,
        aborted_connections: out.aborted_connections,
        mirror_overflow: cap.mirror_overflow,
        mirror_fault_dropped: cap.mirror_fault_dropped,
        telemetry_loss_fraction,
    }
}

impl DegradationReport {
    /// True when the run saw no faults at all.
    pub fn is_clean(&self) -> bool {
        self.faults_applied == 0 && self.mirror_fault_dropped == 0
    }

    /// Publishes the rollup into the flight-recorder metrics registry so
    /// `RUNINFO.json` records *why* a run degraded, not just that it did.
    pub fn publish_obs(&self) {
        use sonet_util::obs;
        obs::gauge_set!("degradation.faults_applied", self.faults_applied);
        obs::gauge_set!("degradation.reroutes", self.reroutes);
        obs::gauge_set!("degradation.reroute_failures", self.reroute_failures);
        obs::gauge_set!(
            "degradation.fault_dropped_packets",
            self.fault_dropped_packets
        );
        obs::gauge_set!("degradation.failed_handshakes", self.failed_handshakes);
        obs::gauge_set!("degradation.aborted_connections", self.aborted_connections);
        obs::gauge_set!("degradation.mirror_overflow", self.mirror_overflow);
        obs::gauge_set!(
            "degradation.mirror_fault_dropped",
            self.mirror_fault_dropped
        );
        obs::gauge_set!(
            "degradation.telemetry_loss_permille",
            (self.telemetry_loss_fraction * 1000.0).round() as u64
        );
    }

    /// One-line rollup for run-manifest notes.
    pub fn summary_line(&self) -> String {
        format!(
            "faults={} reroutes={} reroute_failures={} fault_drops={} \
             failed_handshakes={} aborted_conns={} mirror_overflow={} \
             mirror_fault_drops={} telemetry_loss={:.3}",
            self.faults_applied,
            self.reroutes,
            self.reroute_failures,
            self.fault_dropped_packets,
            self.failed_handshakes,
            self.aborted_connections,
            self.mirror_overflow,
            self.mirror_fault_dropped,
            self.telemetry_loss_fraction,
        )
    }

    /// ASCII summary.
    pub fn render(&self) -> String {
        let headers = ["Quantity", "Value"];
        let rows: Vec<Vec<String>> = vec![
            vec!["faults applied".into(), self.faults_applied.to_string()],
            vec!["connections rerouted".into(), self.reroutes.to_string()],
            vec!["reroute failures".into(), self.reroute_failures.to_string()],
            vec![
                "packets lost to faults".into(),
                self.fault_dropped_packets.to_string(),
            ],
            vec![
                "bytes lost to faults".into(),
                self.fault_dropped_bytes.to_string(),
            ],
            vec![
                "failed handshakes".into(),
                self.failed_handshakes.to_string(),
            ],
            vec![
                "aborted connections".into(),
                self.aborted_connections.to_string(),
            ],
            vec!["mirror overflow".into(), self.mirror_overflow.to_string()],
            vec![
                "mirror fault drops".into(),
                self.mirror_fault_dropped.to_string(),
            ],
            vec![
                "telemetry loss %".into(),
                num(self.telemetry_loss_fraction * 100.0),
            ],
        ];
        format!(
            "Degradation under injected faults (dead links eat packets, ECMP \
             re-hashes around failures, telemetry losses are counted)\n{}",
            table(&headers, &rows)
        )
    }
}
