//! # sonet-core
//!
//! The public face of `sonet-dc`: scenario presets, the experiment
//! harness, and typed reports for every table and figure of *Inside the
//! Social Network's (Datacenter) Network* (SIGCOMM 2015).
//!
//! ## Quick start
//!
//! ```no_run
//! use sonet_core::{Lab, LabConfig};
//!
//! let mut lab = Lab::new(LabConfig::fast(42));
//! let t3 = lab.table3();
//! println!("{}", t3.render());
//! ```
//!
//! A [`Lab`] lazily builds the two data substrates the paper's analyses
//! consume — a packet-tier port-mirror capture ([`capture::StandardCapture`])
//! and a fleet-tier Fbflow table ([`fleet_run::FleetData`]) — and exposes
//! one method per experiment (`table2()` … `fig17()`). Reports know their
//! paper-expected values and render as ASCII tables, so benches and
//! examples print paper-vs-measured side by side.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod chaos;
pub mod fleet_run;
pub mod lab;
pub mod render;
pub mod reports;
pub mod scenario;
pub mod supervised;
pub mod supervisor;

pub use capture::{CaptureConfig, StandardCapture};
pub use fleet_run::{FleetData, FleetRunConfig, FleetRunError};
pub use lab::{Lab, LabConfig};
pub use reports::{DegradationReport, ReportError};
pub use scenario::{fleet_spec, packet_tier_spec, ScenarioScale};
pub use supervised::{
    resume_capture, resume_fleet, run_capture, run_fleet, CaptureCheckpoint, FleetCheckpoint,
    RunStatus, SuperviseOptions, SupervisedError,
};
pub use supervisor::{isolate, BatchSummary, RunBudget, RunSupervisor, StopReason};
