//! Property-based tests of the distribution and statistics substrate.

use proptest::prelude::*;
use sonet_util::dist::{Dist, Distribution};
use sonet_util::stats::{percentile, Histogram, Summary};
use sonet_util::Rng;

proptest! {
    /// Bounded Pareto samples always stay within their bounds.
    #[test]
    fn pareto_respects_bounds(
        alpha in 0.3f64..3.0,
        lo in 1.0f64..1e4,
        span in 1.5f64..1e4,
        seed in any::<u64>(),
    ) {
        let hi = lo * span;
        let d = Dist::ParetoBounded { alpha, lo, hi };
        prop_assert!(d.validate().is_ok());
        let mut rng = Rng::new(seed);
        for _ in 0..200 {
            let v = d.sample(&mut rng);
            prop_assert!(v >= lo * 0.999 && v <= hi * 1.001, "{v} outside [{lo}, {hi}]");
        }
    }

    /// Log-normal samples are positive and finite for any reasonable
    /// parameters.
    #[test]
    fn lognormal_samples_positive(
        median in 1.0f64..1e9,
        sigma in 0.0f64..3.0,
        seed in any::<u64>(),
    ) {
        let d = Dist::LogNormal { median, sigma };
        let mut rng = Rng::new(seed);
        for _ in 0..200 {
            let v = d.sample(&mut rng);
            prop_assert!(v > 0.0 && v.is_finite());
        }
    }

    /// Uniform samples stay in range; empirical inverse stays between the
    /// knot extremes.
    #[test]
    fn uniform_and_empirical_in_range(
        lo in -1e6f64..1e6,
        span in 1.0f64..1e6,
        seed in any::<u64>(),
    ) {
        let hi = lo + span;
        let u = Dist::Uniform { lo, hi };
        let e = Dist::Empirical { points: vec![(lo, 0.0), (lo + span / 2.0, 0.6), (hi, 1.0)] };
        prop_assert!(e.validate().is_ok());
        let mut rng = Rng::new(seed);
        for _ in 0..100 {
            let v = u.sample(&mut rng);
            prop_assert!((lo..hi).contains(&v));
            let w = e.sample(&mut rng);
            prop_assert!(w >= lo && w <= hi);
        }
    }

    /// Mixture sampling only produces values one of its components could
    /// produce (here: one of two constants).
    #[test]
    fn mixture_stays_in_support(w1 in 0.01f64..10.0, w2 in 0.01f64..10.0, seed in any::<u64>()) {
        let d = Dist::Mixture {
            components: vec![Dist::Constant(1.0), Dist::Constant(2.0)],
            weights: vec![w1, w2],
        };
        let mut rng = Rng::new(seed);
        for _ in 0..100 {
            let v = d.sample(&mut rng);
            prop_assert!(v == 1.0 || v == 2.0);
        }
    }

    /// Percentiles are monotone in q and bounded by min/max.
    #[test]
    fn percentiles_monotone(mut xs in prop::collection::vec(-1e9f64..1e9, 1..100)) {
        xs.retain(|v| v.is_finite());
        prop_assume!(!xs.is_empty());
        let p25 = percentile(&xs, 25.0).expect("non-empty");
        let p50 = percentile(&xs, 50.0).expect("non-empty");
        let p75 = percentile(&xs, 75.0).expect("non-empty");
        prop_assert!(p25 <= p50 && p50 <= p75);
        let s = Summary::of(&xs).expect("non-empty");
        prop_assert!(s.min <= p25 && p75 <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
    }

    /// Histogram conserves counts: bins + under + over == recorded.
    #[test]
    fn histogram_conserves(
        xs in prop::collection::vec(-100.0f64..200.0, 0..300),
        bins in 1usize..50,
    ) {
        let mut h = Histogram::new(0.0, 100.0, bins);
        for &x in &xs {
            h.record(x);
        }
        let (under, over) = h.outliers();
        let binned: u64 = h.bins().iter().sum();
        prop_assert_eq!(binned + under + over, xs.len() as u64);
        prop_assert_eq!(h.count(), xs.len() as u64);
    }

    /// Rng::below never reaches its bound and fork streams are stable.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut r = Rng::new(seed);
        for _ in 0..100 {
            prop_assert!(r.below(n) < n);
        }
        let f1: Vec<u64> = {
            let mut f = Rng::new(seed).fork("x");
            (0..5).map(|_| f.next_u64()).collect()
        };
        let f2: Vec<u64> = {
            let mut f = Rng::new(seed).fork("x");
            (0..5).map(|_| f.next_u64()).collect()
        };
        prop_assert_eq!(f1, f2);
    }
}
