//! Deterministic fork/join parallelism on scoped OS threads.
//!
//! Everything in the workspace that fans out — fleet sampling, scenario
//! batches, analysis reduction — goes through this module so the
//! determinism story lives in one place: work is split into *indexed*
//! items, each item is computed independently (its randomness, if any,
//! comes from a per-item forked stream, never from a shared generator),
//! and results are stitched back together **in item order**. The thread
//! count therefore only decides who computes an item, never what the
//! item's value is or where it lands in the output.
//!
//! The pool is scoped (`std::thread::scope`), so borrowed state can be
//! shared by reference without `Arc` gymnastics, and a panicking worker
//! propagates its payload to the caller — which keeps
//! `supervisor::isolate` panic containment working unchanged when the
//! closure runs on a worker instead of the caller's thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide default worker count; 0 means "ask the OS"
/// ([`std::thread::available_parallelism`]). Set once by the CLI from
/// `--threads` and read by every call site that does not pass an
/// explicit count.
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count. `0` restores the
/// "available parallelism" default.
pub fn set_threads(n: usize) {
    DEFAULT_THREADS.store(n, Ordering::Relaxed);
}

/// Resolves an optional per-call override against the process default:
/// `Some(n > 0)` wins, then a non-zero [`set_threads`] value, then the
/// OS-reported parallelism (at least 1).
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    match explicit {
        Some(n) if n > 0 => n,
        _ => match DEFAULT_THREADS.load(Ordering::Relaxed) {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        },
    }
}

/// Maps `f` over `0..n` on `threads` workers and returns the results in
/// index order.
///
/// Items are handed out through a shared atomic cursor, so scheduling is
/// dynamic (good when item costs are skewed, as with per-interval heavy
/// hitters), but each result is written to its own slot: the output is
/// `[f(0), f(1), …, f(n-1)]` regardless of which worker computed what.
/// With one worker (or `n <= 1`) no threads are spawned at all, so the
/// serial path really is serial — not "parallel with one lane".
///
/// Panics in `f` are re-raised on the caller's thread with the original
/// payload once all workers have stopped.
pub fn map_indexed<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    // One mutex per slot: each is locked exactly once (the cursor hands
    // every index to exactly one worker), so there is no contention —
    // the locks only exist to stay inside `forbid(unsafe_code)`.
    let mut slots: Vec<Mutex<Option<T>>> = Vec::with_capacity(n);
    slots.resize_with(n, || Mutex::new(None));
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor = &cursor;
    let slots_ref = &slots;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = f(i);
                    *slots_ref[i].lock().expect("slot lock never poisons") = Some(value);
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("no worker panicked past the join above")
                .expect("every index was claimed by exactly one worker")
        })
        .collect()
}

/// Runs a phased (bulk-synchronous) computation over a fixed set of
/// per-worker states on a **persistent** pool.
///
/// `plan` runs on the caller's thread with exclusive access to every
/// state — it merges cross-state results from the previous phase and
/// sets up the next one — and returns `false` to stop. `work(i, &mut
/// states[i])` then runs for every state, in parallel, with dynamic
/// claiming (an atomic cursor hands each index to exactly one worker).
/// The next `plan` call does not start until every `work` call of the
/// phase has returned, so `plan` always observes a quiescent barrier.
///
/// Unlike [`map_indexed`], the worker threads are spawned **once** and
/// reused for every phase; a simulation that synchronizes thousands of
/// times per run pays the spawn cost once, and each barrier is a
/// condvar round-trip. Determinism is inherited from the structure:
/// state `i` is only ever mutated by the single claimant of index `i`
/// within a phase and by `plan` between phases, so the thread count
/// never changes what any state observes.
///
/// With `threads <= 1` (or a single state) no threads are spawned and
/// the phases run inline, in index order — the serial path is serial.
/// `plan` is called once before the first phase (use it for setup) and
/// its `false` return is the only exit. If `work` panics, the payload
/// is re-raised on the caller's thread and the states are dropped.
pub fn run_phased<S, P, W>(threads: usize, mut states: Vec<S>, mut plan: P, work: W) -> Vec<S>
where
    S: Send,
    P: FnMut(&mut [S]) -> bool,
    W: Fn(usize, &mut S) + Sync,
{
    let n = states.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        loop {
            if !plan(&mut states) {
                return states;
            }
            for (i, s) in states.iter_mut().enumerate() {
                work(i, s);
            }
        }
    }

    struct Ctrl {
        /// Bumped by the coordinator to release workers into a phase.
        phase: u64,
        /// States not yet finished in the current phase.
        pending: usize,
        /// Set when the run is over (normally or by a worker panic).
        stop: bool,
    }
    let ctrl = Mutex::new(Ctrl {
        phase: 0,
        pending: 0,
        stop: false,
    });
    let to_workers = std::sync::Condvar::new();
    let to_coord = std::sync::Condvar::new();
    let mut slots: Vec<Mutex<Option<S>>> = Vec::with_capacity(n);
    slots.resize_with(n, || Mutex::new(None));
    let cursor = AtomicUsize::new(0);
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    let (ctrl, to_workers, to_coord) = (&ctrl, &to_workers, &to_coord);
    let (slots_ref, cursor, panic_payload) = (&slots, &cursor, &panic_payload);
    let work = &work;

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || {
                let mut seen = 0u64;
                loop {
                    {
                        let mut c = ctrl.lock().expect("ctrl lock never poisons");
                        while c.phase == seen && !c.stop {
                            c = to_workers.wait(c).expect("ctrl lock never poisons");
                        }
                        if c.stop {
                            return;
                        }
                        seen = c.phase;
                    }
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // The whole claim is inside the catch: a panic
                        // anywhere (the work itself, a poisoned slot, a
                        // double claim) must reach the stop path below —
                        // a worker dying silently would strand everyone
                        // else on the barrier condvars forever.
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            let mut slot = slots_ref[i].lock().expect("slot lock never poisons");
                            let mut s = slot.take().expect("cursor hands each slot out once");
                            work(i, &mut s);
                            *slot = Some(s);
                        }));
                        let mut c = ctrl.lock().expect("ctrl lock never poisons");
                        if let Err(payload) = r {
                            let mut p = panic_payload.lock().expect("panic slot");
                            if p.is_none() {
                                *p = Some(payload);
                            }
                            c.stop = true;
                            c.pending = 0;
                            to_workers.notify_all();
                            to_coord.notify_all();
                            return;
                        }
                        c.pending -= 1;
                        if c.pending == 0 {
                            to_coord.notify_all();
                        }
                    }
                }
            });
        }

        // Coordinator: alternate plan (exclusive access) with released
        // phases until plan declines or a worker panics. A panic *in
        // plan* is caught and converted into the normal stop path first:
        // unwinding out of the scope with workers parked on the condvar
        // would deadlock the join.
        loop {
            let cont = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan(&mut states)))
                .unwrap_or_else(|payload| {
                    let mut p = panic_payload.lock().expect("panic slot");
                    if p.is_none() {
                        *p = Some(payload);
                    }
                    false
                });
            if !cont {
                let mut c = ctrl.lock().expect("ctrl lock never poisons");
                c.stop = true;
                to_workers.notify_all();
                break;
            }
            for (slot, s) in slots_ref.iter().zip(states.drain(..)) {
                *slot.lock().expect("slot lock never poisons") = Some(s);
            }
            cursor.store(0, Ordering::Relaxed);
            {
                let mut c = ctrl.lock().expect("ctrl lock never poisons");
                c.pending = n;
                c.phase += 1;
                to_workers.notify_all();
                while c.pending > 0 {
                    c = to_coord.wait(c).expect("ctrl lock never poisons");
                }
                if c.stop {
                    break;
                }
            }
            for slot in slots_ref.iter() {
                let s = slot
                    .lock()
                    .expect("slot lock never poisons")
                    .take()
                    .expect("phase barrier returned every state");
                states.push(s);
            }
        }
    });

    if let Some(payload) = panic_payload
        .lock()
        .expect("panic slot lock never poisons")
        .take()
    {
        std::panic::resume_unwind(payload);
    }
    states
}

/// Timing and steal counters for one completed phase of
/// [`run_phased_stealing`], filled in by the pool before each `plan`
/// call. Purely observational: nothing in here feeds back into what any
/// state computes, so wall-clock nondeterminism never touches outputs.
#[derive(Debug, Clone, Default)]
pub struct PhaseStats {
    /// Work items executed by a worker other than the one they were
    /// seeded to.
    pub steals: u64,
    /// Total time workers spent inside `work` calls, summed over workers.
    pub busy_ns: u64,
    /// Total time workers spent in-phase but not inside `work` (queue
    /// scans plus waiting out the stragglers), summed over workers.
    pub idle_ns: u64,
    /// Longest single worker's in-phase time — the phase's critical path.
    pub wall_ns: u64,
    /// Time spent inside `work(i, ..)` for each state `i`.
    pub slot_busy_ns: Vec<u64>,
}

/// Coordinator-side handle for [`run_phased_stealing`]: the previous
/// phase's [`PhaseStats`] plus the per-state weights that seed the next
/// phase's queues.
#[derive(Debug, Clone, Default)]
pub struct StealCtl {
    /// Stats of the phase that just completed (zeroed before the first).
    pub stats: PhaseStats,
    /// Relative cost estimate per state, read when seeding the next
    /// phase: heavier states are dealt to emptier workers first (greedy
    /// LPT). Scheduling only — weights never change any state's value.
    pub weights: Vec<u64>,
}

/// Deterministic greedy LPT deal: states sorted by (weight desc, index
/// asc), each placed on the currently lightest worker (ties to the
/// lowest worker id). Pure function of the weights, so the seeding —
/// unlike the stealing that follows — is reproducible run to run.
fn seed_queues(threads: usize, weights: &[u64]) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weights[i]), i));
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); threads];
    let mut loads = vec![0u64; threads];
    for i in order {
        let w = (0..threads).min_by_key(|&w| (loads[w], w)).expect(">=1");
        loads[w] += weights[i].max(1);
        queues[w].push(i);
    }
    queues
}

/// [`run_phased`] with work stealing inside each phase.
///
/// Between phases the coordinator seeds one queue per worker from
/// `ctl.weights` (heaviest states first, greedy LPT). During a phase
/// each worker drains its own queue front-first; a worker whose queue
/// runs dry scans the others round-robin from its right-hand neighbour
/// and steals from the *back* (the victim's lightest remaining states),
/// so a skewed window no longer serializes behind one worker.
///
/// Determinism is inherited from the same structure as [`run_phased`]:
/// every state is claimed by exactly one worker per phase and mutated
/// only through `work(i, &mut states[i])`, so *which* thread runs a
/// state can never change what the state computes — stealing reorders
/// execution, never results. `plan` runs on the caller's thread between
/// phases with exclusive access to all states and the completed phase's
/// [`PhaseStats`]; it returns `false` to stop. With `threads <= 1` the
/// phases run inline in index order and only `slot_busy_ns`, `busy_ns`
/// and `wall_ns` are meaningful.
pub fn run_phased_stealing<S, P, W>(
    threads: usize,
    mut states: Vec<S>,
    mut plan: P,
    work: W,
) -> Vec<S>
where
    S: Send,
    P: FnMut(&mut [S], &mut StealCtl) -> bool,
    W: Fn(usize, &mut S) + Sync,
{
    let n = states.len();
    let threads = threads.max(1).min(n.max(1));
    let mut ctl = StealCtl {
        stats: PhaseStats {
            slot_busy_ns: vec![0; n],
            ..PhaseStats::default()
        },
        weights: vec![1; n],
    };
    if threads <= 1 {
        loop {
            if !plan(&mut states, &mut ctl) {
                return states;
            }
            let phase_start = std::time::Instant::now();
            let mut busy = 0u64;
            for (i, s) in states.iter_mut().enumerate() {
                let t0 = std::time::Instant::now();
                work(i, s);
                let ns = t0.elapsed().as_nanos() as u64;
                ctl.stats.slot_busy_ns[i] = ns;
                busy += ns;
            }
            ctl.stats.steals = 0;
            ctl.stats.busy_ns = busy;
            ctl.stats.idle_ns = 0;
            ctl.stats.wall_ns = phase_start.elapsed().as_nanos() as u64;
        }
    }

    /// What one worker reports back at the end of a phase.
    #[derive(Default)]
    struct WorkerReport {
        steals: u64,
        busy_ns: u64,
        wall_ns: u64,
        slot_busy: Vec<(usize, u64)>,
    }
    struct Ctrl {
        /// Bumped by the coordinator to release workers into a phase.
        phase: u64,
        /// Workers still inside the current phase.
        pending: usize,
        /// Set when the run is over (normally or by a worker panic).
        stop: bool,
    }
    let ctrl = Mutex::new(Ctrl {
        phase: 0,
        pending: 0,
        stop: false,
    });
    let to_workers = std::sync::Condvar::new();
    let to_coord = std::sync::Condvar::new();
    let mut slots: Vec<Mutex<Option<S>>> = Vec::with_capacity(n);
    slots.resize_with(n, || Mutex::new(None));
    let mut queues: Vec<Mutex<std::collections::VecDeque<usize>>> = Vec::with_capacity(threads);
    queues.resize_with(threads, || Mutex::new(std::collections::VecDeque::new()));
    let mut reports: Vec<Mutex<WorkerReport>> = Vec::with_capacity(threads);
    reports.resize_with(threads, || Mutex::new(WorkerReport::default()));
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    let (ctrl, to_workers, to_coord) = (&ctrl, &to_workers, &to_coord);
    let (slots_ref, queues_ref, reports_ref) = (&slots, &queues, &reports);
    let panic_payload = &panic_payload;
    let work = &work;

    std::thread::scope(|scope| {
        for w in 0..threads {
            scope.spawn(move || {
                let mut seen = 0u64;
                loop {
                    {
                        let mut c = ctrl.lock().expect("ctrl lock never poisons");
                        while c.phase == seen && !c.stop {
                            c = to_workers.wait(c).expect("ctrl lock never poisons");
                        }
                        if c.stop {
                            return;
                        }
                        seen = c.phase;
                    }
                    let phase_start = std::time::Instant::now();
                    let mut report = WorkerReport::default();
                    // The whole phase body is inside the catch: a panic
                    // anywhere (the work itself, a double claim, a
                    // poisoned lock) must reach the stop path below — a
                    // worker dying silently would strand the coordinator
                    // and its siblings on the barrier condvars forever.
                    let r =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| 'phase: loop {
                            // Own queue first (front = heaviest remaining),
                            // then scan neighbours and steal from the back.
                            // Each pop is bound to a `let` so its queue guard
                            // drops before any other queue is touched: an
                            // `if let` scrutinee guard would live through the
                            // else branch, and two workers stealing from each
                            // other would deadlock on each other's queues.
                            let own = queues_ref[w]
                                .lock()
                                .expect("queue lock never poisons")
                                .pop_front();
                            let mut claimed = own;
                            if claimed.is_none() {
                                for off in 1..threads {
                                    let v = (w + off) % threads;
                                    let stolen = queues_ref[v]
                                        .lock()
                                        .expect("queue lock never poisons")
                                        .pop_back();
                                    if let Some(i) = stolen {
                                        report.steals += 1;
                                        claimed = Some(i);
                                        break;
                                    }
                                }
                            }
                            let Some(i) = claimed else { break 'phase };
                            let mut slot = slots_ref[i].lock().expect("slot lock never poisons");
                            let mut s = slot.take().expect("each slot is claimed once per phase");
                            let t0 = std::time::Instant::now();
                            work(i, &mut s);
                            let ns = t0.elapsed().as_nanos() as u64;
                            *slot = Some(s);
                            drop(slot);
                            report.busy_ns += ns;
                            report.slot_busy.push((i, ns));
                        }));
                    if let Err(payload) = r {
                        let mut c = ctrl.lock().expect("ctrl lock never poisons");
                        let mut p = panic_payload.lock().expect("panic slot");
                        if p.is_none() {
                            *p = Some(payload);
                        }
                        c.stop = true;
                        c.pending = 0;
                        to_workers.notify_all();
                        to_coord.notify_all();
                        return;
                    }
                    report.wall_ns = phase_start.elapsed().as_nanos() as u64;
                    *reports_ref[w].lock().expect("report lock never poisons") = report;
                    let mut c = ctrl.lock().expect("ctrl lock never poisons");
                    // Saturating: a concurrent panic path forces pending
                    // to zero to wake the coordinator immediately.
                    c.pending = c.pending.saturating_sub(1);
                    if c.pending == 0 {
                        to_coord.notify_all();
                    }
                }
            });
        }

        // Coordinator: alternate plan (exclusive access) with released
        // phases until plan declines or a worker panics. A panic *in
        // plan* is caught and converted into the normal stop path first:
        // unwinding out of the scope with workers parked on the condvar
        // would deadlock the join.
        loop {
            let cont = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                plan(&mut states, &mut ctl)
            }))
            .unwrap_or_else(|payload| {
                let mut p = panic_payload.lock().expect("panic slot");
                if p.is_none() {
                    *p = Some(payload);
                }
                false
            });
            if !cont {
                let mut c = ctrl.lock().expect("ctrl lock never poisons");
                c.stop = true;
                to_workers.notify_all();
                break;
            }
            if ctl.weights.len() != n {
                ctl.weights.resize(n, 1);
            }
            for (slot, s) in slots_ref.iter().zip(states.drain(..)) {
                *slot.lock().expect("slot lock never poisons") = Some(s);
            }
            for (q, seed) in queues_ref.iter().zip(seed_queues(threads, &ctl.weights)) {
                *q.lock().expect("queue lock never poisons") = seed.into();
            }
            {
                let mut c = ctrl.lock().expect("ctrl lock never poisons");
                c.pending = threads;
                c.phase += 1;
                to_workers.notify_all();
                while c.pending > 0 {
                    c = to_coord.wait(c).expect("ctrl lock never poisons");
                }
                if c.stop {
                    break;
                }
            }
            ctl.stats.steals = 0;
            ctl.stats.busy_ns = 0;
            ctl.stats.idle_ns = 0;
            ctl.stats.wall_ns = 0;
            ctl.stats.slot_busy_ns.fill(0);
            for r in reports_ref.iter() {
                let mut r = r.lock().expect("report lock never poisons");
                ctl.stats.steals += r.steals;
                ctl.stats.busy_ns += r.busy_ns;
                ctl.stats.idle_ns += r.wall_ns.saturating_sub(r.busy_ns);
                ctl.stats.wall_ns = ctl.stats.wall_ns.max(r.wall_ns);
                for (i, ns) in r.slot_busy.drain(..) {
                    ctl.stats.slot_busy_ns[i] = ns;
                }
            }
            for slot in slots_ref.iter() {
                let s = slot
                    .lock()
                    .expect("slot lock never poisons")
                    .take()
                    .expect("phase barrier returned every state");
                states.push(s);
            }
        }
    });

    if let Some(payload) = panic_payload
        .lock()
        .expect("panic slot lock never poisons")
        .take()
    {
        std::panic::resume_unwind(payload);
    }
    states
}

/// Splits `0..n` into at most `threads` contiguous ranges of
/// near-equal length (the first `n % threads` ranges get one extra
/// item). Used by callers that want per-shard state — e.g. one record
/// buffer per fleet shard — instead of per-item slots.
pub fn split_ranges(threads: usize, n: usize) -> Vec<std::ops::Range<usize>> {
    let threads = threads.max(1).min(n.max(1));
    let base = n / threads;
    let extra = n % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0usize;
    for t in 0..threads {
        let len = base + usize::from(t < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order() {
        for threads in [1, 2, 3, 8] {
            let got = map_indexed(threads, 100, |i| i * i);
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u32> = map_indexed(4, 0, |_| unreachable!());
        assert!(got.is_empty());
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        let caught = std::panic::catch_unwind(|| {
            map_indexed(2, 10, |i| {
                if i == 7 {
                    panic!("worker seven exploded");
                }
                i
            })
        });
        let payload = caught.expect_err("panic must cross the pool");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("worker seven"), "payload: {msg}");
    }

    #[test]
    fn split_ranges_cover_exactly_once() {
        for threads in [1, 2, 3, 7, 16] {
            for n in [0usize, 1, 5, 16, 97] {
                let ranges = split_ranges(threads, n);
                let mut covered = Vec::new();
                for r in &ranges {
                    covered.extend(r.clone());
                }
                assert_eq!(covered, (0..n).collect::<Vec<_>>());
                let lens: Vec<usize> = ranges.iter().map(ExactSizeIterator::len).collect();
                if let (Some(max), Some(min)) = (lens.iter().max(), lens.iter().min()) {
                    assert!(max - min <= 1, "balanced shards: {lens:?}");
                }
            }
        }
    }

    #[test]
    fn run_phased_matches_serial_at_any_width() {
        // Each phase adds phase*(i+1) to state i; plan also folds the
        // running cross-state sum into state 0, exercising the
        // exclusive access the coordinator gets between phases.
        let run = |threads: usize| -> Vec<u64> {
            let mut phase = 0u64;
            run_phased(
                threads,
                vec![0u64; 5],
                |states| {
                    if phase > 0 {
                        let total: u64 = states.iter().sum();
                        states[0] += total % 7;
                    }
                    phase += 1;
                    phase <= 10
                },
                |i, s| {
                    *s += (i as u64 + 1) * 3;
                },
            )
        };
        let want = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), want, "threads={threads}");
        }
    }

    #[test]
    fn run_phased_plan_sees_quiescent_barrier() {
        // Every phase doubles each state; plan asserts all states moved
        // in lockstep, which fails if any work call leaks past a
        // barrier.
        let mut rounds = 0;
        let out = run_phased(
            4,
            vec![1u64; 8],
            |states| {
                let first = states[0];
                assert!(states.iter().all(|&s| s == first), "lockstep: {states:?}");
                rounds += 1;
                rounds <= 6
            },
            |_, s| *s *= 2,
        );
        assert_eq!(out, vec![64u64; 8]);
    }

    #[test]
    fn run_phased_zero_phases_returns_states_untouched() {
        let out = run_phased(4, vec![9u8, 8, 7], |_| false, |_, _| unreachable!());
        assert_eq!(out, vec![9, 8, 7]);
    }

    #[test]
    fn run_phased_worker_panics_propagate() {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut phase = 0;
            run_phased(
                3,
                vec![0u32; 6],
                |_| {
                    phase += 1;
                    phase <= 3
                },
                |i, s| {
                    if *s == 2 && i == 4 {
                        panic!("phase worker exploded");
                    }
                    *s += 1;
                },
            )
        }));
        let payload = caught.expect_err("panic must cross the pool");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("phase worker"), "payload: {msg}");
    }

    #[test]
    fn seed_queues_deal_every_state_exactly_once() {
        for threads in [1usize, 2, 3, 7] {
            for n in [1usize, 2, 5, 16] {
                let t = threads.min(n);
                let weights: Vec<u64> = (0..n).map(|i| ((i * 37) % 11) as u64).collect();
                let queues = seed_queues(t, &weights);
                let mut all: Vec<usize> = queues.iter().flatten().copied().collect();
                all.sort_unstable();
                assert_eq!(all, (0..n).collect::<Vec<_>>(), "t={t} n={n}");
                // Deterministic: same weights, same deal.
                assert_eq!(queues, seed_queues(t, &weights));
            }
        }
    }

    #[test]
    fn run_phased_stealing_matches_serial_at_any_width() {
        // Same shape as the run_phased test, with per-phase weight churn
        // thrown in: weights may reshuffle who runs what, never what any
        // state computes.
        let run = |threads: usize| -> Vec<u64> {
            let mut phase = 0u64;
            run_phased_stealing(
                threads,
                vec![0u64; 5],
                |states, ctl| {
                    if phase > 0 {
                        let total: u64 = states.iter().sum();
                        states[0] += total % 7;
                    }
                    for (i, w) in ctl.weights.iter_mut().enumerate() {
                        *w = (phase * 13 + i as u64 * 5) % 17 + 1;
                    }
                    phase += 1;
                    phase <= 10
                },
                |i, s| {
                    *s += (i as u64 + 1) * 3;
                },
            )
        };
        let want = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), want, "threads={threads}");
        }
    }

    #[test]
    fn stealing_rebalances_a_skewed_phase() {
        // Worker 0 is seeded one fast state; worker 1 gets a slow state
        // plus two more. Worker 0 finishes, finds its queue dry while
        // worker 1 is still inside the slow state, and must steal —
        // and the per-phase stats must say so.
        let mut phase = 0u64;
        let mut steals_seen = 0u64;
        let mut busy_seen = 0u64;
        let out = run_phased_stealing(
            2,
            vec![0u64; 4],
            |_, ctl| {
                steals_seen += ctl.stats.steals;
                busy_seen += ctl.stats.busy_ns;
                ctl.weights.copy_from_slice(&[100, 90, 1, 1]);
                phase += 1;
                phase <= 3
            },
            |i, s| {
                if i == 1 {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                }
                *s += 1;
            },
        );
        assert_eq!(out, vec![3u64; 4]);
        assert!(steals_seen >= 1, "skew must force at least one steal");
        assert!(busy_seen > 0, "workers must report busy time");
    }

    #[test]
    fn run_phased_stealing_worker_panics_propagate() {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut phase = 0;
            run_phased_stealing(
                3,
                vec![0u32; 6],
                |_, _| {
                    phase += 1;
                    phase <= 3
                },
                |i, s| {
                    if *s == 2 && i == 4 {
                        panic!("stealing worker exploded");
                    }
                    *s += 1;
                },
            )
        }));
        let payload = caught.expect_err("panic must cross the pool");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("stealing worker"), "payload: {msg}");
    }

    /// A panic in `plan` must tear the barrier down and re-raise on the
    /// caller — not strand the workers on the phase condvar (the join at
    /// scope exit would then deadlock).
    #[test]
    fn run_phased_stealing_plan_panics_propagate() {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut phase = 0;
            run_phased_stealing(
                4,
                vec![0u32; 8],
                |_, _| {
                    phase += 1;
                    if phase == 3 {
                        panic!("plan exploded");
                    }
                    true
                },
                |_, s| *s += 1,
            )
        }));
        let payload = caught.expect_err("plan panic must cross the pool");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("plan exploded"), "payload: {msg}");
    }

    #[test]
    fn run_phased_plan_panics_propagate() {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut phase = 0;
            run_phased(
                3,
                vec![0u32; 6],
                |_| {
                    phase += 1;
                    if phase == 2 {
                        panic!("plan exploded");
                    }
                    true
                },
                |_, s| *s += 1,
            )
        }));
        assert!(caught.is_err(), "plan panic must cross the pool");
    }

    #[test]
    fn resolve_prefers_explicit_then_global() {
        set_threads(3);
        assert_eq!(resolve_threads(Some(5)), 5);
        assert_eq!(resolve_threads(None), 3);
        assert_eq!(resolve_threads(Some(0)), 3);
        set_threads(0);
        assert!(resolve_threads(None) >= 1);
    }
}
