//! Deterministic fork/join parallelism on scoped OS threads.
//!
//! Everything in the workspace that fans out — fleet sampling, scenario
//! batches, analysis reduction — goes through this module so the
//! determinism story lives in one place: work is split into *indexed*
//! items, each item is computed independently (its randomness, if any,
//! comes from a per-item forked stream, never from a shared generator),
//! and results are stitched back together **in item order**. The thread
//! count therefore only decides who computes an item, never what the
//! item's value is or where it lands in the output.
//!
//! The pool is scoped (`std::thread::scope`), so borrowed state can be
//! shared by reference without `Arc` gymnastics, and a panicking worker
//! propagates its payload to the caller — which keeps
//! `supervisor::isolate` panic containment working unchanged when the
//! closure runs on a worker instead of the caller's thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide default worker count; 0 means "ask the OS"
/// ([`std::thread::available_parallelism`]). Set once by the CLI from
/// `--threads` and read by every call site that does not pass an
/// explicit count.
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count. `0` restores the
/// "available parallelism" default.
pub fn set_threads(n: usize) {
    DEFAULT_THREADS.store(n, Ordering::Relaxed);
}

/// Resolves an optional per-call override against the process default:
/// `Some(n > 0)` wins, then a non-zero [`set_threads`] value, then the
/// OS-reported parallelism (at least 1).
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    match explicit {
        Some(n) if n > 0 => n,
        _ => match DEFAULT_THREADS.load(Ordering::Relaxed) {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        },
    }
}

/// Maps `f` over `0..n` on `threads` workers and returns the results in
/// index order.
///
/// Items are handed out through a shared atomic cursor, so scheduling is
/// dynamic (good when item costs are skewed, as with per-interval heavy
/// hitters), but each result is written to its own slot: the output is
/// `[f(0), f(1), …, f(n-1)]` regardless of which worker computed what.
/// With one worker (or `n <= 1`) no threads are spawned at all, so the
/// serial path really is serial — not "parallel with one lane".
///
/// Panics in `f` are re-raised on the caller's thread with the original
/// payload once all workers have stopped.
pub fn map_indexed<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    // One mutex per slot: each is locked exactly once (the cursor hands
    // every index to exactly one worker), so there is no contention —
    // the locks only exist to stay inside `forbid(unsafe_code)`.
    let mut slots: Vec<Mutex<Option<T>>> = Vec::with_capacity(n);
    slots.resize_with(n, || Mutex::new(None));
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor = &cursor;
    let slots_ref = &slots;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = f(i);
                    *slots_ref[i].lock().expect("slot lock never poisons") = Some(value);
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("no worker panicked past the join above")
                .expect("every index was claimed by exactly one worker")
        })
        .collect()
}

/// Splits `0..n` into at most `threads` contiguous ranges of
/// near-equal length (the first `n % threads` ranges get one extra
/// item). Used by callers that want per-shard state — e.g. one record
/// buffer per fleet shard — instead of per-item slots.
pub fn split_ranges(threads: usize, n: usize) -> Vec<std::ops::Range<usize>> {
    let threads = threads.max(1).min(n.max(1));
    let base = n / threads;
    let extra = n % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0usize;
    for t in 0..threads {
        let len = base + usize::from(t < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order() {
        for threads in [1, 2, 3, 8] {
            let got = map_indexed(threads, 100, |i| i * i);
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u32> = map_indexed(4, 0, |_| unreachable!());
        assert!(got.is_empty());
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        let caught = std::panic::catch_unwind(|| {
            map_indexed(2, 10, |i| {
                if i == 7 {
                    panic!("worker seven exploded");
                }
                i
            })
        });
        let payload = caught.expect_err("panic must cross the pool");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("worker seven"), "payload: {msg}");
    }

    #[test]
    fn split_ranges_cover_exactly_once() {
        for threads in [1, 2, 3, 7, 16] {
            for n in [0usize, 1, 5, 16, 97] {
                let ranges = split_ranges(threads, n);
                let mut covered = Vec::new();
                for r in &ranges {
                    covered.extend(r.clone());
                }
                assert_eq!(covered, (0..n).collect::<Vec<_>>());
                let lens: Vec<usize> = ranges.iter().map(ExactSizeIterator::len).collect();
                if let (Some(max), Some(min)) = (lens.iter().max(), lens.iter().min()) {
                    assert!(max - min <= 1, "balanced shards: {lens:?}");
                }
            }
        }
    }

    #[test]
    fn resolve_prefers_explicit_then_global() {
        set_threads(3);
        assert_eq!(resolve_threads(Some(5)), 5);
        assert_eq!(resolve_threads(None), 3);
        assert_eq!(resolve_threads(Some(0)), 3);
        set_threads(0);
        assert!(resolve_threads(None) >= 1);
    }
}
