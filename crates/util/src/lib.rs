//! # sonet-util
//!
//! Foundation crate for the `sonet-dc` workspace: simulated time,
//! deterministic random number generation, probability distributions, and
//! the statistics toolkit (CDFs, percentiles, histograms) that every
//! analysis in the paper reduces to.
//!
//! Everything here is dependency-free (besides `serde` for report
//! serialization) and deterministic: a scenario seed fully determines every
//! generated trace, which is what makes the reproduction's tables and
//! figures stable across runs and machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod par;
pub mod rng;
pub mod stats;
pub mod time;

/// The flight recorder (re-export of [`sonet_obs`]): deterministic-safe
/// metrics, span tracing, run manifests, and the stderr reporter. Every
/// downstream crate reaches observability through this edge.
pub use sonet_obs as obs;

pub use dist::{Dist, Distribution};
pub use rng::Rng;
pub use stats::{percentile, percentile_sorted, EmpiricalCdf, Histogram, Summary};
pub use time::{SimDuration, SimTime};
