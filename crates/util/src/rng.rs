//! Deterministic pseudo-random number generation.
//!
//! The workspace needs reproducible traces: the same scenario seed must
//! produce bit-identical packet streams so that the regenerated tables and
//! figures are stable. We implement `xoshiro256**` (Blackman & Vigna)
//! seeded through SplitMix64, the standard seeding recipe, rather than
//! depending on a particular version of an external generator whose stream
//! could change under us.
//!
//! Independent sub-streams are derived with [`Rng::fork`], which hashes a
//! label into a child seed: every host, service, and flow generator gets
//! its own stream, so adding a generator never perturbs the draws seen by
//! unrelated components (a property the determinism tests assert).

/// SplitMix64 step; used for seeding and label hashing.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, forkable pseudo-random number generator
/// (`xoshiro256**`).
///
/// The state serializes (four words) so a checkpointed run can resume its
/// streams exactly where they stopped; equality compares the full state,
/// which is what checkpoint round-trip tests assert.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent child generator from this generator's seed
    /// material and a label.
    ///
    /// Forking does **not** advance this generator; it is a pure function
    /// of the current state and the label, so the set of children is stable
    /// regardless of interleaving.
    pub fn fork(&self, label: &str) -> Rng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for &b in label.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        // Mix the label hash with the parent state through SplitMix64.
        let mut sm = h ^ self.s[0] ^ self.s[2].rotate_left(17);
        Rng::new(splitmix64(&mut sm))
    }

    /// Derives an independent child generator from a numeric stream index.
    pub fn fork_idx(&self, label: &str, idx: u64) -> Rng {
        let mut child = self.fork(label);
        let mut sm = child.next_u64() ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Rng::new(splitmix64(&mut sm))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in the open interval `(0, 1)`; safe to pass to `ln()`.
    pub fn f64_open(&mut self) -> f64 {
        loop {
            let v = self.f64();
            if v > 0.0 {
                return v;
            }
        }
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`. Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "empty range");
        lo + self.f64() * (hi - lo)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Picks an index according to a slice of non-negative weights.
    ///
    /// Panics if the weights are empty or sum to zero.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut target = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            debug_assert!(w >= 0.0, "negative weight");
            if target < w {
                return i;
            }
            target -= w;
        }
        // Floating-point slack: fall back to the last positively weighted entry.
        weights
            .iter()
            .rposition(|&w| w > 0.0)
            .expect("weights must contain a positive entry")
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Standard normal variate (Marsaglia polar method).
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_pure_and_label_sensitive() {
        let parent = Rng::new(7);
        let mut c1 = parent.fork("hosts");
        let mut c2 = parent.fork("hosts");
        let mut c3 = parent.fork("flows");
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn fork_idx_streams_are_distinct() {
        let parent = Rng::new(9);
        let mut a = parent.fork_idx("host", 0);
        let mut b = parent.fork_idx("host", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut r = Rng::new(11);
        let mut counts = [0u32; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[r.below(7) as usize] += 1;
        }
        let expected = n as f64 / 7.0;
        for &c in &counts {
            assert!(
                (c as f64 - expected).abs() < expected * 0.1,
                "counts {counts:?}"
            );
        }
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut r = Rng::new(5);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            match r.range_inclusive(3, 5) {
                3 => saw_lo = true,
                5 => saw_hi = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let mut r = Rng::new(13);
        let w = [0.0, 3.0, 1.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[r.pick_weighted(&w)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(17);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = Rng::new(19);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.standard_normal();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
