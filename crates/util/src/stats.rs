//! Statistics toolkit: percentiles, summaries, empirical CDFs, histograms.
//!
//! Every figure in the paper is either a CDF (Figs 6–12, 14, 16, 17), a
//! percentile table (Table 4), or a time series of per-window aggregates
//! (Figs 4, 13, 15). This module provides those primitives with exact
//! (sort-based) percentile semantics — the traces we analyze fit in memory
//! by construction, mirroring the paper's own RAM-bounded capture hosts.

use serde::{Deserialize, Serialize};

/// Exact percentile of a sample set using linear interpolation between
/// order statistics (the "type 7" estimator used by numpy/R).
///
/// `q` is in `[0, 100]`. Returns `None` on an empty slice. The input does
/// not need to be sorted.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!((0.0..=100.0).contains(&q), "percentile out of range: {q}");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    Some(percentile_sorted(&sorted, q))
}

/// Percentile of an already ascending-sorted slice (see [`percentile`]).
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = q / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Five-number-style summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// 10th percentile.
    pub p10: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Computes a summary; returns `None` for an empty input.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary input"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(Summary {
            count: sorted.len(),
            mean,
            min: sorted[0],
            p10: percentile_sorted(&sorted, 10.0),
            p50: percentile_sorted(&sorted, 50.0),
            p90: percentile_sorted(&sorted, 90.0),
            p99: percentile_sorted(&sorted, 99.0),
            max: *sorted.last().expect("non-empty"),
        })
    }
}

/// An empirical cumulative distribution function over observed samples.
///
/// This is the data structure behind every CDF figure: it stores the sorted
/// samples and can be queried (`fraction_at`), inverted (`quantile`), or
/// down-sampled to plot-ready `(value, cum_fraction)` series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds a CDF from samples (need not be sorted). NaNs are rejected.
    pub fn new(mut samples: Vec<f64>) -> EmpiricalCdf {
        assert!(
            samples.iter().all(|v| !v.is_nan()),
            "NaN sample passed to EmpiricalCdf"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("checked for NaN"));
        EmpiricalCdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x` (the CDF evaluated at `x`).
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: the `q`-th percentile, `q` in `[0, 100]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(percentile_sorted(&self.sorted, q))
        }
    }

    /// Median convenience accessor.
    pub fn median(&self) -> Option<f64> {
        self.quantile(50.0)
    }

    /// Renders the CDF as at most `max_points` evenly spaced
    /// `(value, cum_fraction)` points, suitable for printing a figure series.
    pub fn series(&self, max_points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || max_points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        let points = max_points.min(n);
        (0..points)
            .map(|i| {
                let idx = if points == 1 {
                    n - 1
                } else {
                    i * (n - 1) / (points - 1)
                };
                (self.sorted[idx], (idx + 1) as f64 / n as f64)
            })
            .collect()
    }

    /// Read-only view of the sorted samples.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

/// Fixed-bin histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(lo < hi && bins > 0, "invalid histogram bounds");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((v - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let last = self.bins.len() - 1;
            self.bins[idx.min(last)] += 1;
        }
    }

    /// Total samples recorded, including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples below range / above range.
    pub fn outliers(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Bucket counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Bucket midpoints paired with counts.
    pub fn midpoints(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + width * (i as f64 + 0.5), c))
            .collect()
    }
}

/// Online mean/variance accumulator (Welford), for streaming rollups where
/// storing every sample would defeat the purpose (e.g. fleet-wide Fbflow
/// counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Streaming {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Streaming {
    /// New, empty accumulator.
    pub fn new() -> Streaming {
        Streaming {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Population variance, or `None` if empty.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(percentile(&v, 50.0), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn summary_of_known_set() {
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let s = Summary::of(&v).expect("non-empty");
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.p10 - 10.9).abs() < 1e-9);
        assert!((s.p90 - 90.1).abs() < 1e-9);
    }

    #[test]
    fn cdf_fraction_and_quantile_agree() {
        let cdf = EmpiricalCdf::new((1..=1000).map(|x| x as f64).collect());
        assert!((cdf.fraction_at(500.0) - 0.5).abs() < 1e-3);
        assert!((cdf.quantile(50.0).expect("non-empty") - 500.5).abs() < 1.0);
        assert_eq!(cdf.fraction_at(0.0), 0.0);
        assert_eq!(cdf.fraction_at(2000.0), 1.0);
    }

    #[test]
    fn cdf_series_is_monotone() {
        let cdf = EmpiricalCdf::new(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        let series = cdf.series(3);
        assert_eq!(series.len(), 3);
        for w in series.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(series.last().expect("non-empty").1, 1.0);
    }

    #[test]
    fn histogram_buckets_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-1.0);
        h.record(0.0);
        h.record(9.99);
        h.record(10.0);
        h.record(5.5);
        assert_eq!(h.count(), 5);
        assert_eq!(h.outliers(), (1, 1));
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.bins()[9], 1);
    }

    #[test]
    fn streaming_matches_batch() {
        let vals = [3.0, 7.0, 7.0, 19.0];
        let mut s = Streaming::new();
        for &v in &vals {
            s.record(v);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean().expect("n>0") - 9.0).abs() < 1e-12);
        let batch_var = vals.iter().map(|v| (v - 9.0) * (v - 9.0)).sum::<f64>() / 4.0;
        assert!((s.variance().expect("n>0") - batch_var).abs() < 1e-9);
        assert_eq!(s.min(), Some(3.0));
        assert_eq!(s.max(), Some(19.0));
    }
}
