//! Probability distributions used by the workload models.
//!
//! The paper's workloads are described in terms of medians, percentile
//! spreads, and qualitative shapes (heavy-tailed flow sizes, bimodal packet
//! sizes, log-normal on/off gaps for the literature baseline). We implement
//! the needed family ourselves — the allowed dependency set has `rand` but
//! not `rand_distr`, and owning the samplers keeps streams stable across
//! dependency upgrades.
//!
//! All samplers draw from [`crate::rng::Rng`] and are pure functions of the
//! generator state.

use crate::rng::Rng;
use serde::{Deserialize, Serialize};

/// Something that can be sampled with an [`Rng`].
pub trait Distribution {
    /// Draws one value.
    fn sample(&self, rng: &mut Rng) -> f64;
}

/// A closed, serializable union of every distribution the workspace uses.
///
/// Workload profiles are plain data (they are serialized into scenario
/// descriptions), so rather than trait objects we use this enum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Always the same value.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Exponential with the given mean (`1/λ`).
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Log-normal parameterized by the *median* and the shape `sigma`
    /// (the standard deviation of the underlying normal).
    ///
    /// Parameterizing by median rather than `mu` mirrors how the paper
    /// reports values ("median flow sends less than 1 KB").
    LogNormal {
        /// Median of the distribution (`e^mu`).
        median: f64,
        /// Shape parameter; larger values produce heavier right tails.
        sigma: f64,
    },
    /// Bounded Pareto on `[lo, hi]` with tail exponent `alpha`.
    ///
    /// Heavy-tailed flow sizes. Bounding keeps a 2-minute trace from being
    /// dominated by one astronomically large flow, matching the paper's
    /// observation that even Hadoop flows rarely exceed the trace length.
    ParetoBounded {
        /// Tail exponent (`> 0`); smaller is heavier.
        alpha: f64,
        /// Smallest value.
        lo: f64,
        /// Largest value.
        hi: f64,
    },
    /// Weibull with the given scale and shape.
    Weibull {
        /// Scale parameter (λ).
        scale: f64,
        /// Shape parameter (k); `k < 1` gives bursty inter-arrivals.
        shape: f64,
    },
    /// A two-point mixture: with probability `p_hi` sample `hi`, else `lo`.
    ///
    /// Models the literature baseline's bimodal ACK/MTU packet sizes.
    Bimodal {
        /// Low mode.
        lo: f64,
        /// High mode.
        hi: f64,
        /// Probability of the high mode.
        p_hi: f64,
    },
    /// A mixture over component distributions with the given weights.
    Mixture {
        /// Component distributions.
        components: Vec<Dist>,
        /// Non-negative selection weights (need not be normalized).
        weights: Vec<f64>,
    },
    /// Piecewise-linear inverse-CDF over `(value, cumulative_probability)`
    /// knots. The direct way to encode an empirical CDF read off a figure.
    Empirical {
        /// CDF knots: strictly increasing values with non-decreasing
        /// cumulative probabilities ending at 1.0.
        points: Vec<(f64, f64)>,
    },
}

impl Dist {
    /// Validates internal invariants; returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Dist::Constant(v) => {
                if !v.is_finite() {
                    return Err("constant must be finite".into());
                }
            }
            Dist::Uniform { lo, hi } => {
                if !(lo < hi) {
                    return Err(format!("uniform requires lo < hi (got {lo}..{hi})"));
                }
            }
            Dist::Exponential { mean } => {
                if !(*mean > 0.0) {
                    return Err("exponential mean must be positive".into());
                }
            }
            Dist::LogNormal { median, sigma } => {
                if !(*median > 0.0) || !(*sigma >= 0.0) {
                    return Err("lognormal requires median > 0 and sigma >= 0".into());
                }
            }
            Dist::ParetoBounded { alpha, lo, hi } => {
                if !(*alpha > 0.0) || !(*lo > 0.0) || !(lo < hi) {
                    return Err("bounded pareto requires alpha > 0 and 0 < lo < hi".into());
                }
            }
            Dist::Weibull { scale, shape } => {
                if !(*scale > 0.0) || !(*shape > 0.0) {
                    return Err("weibull requires positive scale and shape".into());
                }
            }
            Dist::Bimodal { p_hi, .. } => {
                if !(0.0..=1.0).contains(p_hi) {
                    return Err("bimodal p_hi must be in [0,1]".into());
                }
            }
            Dist::Mixture {
                components,
                weights,
            } => {
                if components.is_empty() || components.len() != weights.len() {
                    return Err("mixture needs equal, non-zero component/weight counts".into());
                }
                if weights.iter().any(|w| *w < 0.0) || weights.iter().sum::<f64>() <= 0.0 {
                    return Err("mixture weights must be non-negative and sum > 0".into());
                }
                for c in components {
                    c.validate()?;
                }
            }
            Dist::Empirical { points } => {
                if points.len() < 2 {
                    return Err("empirical CDF needs at least two knots".into());
                }
                for w in points.windows(2) {
                    if !(w[0].0 < w[1].0) || w[0].1 > w[1].1 {
                        return Err("empirical CDF knots must have increasing values and non-decreasing probabilities".into());
                    }
                }
                let last = points.last().expect("len checked").1;
                if (last - 1.0).abs() > 1e-9 {
                    return Err(format!(
                        "empirical CDF must end at probability 1.0 (got {last})"
                    ));
                }
                if points[0].1 < 0.0 {
                    return Err("empirical CDF probabilities must be non-negative".into());
                }
            }
        }
        Ok(())
    }

    /// Analytic (or knot-based) median, used by tests to pin workload
    /// parameters to the paper's reported medians.
    pub fn median(&self) -> f64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Exponential { mean } => mean * std::f64::consts::LN_2,
            Dist::LogNormal { median, .. } => *median,
            Dist::ParetoBounded { alpha, lo, hi } => {
                // Invert the bounded-Pareto CDF at 0.5.
                let la = lo.powf(*alpha);
                let ha = hi.powf(*alpha);
                let u = 0.5;
                (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
            }
            Dist::Weibull { scale, shape } => scale * std::f64::consts::LN_2.powf(1.0 / shape),
            Dist::Bimodal { lo, hi, p_hi } => {
                if *p_hi > 0.5 {
                    *hi
                } else {
                    *lo
                }
            }
            Dist::Mixture { .. } | Dist::Empirical { .. } => {
                // No simple closed form; interpolate empirically from knots
                // or report NaN for mixtures (tests sample instead).
                if let Dist::Empirical { points } = self {
                    inverse_cdf_knots(points, 0.5)
                } else {
                    f64::NAN
                }
            }
        }
    }
}

impl Distribution for Dist {
    fn sample(&self, rng: &mut Rng) -> f64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => rng.range_f64(*lo, *hi),
            Dist::Exponential { mean } => -mean * rng.f64_open().ln(),
            Dist::LogNormal { median, sigma } => {
                (median.ln() + sigma * rng.standard_normal()).exp()
            }
            Dist::ParetoBounded { alpha, lo, hi } => {
                // Inverse transform for the bounded Pareto.
                let u = rng.f64();
                let la = lo.powf(*alpha);
                let ha = hi.powf(*alpha);
                (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
            }
            Dist::Weibull { scale, shape } => scale * (-rng.f64_open().ln()).powf(1.0 / shape),
            Dist::Bimodal { lo, hi, p_hi } => {
                if rng.chance(*p_hi) {
                    *hi
                } else {
                    *lo
                }
            }
            Dist::Mixture {
                components,
                weights,
            } => {
                let idx = rng.pick_weighted(weights);
                components[idx].sample(rng)
            }
            Dist::Empirical { points } => inverse_cdf_knots(points, rng.f64()),
        }
    }
}

/// Piecewise-linear inverse CDF over `(value, cum_prob)` knots.
fn inverse_cdf_knots(points: &[(f64, f64)], u: f64) -> f64 {
    debug_assert!(points.len() >= 2);
    let u = u.clamp(points[0].1, 1.0);
    for w in points.windows(2) {
        let (v0, p0) = w[0];
        let (v1, p1) = w[1];
        if u <= p1 {
            if p1 <= p0 {
                return v1;
            }
            let t = (u - p0) / (p1 - p0);
            return v0 + t * (v1 - v0);
        }
    }
    points.last().expect("len >= 2").0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_median(d: &Dist, seed: u64, n: usize) -> f64 {
        let mut rng = Rng::new(seed);
        let mut v: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        v[n / 2]
    }

    #[test]
    fn exponential_mean_and_median() {
        let d = Dist::Exponential { mean: 10.0 };
        let mut rng = Rng::new(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
        let med = sample_median(&d, 2, 100_001);
        assert!(
            (med - d.median()).abs() < 0.2,
            "median {med} vs {}",
            d.median()
        );
    }

    #[test]
    fn lognormal_median_matches_parameter() {
        let d = Dist::LogNormal {
            median: 200.0,
            sigma: 1.5,
        };
        let med = sample_median(&d, 3, 100_001);
        assert!((med - 200.0).abs() / 200.0 < 0.05, "median {med}");
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let d = Dist::ParetoBounded {
            alpha: 1.2,
            lo: 100.0,
            hi: 1e7,
        };
        let mut rng = Rng::new(4);
        for _ in 0..50_000 {
            let v = d.sample(&mut rng);
            assert!((100.0..=1e7).contains(&v), "out of bounds: {v}");
        }
        // Analytic median agrees with the sampled median.
        let med = sample_median(&d, 5, 100_001);
        let want = d.median();
        assert!((med - want).abs() / want < 0.05, "median {med} want {want}");
    }

    #[test]
    fn bimodal_hits_both_modes_at_given_rate() {
        let d = Dist::Bimodal {
            lo: 66.0,
            hi: 1500.0,
            p_hi: 0.4,
        };
        let mut rng = Rng::new(6);
        let n = 100_000;
        let hi_count = (0..n).filter(|_| d.sample(&mut rng) == 1500.0).count();
        let p = hi_count as f64 / n as f64;
        assert!((p - 0.4).abs() < 0.01, "p_hi {p}");
    }

    #[test]
    fn weibull_median_analytic() {
        let d = Dist::Weibull {
            scale: 5.0,
            shape: 0.7,
        };
        let med = sample_median(&d, 7, 100_001);
        let want = d.median();
        assert!((med - want).abs() / want < 0.05, "median {med} want {want}");
    }

    #[test]
    fn mixture_weights_respected() {
        let d = Dist::Mixture {
            components: vec![Dist::Constant(1.0), Dist::Constant(2.0)],
            weights: vec![1.0, 3.0],
        };
        let mut rng = Rng::new(8);
        let n = 80_000;
        let twos = (0..n).filter(|_| d.sample(&mut rng) == 2.0).count();
        let p = twos as f64 / n as f64;
        assert!((p - 0.75).abs() < 0.01, "p {p}");
    }

    #[test]
    fn empirical_interpolates_and_bounds() {
        let d = Dist::Empirical {
            points: vec![(10.0, 0.0), (100.0, 0.5), (1000.0, 1.0)],
        };
        d.validate().expect("valid");
        let mut rng = Rng::new(9);
        for _ in 0..20_000 {
            let v = d.sample(&mut rng);
            assert!((10.0..=1000.0).contains(&v), "out of bounds {v}");
        }
        assert!((d.median() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn validation_catches_bad_parameters() {
        assert!(Dist::Uniform { lo: 2.0, hi: 1.0 }.validate().is_err());
        assert!(Dist::Exponential { mean: 0.0 }.validate().is_err());
        assert!(Dist::LogNormal {
            median: -1.0,
            sigma: 1.0
        }
        .validate()
        .is_err());
        assert!(Dist::ParetoBounded {
            alpha: 1.0,
            lo: 5.0,
            hi: 2.0
        }
        .validate()
        .is_err());
        assert!(Dist::Bimodal {
            lo: 1.0,
            hi: 2.0,
            p_hi: 1.5
        }
        .validate()
        .is_err());
        assert!(Dist::Mixture {
            components: vec![],
            weights: vec![]
        }
        .validate()
        .is_err());
        assert!(Dist::Empirical {
            points: vec![(1.0, 0.0), (2.0, 0.9)]
        }
        .validate()
        .is_err());
    }
}
