//! Simulated time.
//!
//! The simulator clock is a monotonic count of nanoseconds since the start
//! of the scenario. Nanosecond resolution comfortably covers everything the
//! paper measures: the finest-grained observation is the 10-microsecond
//! buffer-occupancy sampling of Figure 15, and the shortest physical event
//! is the serialization time of a 64-byte frame at 10 Gbps (51.2 ns).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since scenario start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The scenario start instant.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs an instant from raw nanoseconds since scenario start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs an instant from microseconds since scenario start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Constructs an instant from milliseconds since scenario start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Constructs an instant from whole seconds since scenario start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since scenario start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since scenario start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since scenario start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds since scenario start (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds since scenario start as a float (for plotting/report axes).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The index of the window of length `bin` containing this instant.
    ///
    /// Used throughout the analysis crate to assign packets to 1/10/100-ms
    /// (and 5-ms) observation windows.
    pub fn bin_index(self, bin: SimDuration) -> u64 {
        debug_assert!(bin.0 > 0, "bin width must be positive");
        self.0 / bin.0
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs a span from fractional seconds (truncating below 1 ns).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s >= 0.0 && s.is_finite(),
            "duration must be finite and non-negative"
        );
        SimDuration((s * 1e9) as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// The span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Serialization time of `bytes` on a link of `gbps` gigabits per second.
    ///
    /// Rounds up to a whole nanosecond so that back-to-back packets never
    /// serialize in zero time.
    pub fn for_bytes_at_gbps(bytes: u64, gbps: f64) -> Self {
        assert!(gbps > 0.0, "link rate must be positive");
        let ns = (bytes as f64 * 8.0 / gbps).ceil() as u64;
        SimDuration(ns.max(1))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow: rhs is later than self"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_millis(1_500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!(t.as_millis(), 1_500);
        assert_eq!(t.as_secs(), 1);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(2) + SimDuration::from_millis(500);
        assert_eq!(t.as_millis(), 2_500);
        assert_eq!((t - SimTime::from_secs(1)).as_millis(), 1_500);
        assert_eq!(
            SimDuration::from_micros(3) * 4,
            SimDuration::from_micros(12)
        );
        assert_eq!(
            SimDuration::from_micros(12) / 4,
            SimDuration::from_micros(3)
        );
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(3);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(2));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn bin_index_boundaries() {
        let bin = SimDuration::from_millis(1);
        assert_eq!(SimTime::from_nanos(0).bin_index(bin), 0);
        assert_eq!(SimTime::from_nanos(999_999).bin_index(bin), 0);
        assert_eq!(SimTime::from_nanos(1_000_000).bin_index(bin), 1);
    }

    #[test]
    fn serialization_time() {
        // 1500 bytes at 10 Gbps = 1200 ns.
        assert_eq!(SimDuration::for_bytes_at_gbps(1500, 10.0).as_nanos(), 1200);
        // Tiny frames still take at least 1 ns.
        assert!(SimDuration::for_bytes_at_gbps(1, 1000.0).as_nanos() >= 1);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_subtraction_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }
}
