//! Connection state: per-direction segment queues, windows, and
//! acknowledgement tracking.
//!
//! Segment queues are run-length encoded: an application message of
//! `n × MSS + r` bytes is two runs (`n` full segments, then one `r`-byte
//! segment flagged as the message boundary), so a 100-MB Hadoop transfer
//! costs O(1) memory rather than one entry per packet.

use crate::packet::{ConnId, Dir, FlowKey};
use serde::{Deserialize, Serialize};
use sonet_topology::LinkId;
use sonet_util::{SimDuration, SimTime};
use std::collections::VecDeque;

/// One run of identical segments awaiting transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct SegRun {
    /// Number of segments in the run.
    pub count: u64,
    /// Payload bytes per segment.
    pub payload: u32,
    /// Application message these segments belong to.
    pub msg: u32,
    /// True if the single segment in this run closes the message
    /// (`count` must be 1 when set).
    pub last_of_msg: bool,
}

/// A popped segment ready to become a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Segment {
    pub payload: u32,
    pub msg: u32,
    pub last_of_msg: bool,
}

/// Run-length-encoded FIFO of segments.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct SegQueue {
    runs: VecDeque<SegRun>,
    segments: u64,
}

impl SegQueue {
    /// Appends the segments of a `bytes`-long message with id `msg`.
    ///
    /// Zero-byte messages enqueue nothing.
    pub fn push_message(&mut self, bytes: u64, mss: u32, msg: u32) {
        if bytes == 0 {
            return;
        }
        let mss64 = mss as u64;
        let full = bytes / mss64;
        let rem = (bytes % mss64) as u32;
        if rem > 0 {
            if full > 0 {
                self.push_run(SegRun {
                    count: full,
                    payload: mss,
                    msg,
                    last_of_msg: false,
                });
            }
            self.push_run(SegRun {
                count: 1,
                payload: rem,
                msg,
                last_of_msg: true,
            });
        } else {
            if full > 1 {
                self.push_run(SegRun {
                    count: full - 1,
                    payload: mss,
                    msg,
                    last_of_msg: false,
                });
            }
            self.push_run(SegRun {
                count: 1,
                payload: mss,
                msg,
                last_of_msg: true,
            });
        }
    }

    fn push_run(&mut self, run: SegRun) {
        debug_assert!(!run.last_of_msg || run.count == 1);
        self.segments += run.count;
        // Coalesce with the tail when identical in everything but count.
        if let Some(tail) = self.runs.back_mut() {
            if !tail.last_of_msg
                && !run.last_of_msg
                && tail.payload == run.payload
                && tail.msg == run.msg
            {
                tail.count += run.count;
                return;
            }
        }
        self.runs.push_back(run);
    }

    /// Pops the next segment, if any.
    pub fn pop(&mut self) -> Option<Segment> {
        let front = self.runs.front_mut()?;
        let seg = Segment {
            payload: front.payload,
            msg: front.msg,
            last_of_msg: front.last_of_msg,
        };
        front.count -= 1;
        if front.count == 0 {
            self.runs.pop_front();
        }
        self.segments -= 1;
        Some(seg)
    }

    /// Appends one already-popped segment (used to track unacked segments).
    pub fn push_seg(&mut self, seg: Segment) {
        self.push_run(SegRun {
            count: 1,
            payload: seg.payload,
            msg: seg.msg,
            last_of_msg: seg.last_of_msg,
        });
    }

    /// Prepends all runs of `other` ahead of this queue (retransmission).
    pub fn prepend(&mut self, mut other: SegQueue) {
        while let Some(run) = other.runs.pop_back() {
            self.segments += run.count;
            self.runs.push_front(run);
        }
    }

    /// Number of queued segments.
    #[allow(dead_code)] // used by tests and kept for queue introspection
    pub fn len(&self) -> u64 {
        self.segments
    }

    /// True when no segments are queued.
    #[allow(dead_code)] // used by tests and kept for queue introspection
    pub fn is_empty(&self) -> bool {
        self.segments == 0
    }
}

/// Sender + receiver state for one direction of a connection.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct DirState {
    /// Segments not yet put on the wire.
    pub pending: SegQueue,
    /// Segments on the wire, not yet acknowledged (for go-back-N).
    pub unacked: SegQueue,
    /// Cumulative segments handed to the wire (resets to `acked` on RTO).
    pub sent: u64,
    /// Cumulative segments acknowledged by the peer.
    pub acked: u64,
    /// Receiver side: cumulative in-order segments received.
    pub received: u64,
    /// Receiver side: data segments since the last ACK we sent.
    pub unacked_by_us: u32,
    /// Receiver side: highest message id whose final segment was delivered.
    pub last_msg_completed: Option<u32>,
    /// Whether an RTO timer event is currently scheduled.
    pub rto_armed: bool,
    /// Value of `acked` when the current RTO timer was armed; progress
    /// since arming re-arms instead of retransmitting.
    pub acked_at_arm: u64,
    /// Retransmissions fired since the last acknowledgement progress;
    /// the engine aborts the connection when this exceeds its cap while
    /// the route is broken.
    pub consecutive_rtos: u32,
}

impl DirState {
    /// Segments currently in flight.
    pub fn in_flight(&self) -> u64 {
        self.sent - self.acked
    }
}

/// Lifecycle of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) enum ConnPhase {
    /// SYN sent, not yet accepted.
    Opening,
    /// Established.
    Open,
    /// FIN sent or received; no new messages may be queued.
    Closed,
}

/// Metadata for a message queued by the application: what the server
/// should send back and after how long, plus when the client issued it
/// (for latency accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct MsgMeta {
    pub response_bytes: u64,
    pub service_time: SimDuration,
    pub issued_at: SimTime,
}

/// Full state of one simulated connection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Conn {
    #[allow(dead_code)] // identity kept for debugging/assertions
    pub id: ConnId,
    pub key: FlowKey,
    pub phase: ConnPhase,
    /// Route for client→server packets.
    pub route_fwd: Vec<LinkId>,
    /// Route for server→client packets.
    pub route_rev: Vec<LinkId>,
    /// Client→server direction state.
    pub c2s: DirState,
    /// Server→client direction state.
    pub s2c: DirState,
    /// Per-request metadata, indexed by client message id.
    pub msg_meta: Vec<MsgMeta>,
    /// Issue time of the request each server response answers, indexed by
    /// server message id (latency accounting).
    pub resp_req_issued: Vec<SimTime>,
    /// Messages queued while the handshake is still in progress:
    /// `(request_bytes, meta)` pairs released when the SYN-ACK arrives.
    pub pre_open: Vec<(u64, MsgMeta)>,
    /// Server-side message id counter (responses).
    pub next_server_msg: u32,
    /// SYNs emitted so far (handshake retries back off exponentially and
    /// give up at the configured cap).
    pub syn_attempts: u32,
    /// Time the connection was opened (SYN emission).
    #[allow(dead_code)] // retained for debugging and future duration accounting
    pub opened_at: SimTime,
}

impl Conn {
    pub fn dir_mut(&mut self, dir: Dir) -> &mut DirState {
        match dir {
            Dir::ClientToServer => &mut self.c2s,
            Dir::ServerToClient => &mut self.s2c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_segmentation_exact_multiple() {
        let mut q = SegQueue::default();
        q.push_message(2920, 1460, 0); // exactly 2 MSS
        assert_eq!(q.len(), 2);
        let a = q.pop().expect("first");
        assert_eq!((a.payload, a.last_of_msg), (1460, false));
        let b = q.pop().expect("second");
        assert_eq!((b.payload, b.last_of_msg), (1460, true));
        assert!(q.pop().is_none());
    }

    #[test]
    fn message_segmentation_with_remainder() {
        let mut q = SegQueue::default();
        q.push_message(3000, 1460, 7);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().expect("seg").payload, 1460);
        assert_eq!(q.pop().expect("seg").payload, 1460);
        let last = q.pop().expect("seg");
        assert_eq!(last.payload, 80);
        assert!(last.last_of_msg);
        assert_eq!(last.msg, 7);
    }

    #[test]
    fn small_message_is_single_boundary_segment() {
        let mut q = SegQueue::default();
        q.push_message(100, 1460, 3);
        assert_eq!(q.len(), 1);
        let s = q.pop().expect("seg");
        assert!(s.last_of_msg);
        assert_eq!(s.payload, 100);
    }

    #[test]
    fn zero_byte_message_enqueues_nothing() {
        let mut q = SegQueue::default();
        q.push_message(0, 1460, 0);
        assert!(q.is_empty());
    }

    #[test]
    fn huge_message_uses_constant_runs() {
        let mut q = SegQueue::default();
        q.push_message(100 << 20, 1460, 0); // 100 MB
        assert!(
            q.runs.len() <= 2,
            "RLE should keep runs tiny: {}",
            q.runs.len()
        );
        assert_eq!(q.len(), (100u64 << 20).div_ceil(1460));
    }

    #[test]
    fn coalescing_adjacent_full_runs() {
        let mut q = SegQueue::default();
        // Two messages with the same id never happen, but runs from the same
        // message with equal payload coalesce.
        q.push_message(1460 * 10, 1460, 1);
        assert_eq!(q.runs.len(), 2); // 9 full + 1 boundary
    }

    #[test]
    fn prepend_restores_fifo_order() {
        let mut pending = SegQueue::default();
        pending.push_message(100, 1460, 2);
        let mut unacked = SegQueue::default();
        unacked.push_message(3000, 1460, 1);
        pending.prepend(unacked);
        assert_eq!(pending.len(), 4);
        assert_eq!(pending.pop().expect("seg").msg, 1); // retransmitted first
        assert_eq!(pending.pop().expect("seg").msg, 1);
        assert_eq!(pending.pop().expect("seg").msg, 1);
        assert_eq!(pending.pop().expect("seg").msg, 2);
    }

    #[test]
    fn in_flight_accounting() {
        let mut d = DirState::default();
        d.sent = 10;
        d.acked = 4;
        assert_eq!(d.in_flight(), 6);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Segmentation conserves payload exactly: popping everything
            /// returns the message byte-for-byte, with exactly one
            /// boundary segment per message, in FIFO order.
            #[test]
            fn segmentation_conserves_bytes(
                msgs in prop::collection::vec(1u64..5_000_000, 1..20),
                mss in 100u32..9000,
            ) {
                let mut q = SegQueue::default();
                for (i, &m) in msgs.iter().enumerate() {
                    q.push_message(m, mss, i as u32);
                }
                let mut total = 0u64;
                let mut boundaries = 0usize;
                let mut last_msg = None;
                while let Some(seg) = q.pop() {
                    prop_assert!(seg.payload >= 1 && seg.payload <= mss);
                    total += seg.payload as u64;
                    if seg.last_of_msg {
                        boundaries += 1;
                    }
                    if let Some(prev) = last_msg {
                        prop_assert!(seg.msg >= prev, "FIFO order violated");
                    }
                    last_msg = Some(seg.msg);
                }
                prop_assert_eq!(total, msgs.iter().sum::<u64>());
                prop_assert_eq!(boundaries, msgs.len());
                prop_assert!(q.is_empty());
            }

            /// prepend(unacked) + pending preserves total counts under any
            /// interleaving of pushes and pops (the go-back-N path).
            #[test]
            fn prepend_conserves_counts(
                first in 1u64..100_000,
                second in 1u64..100_000,
                pops in 0usize..40,
            ) {
                let mss = 1460u32;
                let mut pending = SegQueue::default();
                pending.push_message(first, mss, 0);
                let mut unacked = SegQueue::default();
                let mut moved = 0u64;
                for _ in 0..pops {
                    if let Some(seg) = pending.pop() {
                        unacked.push_seg(seg);
                        moved += 1;
                    }
                }
                pending.push_message(second, mss, 1);
                let before = pending.len() + unacked.len();
                prop_assert_eq!(unacked.len(), moved);
                pending.prepend(unacked);
                prop_assert_eq!(pending.len(), before);
            }
        }
    }
}
