//! # sonet-netsim
//!
//! A discrete-event, packet-level simulator of the datacenter plant built
//! by [`sonet_topology`]. This is the substrate standing in for the
//! production network the paper measured (see DESIGN.md §1 for the
//! substitution argument): workload models open TCP-like connections and
//! exchange request/response messages; the engine segments them into
//! packets, walks each packet across its ECMP route, charges serialization
//! and queueing on every link, applies shared-buffer admission at switches,
//! and feeds packet observers (the telemetry crate's port mirrors and
//! Fbflow samplers) exactly the header stream a real tap would see.
//!
//! ## Transport model
//!
//! Deliberately simplified TCP (§3.3 of the paper analyzes headers, not
//! congestion dynamics):
//!
//! * handshake: SYN / SYN-ACK, then the connection is open (the final ACK
//!   is folded into the first data segment, as with piggybacked ACKs);
//! * MSS segmentation of application messages; a fixed per-direction
//!   sending window provides ACK clocking and bounds in-flight data;
//! * delayed ACKs (one per two data segments, plus an immediate ACK at a
//!   message boundary);
//! * go-back-N retransmission on a coarse timer so that traces survive
//!   buffer-overflow drops without deadlocking.
//!
//! What is *not* modeled — congestion-window evolution, SACK, ECN — does
//! not alter any quantity the paper reports: packet sizes, arrival
//! processes, flow sizes/durations, locality, and µs-scale buffer
//! occupancy are all dominated by application behaviour at the observed
//! <10 % utilizations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod conn;
pub mod engine;
pub mod faults;
pub mod packet;
pub mod tap;

pub use config::{BufferConfig, SimConfig};
pub use engine::{
    set_granularity_override, AuditReport, AuditViolation, BufferWindowStat, EngineCheckpoint,
    FidelityConfig, FidelityMode, Granularity, LinkCounters, LiveCounters, ParallelStats, SimError,
    SimOutputs, Simulator,
};
pub use faults::{FaultEvent, FaultKind, FaultPlan, MAX_FLAP_CYCLES};
pub use packet::{ConnId, Dir, FlowKey, Packet, PacketKind};
pub use tap::{NullTap, PacketTap};
