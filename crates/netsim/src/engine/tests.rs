use super::*;
use crate::config::SimConfig;
use crate::packet::{Packet, PacketKind};
use crate::tap::{NullTap, PacketTap};
use sonet_topology::{ClusterSpec, TopologySpec};
use std::sync::Arc;

fn two_cluster_topo() -> Arc<Topology> {
    Arc::new(
        Topology::build(TopologySpec::single_dc(vec![
            ClusterSpec::frontend(8, 4),
            ClusterSpec::hadoop(4, 4),
        ]))
        .expect("valid"),
    )
}

/// Collects every observed packet.
#[derive(Default)]
struct Collector {
    pkts: Vec<(SimTime, LinkId, Packet)>,
}
impl PacketTap for Collector {
    fn on_packet(&mut self, at: SimTime, link: LinkId, pkt: &Packet) {
        self.pkts.push((at, link, *pkt));
    }
}

fn sim_with_collector(topo: &Arc<Topology>) -> Simulator<Collector> {
    Simulator::new(Arc::clone(topo), SimConfig::default(), Collector::default())
        .expect("valid config")
}

#[test]
fn handshake_then_request_response() {
    let topo = two_cluster_topo();
    let mut sim = sim_with_collector(&topo);
    let a = topo.racks()[0].hosts[0];
    let b = topo.racks()[1].hosts[0];
    sim.watch_link(topo.host_uplink(a));
    sim.watch_link(topo.host_downlink(a));

    let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
    sim.send_message(
        conn,
        SimTime::ZERO,
        500,
        2000,
        SimDuration::from_micros(100),
    )
    .expect("send");
    sim.run_until(SimTime::from_millis(100));
    let (out, tap) = sim.finish();

    assert!(out.delivered_packets > 0);
    assert_eq!(out.completed_requests, 1);
    // The client's uplink saw a SYN then request data; downlink saw
    // SYN-ACK, ACKs, and response data.
    let kinds: Vec<PacketKind> = tap.pkts.iter().map(|(_, _, p)| p.kind).collect();
    assert!(kinds.contains(&PacketKind::Syn));
    assert!(kinds.contains(&PacketKind::SynAck));
    assert!(kinds.iter().any(|k| k.is_data()));
    assert!(kinds.contains(&PacketKind::Ack));
    // Response totals 2000 payload bytes back to the client.
    let resp_payload: u64 = tap
        .pkts
        .iter()
        .filter(|(_, _, p)| p.dir == Dir::ServerToClient && p.kind.is_data())
        .map(|(_, _, p)| p.payload as u64)
        .sum();
    assert_eq!(resp_payload, 2000);
}

#[test]
fn request_segmentation_matches_mss() {
    let topo = two_cluster_topo();
    let mut sim = sim_with_collector(&topo);
    let a = topo.racks()[0].hosts[0];
    let b = topo.racks()[1].hosts[0];
    sim.watch_link(topo.host_uplink(a));
    let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
    // 4000 bytes = 1460 + 1460 + 1080.
    sim.send_message(conn, SimTime::ZERO, 4000, 0, SimDuration::ZERO)
        .expect("send");
    sim.run_until(SimTime::from_millis(50));
    let (_, tap) = sim.finish();
    let data: Vec<u32> = tap
        .pkts
        .iter()
        .filter(|(_, _, p)| p.kind.is_data())
        .map(|(_, _, p)| p.payload)
        .collect();
    assert_eq!(data, vec![1460, 1460, 1080]);
    let last_flags: Vec<bool> = tap
        .pkts
        .iter()
        .filter_map(|(_, _, p)| match p.kind {
            PacketKind::Data { last_of_msg } => Some(last_of_msg),
            _ => None,
        })
        .collect();
    assert_eq!(last_flags, vec![false, false, true]);
}

#[test]
fn per_link_timestamps_are_monotone() {
    let topo = two_cluster_topo();
    let mut sim = sim_with_collector(&topo);
    let a = topo.racks()[0].hosts[0];
    let b = topo.racks()[1].hosts[0];
    let up = topo.host_uplink(a);
    sim.watch_link(up);
    let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
    for i in 0..20 {
        sim.send_message(
            conn,
            SimTime::from_micros(i * 50),
            1000,
            100,
            SimDuration::from_micros(10),
        )
        .expect("send");
    }
    sim.run_until(SimTime::from_millis(100));
    let (_, tap) = sim.finish();
    let times: Vec<SimTime> = tap
        .pkts
        .iter()
        .filter(|(_, l, _)| *l == up)
        .map(|(t, _, _)| *t)
        .collect();
    assert!(times.len() > 20);
    for w in times.windows(2) {
        assert!(w[0] <= w[1], "per-link tap order violated");
    }
}

#[test]
fn utilization_series_accounts_all_bytes() {
    let topo = two_cluster_topo();
    let mut sim = sim_with_collector(&topo);
    let a = topo.racks()[0].hosts[0];
    let b = topo.racks()[1].hosts[0];
    let up = topo.host_uplink(a);
    sim.track_utilization(SimDuration::from_millis(10), &[up])
        .expect("track");
    let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
    sim.send_message(conn, SimTime::ZERO, 50_000, 0, SimDuration::ZERO)
        .expect("send");
    sim.run_until(SimTime::from_millis(200));
    let (out, _) = sim.finish();
    let series = &out.util_series[&up];
    let series_total: u64 = series.iter().sum();
    assert_eq!(series_total, out.link_counters[up.index()].tx_bytes);
    assert!(series_total > 50_000, "includes framing and SYN");
}

#[test]
fn tiny_buffers_cause_egress_drops_but_transfer_completes() {
    let topo = two_cluster_topo();
    let mut cfg = SimConfig::default();
    // Pathologically small shared buffer at the ToR to force drops.
    cfg.rsw_buffer.shared_bytes = 8 * 1526;
    cfg.rsw_buffer.alpha = 0.5;
    let mut sim = Simulator::new(Arc::clone(&topo), cfg, NullTap).expect("valid config");
    let dst = topo.racks()[0].hosts[0];
    // Many senders burst into one receiver (incast across the cluster).
    let mut conns = Vec::new();
    for r in 1..8 {
        for h in 0..4 {
            let src = topo.racks()[r].hosts[h];
            let c = sim
                .open_connection(SimTime::ZERO, src, dst, 80)
                .expect("open");
            sim.send_message(c, SimTime::from_micros(10), 200_000, 0, SimDuration::ZERO)
                .expect("send");
            conns.push(c);
        }
    }
    sim.run_to_quiescence();
    let (out, _) = sim.finish();
    let down = topo.host_downlink(dst);
    assert!(
        out.link_counters[down.index()].drop_packets > 0,
        "incast into a tiny shared buffer must drop"
    );
    // Retransmission still completes all 28 requests.
    assert_eq!(out.completed_requests, 28);
}

#[test]
fn buffer_sampler_produces_windows() {
    let topo = two_cluster_topo();
    let mut sim = sim_with_collector(&topo);
    let a = topo.racks()[0].hosts[0];
    let b = topo.racks()[1].hosts[0];
    let rsw = topo.racks()[0].rsw;
    sim.sample_buffers(
        SimDuration::from_micros(10),
        SimDuration::from_millis(10),
        vec![rsw],
    )
    .expect("sample");
    let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
    sim.send_message(conn, SimTime::ZERO, 1_000_000, 0, SimDuration::ZERO)
        .expect("send");
    sim.run_until(SimTime::from_millis(35));
    let (out, _) = sim.finish();
    assert!(
        out.buffer_stats.len() >= 3,
        "got {}",
        out.buffer_stats.len()
    );
    for w in &out.buffer_stats {
        assert_eq!(w.switch, rsw);
        assert!(w.max >= w.median);
        assert!(w.capacity > 0);
        assert!(w.samples > 0);
    }
    // Windows are in time order.
    for pair in out.buffer_stats.windows(2) {
        assert!(pair[0].window_start <= pair[1].window_start);
    }
}

#[test]
fn api_validation_errors() {
    let topo = two_cluster_topo();
    let mut sim = sim_with_collector(&topo);
    let a = topo.racks()[0].hosts[0];
    let b = topo.racks()[1].hosts[0];
    assert_eq!(
        sim.open_connection(SimTime::ZERO, a, a, 80).unwrap_err(),
        SimError::SelfConnection(a)
    );
    let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
    assert_eq!(
        sim.send_message(conn, SimTime::ZERO, 0, 0, SimDuration::ZERO)
            .unwrap_err(),
        SimError::EmptyRequest
    );
    assert!(matches!(
        sim.send_message(
            ConnId { idx: 99, gen: 0 },
            SimTime::ZERO,
            1,
            0,
            SimDuration::ZERO
        ),
        Err(SimError::NoSuchConn(_))
    ));
    sim.run_until(SimTime::from_secs(1));
    assert!(matches!(
        sim.open_connection(SimTime::ZERO, a, b, 80),
        Err(SimError::TimeInPast { .. })
    ));
}

#[test]
fn close_emits_fin_and_blocks_messages() {
    let topo = two_cluster_topo();
    let mut sim = sim_with_collector(&topo);
    let a = topo.racks()[0].hosts[0];
    let b = topo.racks()[1].hosts[0];
    sim.watch_link(topo.host_uplink(a));
    sim.watch_link(topo.host_downlink(a));
    let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
    sim.close_connection(conn, SimTime::from_millis(1))
        .expect("close");
    // Message scheduled after the close fires: counted, not sent.
    sim.send_message(conn, SimTime::from_millis(2), 100, 0, SimDuration::ZERO)
        .expect("scheduling is allowed; rejection happens at fire time");
    sim.run_until(SimTime::from_millis(50));
    let (out, tap) = sim.finish();
    assert_eq!(out.messages_on_closed, 1);
    let kinds: Vec<PacketKind> = tap.pkts.iter().map(|(_, _, p)| p.kind).collect();
    assert!(kinds.contains(&PacketKind::Fin));
    assert!(kinds.contains(&PacketKind::FinAck));
}

#[test]
fn window_caps_in_flight_segments() {
    // With a window of 4 segments, at most 4 unacknowledged data
    // packets are on the wire at once: observe the uplink and count
    // data packets between ACK arrivals.
    let topo = two_cluster_topo();
    let mut cfg = SimConfig::default();
    cfg.window_segments = 4;
    let mut sim = Simulator::new(Arc::clone(&topo), cfg, Collector::default()).expect("config");
    let a = topo.racks()[0].hosts[0];
    let b = topo.racks()[1].hosts[0];
    sim.watch_link(topo.host_uplink(a));
    sim.watch_link(topo.host_downlink(a));
    let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
    sim.send_message(conn, SimTime::ZERO, 100_000, 0, SimDuration::ZERO)
        .expect("send");
    sim.run_to_quiescence();
    let (_, tap) = sim.finish();
    // Replay the tap chronologically: outstanding = data packets put
    // on the wire minus the cumulative count acknowledged.
    let mut sent: i64 = 0;
    let mut acked: i64 = 0;
    let mut max_outstanding: i64 = 0;
    let mut events: Vec<&(SimTime, LinkId, Packet)> = tap.pkts.iter().collect();
    events.sort_by_key(|(t, _, _)| *t);
    for (_, _, p) in events {
        match p.kind {
            PacketKind::Data { .. } if p.dir == Dir::ClientToServer => {
                sent += 1;
                max_outstanding = max_outstanding.max(sent - acked);
            }
            PacketKind::Ack if p.dir == Dir::ServerToClient => {
                // Cumulative ack: seq = total segments acknowledged.
                acked = acked.max(p.seq as i64);
            }
            _ => {}
        }
    }
    assert!(
        max_outstanding <= 4,
        "window violated: {max_outstanding} unacked data packets on the wire"
    );
}

#[test]
fn delayed_ack_ratio_is_one_per_two_segments() {
    let topo = two_cluster_topo();
    let mut sim = sim_with_collector(&topo);
    let a = topo.racks()[0].hosts[0];
    let b = topo.racks()[1].hosts[0];
    sim.watch_link(topo.host_downlink(a));
    let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
    // One long one-way transfer: 100 full segments (no boundary ACKs
    // except the last).
    sim.send_message(conn, SimTime::ZERO, 1460 * 100, 0, SimDuration::ZERO)
        .expect("send");
    sim.run_to_quiescence();
    let (_, tap) = sim.finish();
    let acks = tap
        .pkts
        .iter()
        .filter(|(_, _, p)| p.kind == PacketKind::Ack && p.dir == Dir::ServerToClient)
        .count();
    // 100 segments at 1 ACK per 2 → ≈50 (+1 for the boundary).
    assert!((48..=52).contains(&acks), "acks {acks}");
}

#[test]
fn dt_admission_caps_single_queue_at_alpha_fraction() {
    // With alpha = 1 a single hot egress queue can occupy at most half
    // the shared pool: backlog <= alpha * (capacity - occupancy)
    // implies backlog <= capacity / 2 when it is the only user.
    let topo = two_cluster_topo();
    let mut cfg = SimConfig::default();
    cfg.rsw_buffer = crate::config::BufferConfig {
        shared_bytes: 64 << 10,
        alpha: 1.0,
    };
    let mut sim = Simulator::new(Arc::clone(&topo), cfg, NullTap).expect("config");
    let dst = topo.racks()[0].hosts[0];
    let rsw = topo.racks()[0].rsw;
    sim.sample_buffers(
        SimDuration::from_micros(2),
        SimDuration::from_millis(100),
        vec![rsw],
    )
    .expect("sample");
    // Hammer one downlink from many senders.
    for r in 1..8 {
        for h in 0..4 {
            let src = topo.racks()[r].hosts[h];
            let c = sim
                .open_connection(SimTime::ZERO, src, dst, 80)
                .expect("open");
            sim.send_message(c, SimTime::from_micros(1), 500_000, 0, SimDuration::ZERO)
                .expect("send");
        }
    }
    sim.run_to_quiescence();
    let (out, _) = sim.finish();
    let max_occ = out
        .buffer_stats
        .iter()
        .map(|w| w.max)
        .max()
        .expect("windows");
    let cap = 64 << 10;
    assert!(
        max_occ <= cap / 2 + 1600,
        "DT should cap a single queue near half the pool: {max_occ} of {cap}"
    );
    assert!(
        max_occ > cap / 4,
        "the hot queue should reach the DT ceiling: {max_occ}"
    );
}

#[test]
fn latency_recording_measures_rpc_round_trips() {
    let topo = two_cluster_topo();
    let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
    sim.record_latencies(true);
    let a = topo.racks()[0].hosts[0];
    let b = topo.racks()[1].hosts[0];
    let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
    // One RPC with a 1-ms service time and one one-way message.
    sim.send_message(conn, SimTime::ZERO, 500, 1000, SimDuration::from_millis(1))
        .expect("send");
    sim.send_message(conn, SimTime::from_millis(5), 500, 0, SimDuration::ZERO)
        .expect("send");
    sim.run_to_quiescence();
    let (out, _) = sim.finish();
    assert_eq!(out.rpc_latencies.len(), 2);
    // The RPC includes the service time; the one-way does not.
    let max = out.rpc_latencies.iter().max().expect("non-empty");
    let min = out.rpc_latencies.iter().min().expect("non-empty");
    assert!(*max >= SimDuration::from_millis(1), "rpc latency {max}");
    assert!(*min < SimDuration::from_millis(1), "one-way latency {min}");
}

#[test]
fn latency_recording_off_by_default() {
    let topo = two_cluster_topo();
    let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
    let a = topo.racks()[0].hosts[0];
    let b = topo.racks()[1].hosts[0];
    let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
    sim.send_message(conn, SimTime::ZERO, 500, 1000, SimDuration::ZERO)
        .expect("send");
    sim.run_to_quiescence();
    let (out, _) = sim.finish();
    assert!(out.rpc_latencies.is_empty());
}

#[test]
fn connection_slots_are_recycled_after_quarantine() {
    let topo = two_cluster_topo();
    let mut sim = sim_with_collector(&topo);
    let a = topo.racks()[0].hosts[0];
    let b = topo.racks()[1].hosts[0];
    let quarantine = sim.config().conn_quarantine;

    let c1 = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
    sim.send_message(c1, SimTime::ZERO, 100, 100, SimDuration::ZERO)
        .expect("send");
    sim.close_connection(c1, SimTime::from_millis(5))
        .expect("close");
    sim.run_until(SimTime::from_millis(5) + quarantine + SimDuration::from_millis(1));

    // The freed slot is reused with a bumped generation.
    let c2 = sim.open_connection(sim.now(), a, b, 80).expect("open");
    assert_eq!(c2.idx, c1.idx);
    assert_eq!(c2.gen, c1.gen + 1);

    // The stale handle is rejected, the fresh one works.
    assert_eq!(
        sim.send_message(c1, sim.now(), 1, 0, SimDuration::ZERO)
            .unwrap_err(),
        SimError::NoSuchConn(c1)
    );
    sim.send_message(c2, sim.now(), 100, 100, SimDuration::ZERO)
        .expect("send on reused");
    sim.run_until(sim.now() + SimDuration::from_millis(50));
    let (out, _) = sim.finish();
    assert_eq!(out.completed_requests, 2);
}

#[test]
fn many_ephemeral_connections_bound_the_table() {
    let topo = two_cluster_topo();
    let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
    let a = topo.racks()[0].hosts[0];
    let b = topo.racks()[1].hosts[0];
    // Open/close 2000 short connections, one every 500 µs; with a
    // 200-ms quarantine the live set stays in the hundreds.
    let mut t = SimTime::ZERO;
    for _ in 0..2000 {
        let c = sim.open_connection(t, a, b, 80).expect("open");
        sim.send_message(c, t, 200, 200, SimDuration::ZERO)
            .expect("send");
        sim.close_connection(c, t + SimDuration::from_millis(2))
            .expect("close");
        t += SimDuration::from_micros(500);
        sim.run_until(t);
    }
    sim.run_to_quiescence();
    assert!(
        sim.coord.slots.len() < 1000,
        "slot reuse should bound the table: {}",
        sim.coord.slots.len()
    );
    let (out, _) = sim.finish();
    assert_eq!(out.completed_requests, 2000);
}

#[test]
fn dead_post_mid_transfer_reroutes_and_completes() {
    let topo = two_cluster_topo();
    let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
    let a = topo.racks()[0].hosts[0];
    let b = topo.racks()[1].hosts[0];
    // The first connection from `a` uses client port 32768; recover the
    // CSW post its ECMP hash pins so the fault provably hits this flow.
    let key = FlowKey {
        client: a,
        server: b,
        client_port: 32768,
        server_port: 80,
    };
    let path = topo.route(a, b, key.ecmp_hash()).expect("route");
    let post = match topo.links()[path[1].index()].to {
        sonet_topology::Node::Switch(s) => s,
        sonet_topology::Node::Host(_) => unreachable!("hop 1 ends at the CSW"),
    };

    let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
    sim.send_message(conn, SimTime::ZERO, 5_000_000, 0, SimDuration::ZERO)
        .expect("send");
    sim.inject_fault(SimTime::from_millis(1), FaultKind::SwitchDown(post))
        .expect("fault");
    sim.run_to_quiescence();
    let (out, _) = sim.finish();
    assert_eq!(out.faults_applied, 1);
    // Each endpoint re-pins its own sending route; at least the client
    // (whose data dies on the dead post) must re-hash onto a survivor.
    assert!(
        (1..=2).contains(&out.reroutes),
        "the flow must re-hash onto a surviving post: {}",
        out.reroutes
    );
    assert_eq!(out.reroute_failures, 0);
    let fault_drops: u64 = out.link_counters.iter().map(|c| c.fault_drop_packets).sum();
    assert!(
        fault_drops > 0,
        "in-flight packets on the dead post must be counted"
    );
    // Retransmission over the new path still completes the transfer.
    assert_eq!(out.completed_requests, 1);
    assert_eq!(out.aborted_connections, 0);
}

#[test]
fn unreachable_server_fails_handshake_instead_of_wedging() {
    let topo = two_cluster_topo();
    let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
    let a = topo.racks()[0].hosts[0];
    let b = topo.racks()[1].hosts[0];
    let dst_rsw = topo.racks()[1].rsw;
    // The destination's ToR dies before the SYN goes out: there is no
    // redundant path to a rack, so the handshake must give up.
    sim.inject_fault(SimTime::ZERO, FaultKind::SwitchDown(dst_rsw))
        .expect("fault");
    let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
    sim.send_message(conn, SimTime::ZERO, 1000, 0, SimDuration::ZERO)
        .expect("send");
    // Quiescence is the point: SYN retries are capped, so this returns.
    sim.run_to_quiescence();
    let (out, _) = sim.finish();
    assert_eq!(out.failed_handshakes, 1);
    assert_eq!(out.completed_requests, 0);
    let fault_drops: u64 = out.link_counters.iter().map(|c| c.fault_drop_packets).sum();
    assert_eq!(
        fault_drops,
        SimConfig::default().syn_max_attempts as u64,
        "every SYN dies on the dead RSW and is counted"
    );
}

#[test]
fn severed_route_aborts_connection_via_rto_cap() {
    let topo = two_cluster_topo();
    let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
    let a = topo.racks()[0].hosts[0];
    let b = topo.racks()[1].hosts[0];
    let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
    sim.send_message(conn, SimTime::ZERO, 50_000_000, 0, SimDuration::ZERO)
        .expect("send");
    // Mid-transfer the destination ToR dies and never recovers.
    sim.inject_fault(
        SimTime::from_millis(2),
        FaultKind::SwitchDown(topo.racks()[1].rsw),
    )
    .expect("fault");
    sim.run_to_quiescence();
    let (out, _) = sim.finish();
    assert!(
        out.reroute_failures >= 1,
        "no healthy alternative to a rack"
    );
    assert_eq!(out.reroutes, 0);
    assert_eq!(out.aborted_connections, 1);
    assert_eq!(out.completed_requests, 0, "the transfer cannot finish");
}

#[test]
fn degraded_link_stretches_serialization() {
    let topo = two_cluster_topo();
    let a = topo.racks()[0].hosts[0];
    let b = topo.racks()[1].hosts[0];
    let run = |factor: Option<f64>| {
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
        if let Some(rate_factor) = factor {
            sim.inject_fault(
                SimTime::ZERO,
                FaultKind::DegradeLink {
                    link: topo.host_uplink(a),
                    rate_factor,
                },
            )
            .expect("fault");
        }
        let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        sim.send_message(conn, SimTime::ZERO, 10_000_000, 0, SimDuration::ZERO)
            .expect("send");
        sim.run_to_quiescence();
        let (out, _) = sim.finish();
        assert_eq!(out.completed_requests, 1);
        out.ended_at
    };
    let nominal = run(None);
    let degraded = run(Some(0.25));
    assert!(
        degraded > nominal,
        "quarter-rate uplink must finish later: {degraded} vs {nominal}"
    );
}

#[test]
fn link_recovery_restores_traffic() {
    let topo = two_cluster_topo();
    let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
    let a = topo.racks()[0].hosts[0];
    let b = topo.racks()[1].hosts[0];
    let dst_rsw = topo.racks()[1].rsw;
    // ToR down at 1 ms, back at 40 ms — inside the SYN retry budget.
    sim.inject_fault(SimTime::from_millis(1), FaultKind::SwitchDown(dst_rsw))
        .expect("fault");
    sim.inject_fault(SimTime::from_millis(40), FaultKind::SwitchUp(dst_rsw))
        .expect("fault");
    let conn = sim
        .open_connection(SimTime::from_millis(2), a, b, 80)
        .expect("open");
    sim.send_message(conn, SimTime::from_millis(2), 10_000, 0, SimDuration::ZERO)
        .expect("send");
    sim.run_to_quiescence();
    let (out, _) = sim.finish();
    assert_eq!(
        out.completed_requests, 1,
        "transfer completes after recovery"
    );
    assert_eq!(out.failed_handshakes, 0);
    assert_eq!(out.aborted_connections, 0);
}

#[test]
fn fault_injection_validates_arguments() {
    let topo = two_cluster_topo();
    let mut sim = Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
    assert!(matches!(
        sim.inject_fault(SimTime::ZERO, FaultKind::LinkDown(LinkId(99_999))),
        Err(SimError::Config(_))
    ));
    assert!(matches!(
        sim.inject_fault(SimTime::ZERO, FaultKind::SwitchDown(SwitchId(99_999))),
        Err(SimError::Config(_))
    ));
    assert!(matches!(
        sim.inject_fault(
            SimTime::ZERO,
            FaultKind::DegradeLink {
                link: LinkId(0),
                rate_factor: 0.0
            }
        ),
        Err(SimError::Config(_))
    ));
    assert!(matches!(
        sim.inject_fault(SimTime::ZERO, FaultKind::MirrorLoss { fraction: 0.5 }),
        Err(SimError::Config(_))
    ));
    sim.run_until(SimTime::from_secs(1));
    assert!(matches!(
        sim.inject_fault(SimTime::ZERO, FaultKind::LinkDown(LinkId(0))),
        Err(SimError::TimeInPast { .. })
    ));
}

#[test]
fn faulted_runs_are_deterministic() {
    let topo = two_cluster_topo();
    let plan = FaultPlan::new()
        .at(
            SimTime::from_millis(1),
            FaultKind::SwitchDown(topo.racks()[0].rsw),
        )
        .at(
            SimTime::from_millis(3),
            FaultKind::SwitchUp(topo.racks()[0].rsw),
        )
        .at(
            SimTime::from_millis(2),
            FaultKind::DegradeLink {
                link: LinkId(0),
                rate_factor: 0.5,
            },
        );
    let run = || {
        let mut sim = sim_with_collector(&topo);
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[2].hosts[1];
        sim.watch_link(topo.host_uplink(a));
        sim.inject_faults(&plan).expect("plan");
        let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        for i in 0..50 {
            sim.send_message(
                conn,
                SimTime::from_micros(i * 37),
                700 + i * 13,
                300,
                SimDuration::from_micros(20),
            )
            .expect("send");
        }
        sim.run_to_quiescence();
        let (out, tap) = sim.finish();
        let fault_drops: u64 = out.link_counters.iter().map(|c| c.fault_drop_packets).sum();
        (
            out.delivered_packets,
            out.completed_requests,
            out.faults_applied,
            out.reroutes,
            fault_drops,
            tap.pkts.len(),
            tap.pkts.last().map(|(t, _, _)| *t),
        )
    };
    let first = run();
    assert_eq!(first, run());
    assert_eq!(first.2, 3, "all plan events applied");
}

#[test]
fn deterministic_across_runs() {
    let topo = two_cluster_topo();
    let run = || {
        let mut sim = sim_with_collector(&topo);
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[2].hosts[1];
        sim.watch_link(topo.host_uplink(a));
        let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        for i in 0..50 {
            sim.send_message(
                conn,
                SimTime::from_micros(i * 37),
                700 + i * 13,
                300,
                SimDuration::from_micros(20),
            )
            .expect("send");
        }
        sim.run_until(SimTime::from_millis(200));
        let (out, tap) = sim.finish();
        (
            out.delivered_packets,
            tap.pkts.len(),
            tap.pkts.last().map(|(t, _, _)| *t),
        )
    };
    assert_eq!(run(), run());
}

fn two_dc_topo() -> Arc<Topology> {
    let spec = TopologySpec {
        sites: vec![
            sonet_topology::SiteSpec {
                datacenters: vec![sonet_topology::DatacenterSpec {
                    clusters: vec![ClusterSpec::frontend(4, 2)],
                }],
            },
            sonet_topology::SiteSpec {
                datacenters: vec![sonet_topology::DatacenterSpec {
                    clusters: vec![ClusterSpec::cache(2, 2)],
                }],
            },
        ],
        ..TopologySpec::default()
    };
    Arc::new(Topology::build(spec).expect("valid"))
}

#[test]
fn inter_datacenter_rtt_reflects_backbone_propagation() {
    // Build a two-DC plant and check a cross-DC response takes > 2 ms
    // (two backbone traversals at 1 ms each, there and back).
    let topo = two_dc_topo();
    let mut sim = sim_with_collector(&topo);
    let web = topo.hosts_with_role(sonet_topology::HostRole::Web)[0];
    let leader = topo.hosts_with_role(sonet_topology::HostRole::CacheLeader)[0];
    sim.watch_link(topo.host_downlink(web));
    let conn = sim
        .open_connection(SimTime::ZERO, web, leader, 11211)
        .expect("open");
    sim.send_message(conn, SimTime::ZERO, 100, 100, SimDuration::ZERO)
        .expect("send");
    sim.run_until(SimTime::from_millis(100));
    let (_, tap) = sim.finish();
    let resp_at = tap
        .pkts
        .iter()
        .find(|(_, _, p)| p.kind.is_data() && p.dir == Dir::ServerToClient)
        .map(|(t, _, _)| *t)
        .expect("response observed");
    // SYN + SYN-ACK + request + response = 4 one-way backbone crossings.
    assert!(resp_at >= SimTime::from_millis(4), "resp at {resp_at}");
}

// -----------------------------------------------------------------
// Partitioned execution
// -----------------------------------------------------------------

#[test]
fn partition_count_follows_granularity() {
    // Cluster granularity (the default): one partition per cluster, plus
    // one per datacenter's hub tier, plus the backbone. Forced via the
    // override so a SONET_PARTITION=dc environment cannot skew the test.
    crate::engine::set_granularity_override(Some(crate::engine::Granularity::Cluster));
    let one_dc = two_cluster_topo();
    let sim = sim_with_collector(&one_dc);
    assert_eq!(sim.partitions(), 2 + 1 + 1);

    let two_dc = two_dc_topo();
    let sim = sim_with_collector(&two_dc);
    assert_eq!(sim.partitions(), 2 + 2 + 1);
    // Every region is its own partition, so the region→partition map is
    // the identity.
    assert_eq!(
        sim.shared.pmap.part_of_region,
        (0..sim.shared.pmap.n_regions).collect::<Vec<u32>>()
    );

    // Coarse (dc) granularity folds clusters into their datacenter —
    // the pre-cluster engine's decomposition.
    crate::engine::set_granularity_override(Some(crate::engine::Granularity::Dc));
    let sim_one = sim_with_collector(&one_dc);
    let sim_two = sim_with_collector(&two_dc);
    crate::engine::set_granularity_override(None);
    assert_eq!(sim_one.partitions(), 1);
    assert_eq!(sim_two.partitions(), 2);
}

/// Two-DC workload with faults and telemetry, run at a given width; the
/// full observable surface comes back for comparison.
fn cross_dc_run(width: usize) -> (String, Vec<(SimTime, LinkId, Packet)>) {
    let topo = two_dc_topo();
    let mut sim = sim_with_collector(&topo);
    sim.set_parallel_width(Some(width));
    sim.audit_every_barrier(true);
    sim.record_latencies(true);
    let webs = topo.hosts_with_role(sonet_topology::HostRole::Web);
    let caches = topo.hosts_with_role(sonet_topology::HostRole::CacheLeader);
    sim.watch_link(topo.host_uplink(webs[0]));
    sim.watch_link(topo.host_downlink(webs[0]));
    sim.sample_buffers(
        SimDuration::from_micros(100),
        SimDuration::from_millis(5),
        vec![topo.racks()[0].rsw],
    )
    .expect("sample");
    // Take down the cache-side ToR (the *other* datacenter's partition):
    // the watched web host keeps retransmitting across the barrier while
    // the fault and its recovery land on the far replica.
    let far_rsw = topo.racks().last().expect("racks").rsw;
    sim.inject_fault(SimTime::from_millis(3), FaultKind::SwitchDown(far_rsw))
        .expect("fault");
    sim.inject_fault(SimTime::from_millis(9), FaultKind::SwitchUp(far_rsw))
        .expect("fault");
    for (i, &w) in webs.iter().enumerate() {
        let c = sim
            .open_connection(
                SimTime::from_micros(i as u64 * 13),
                w,
                caches[i % caches.len()],
                11211,
            )
            .expect("open");
        // The message train straddles the fault window, so some
        // exchanges complete cleanly, some retransmit through the
        // outage, and some abort — all of it cross-partition.
        for m in 0..8u64 {
            sim.send_message(
                c,
                SimTime::from_micros(i as u64 * 13 + m * 750),
                300 + m * 211,
                1200,
                SimDuration::from_micros(40),
            )
            .expect("send");
        }
    }
    sim.run_until(SimTime::from_millis(6));
    sim.audit().expect("mid-run invariants");
    sim.run_to_quiescence();
    let (out, tap) = sim.finish();
    (serde_json::to_string(&out).expect("json"), tap.pkts)
}

#[test]
fn widths_produce_byte_identical_outputs() {
    let (out1, tap1) = cross_dc_run(1);
    let (out2, tap2) = cross_dc_run(2);
    let (out8, tap8) = cross_dc_run(8);
    assert_eq!(out1, out2, "width 2 diverged from width 1");
    assert_eq!(out1, out8, "width 8 diverged from width 1");
    assert_eq!(tap1, tap2, "width 2 tap stream diverged");
    assert_eq!(tap1, tap8, "width 8 tap stream diverged");
    assert!(
        tap1.len() > 20,
        "the workload must exercise the tap: {} packets",
        tap1.len()
    );
}

#[test]
fn parallel_stats_count_barriers_and_events() {
    let topo = two_dc_topo();
    let mut sim = sim_with_collector(&topo);
    sim.set_parallel_width(Some(2));
    let web = topo.hosts_with_role(sonet_topology::HostRole::Web)[0];
    let leader = topo.hosts_with_role(sonet_topology::HostRole::CacheLeader)[0];
    let c = sim
        .open_connection(SimTime::ZERO, web, leader, 11211)
        .expect("open");
    sim.send_message(
        c,
        SimTime::ZERO,
        10_000,
        2_000,
        SimDuration::from_micros(50),
    )
    .expect("send");
    sim.run_to_quiescence();
    let stats = sim.parallel_stats();
    assert!(stats.barriers > 0);
    assert_eq!(stats.events, sim.processed_events());
    assert!(stats.bottleneck_events > 0);
    assert!(stats.bottleneck_events <= stats.events);
}

// -----------------------------------------------------------------
// Checkpoint / restore / audit
// -----------------------------------------------------------------

/// Builds a busy simulator: several cross-rack connections with
/// staggered messages so the calendar holds a mix of every event kind.
fn busy_sim(topo: &Arc<Topology>) -> Simulator<NullTap> {
    let mut sim =
        Simulator::new(Arc::clone(topo), SimConfig::default(), NullTap).expect("valid config");
    sim.track_utilization(
        SimDuration::from_micros(500),
        &[LinkId(0), LinkId(1), LinkId(2), LinkId(3)],
    )
    .expect("track");
    for i in 0..6 {
        let a = topo.racks()[i % 3].hosts[i % 4];
        let b = topo.racks()[3].hosts[(i + 1) % 4];
        let conn = sim
            .open_connection(SimTime::from_micros(i as u64 * 50), a, b, 3306)
            .expect("open");
        for m in 0..3 {
            sim.send_message(
                conn,
                SimTime::from_micros(i as u64 * 50 + m * 200),
                400 + m * 100,
                5_000 + m * 2_000,
                SimDuration::from_micros(80),
            )
            .expect("send");
        }
    }
    sim
}

#[test]
fn checkpoint_resume_is_byte_identical() {
    let topo = two_cluster_topo();

    // Uninterrupted run.
    let mut straight = busy_sim(&topo);
    straight.run_to_quiescence();
    let (out_straight, _) = straight.finish();

    // Same run, checkpointed mid-flight (traffic still on the wire),
    // serialized through JSON, restored, then run to completion.
    let mut first = busy_sim(&topo);
    first.run_until(SimTime::from_micros(700));
    assert!(first.pending_events() > 0, "checkpoint must be mid-flight");
    let json = serde_json::to_string(&first.checkpoint()).expect("serialize");
    let ckpt: EngineCheckpoint = serde_json::from_str(&json).expect("parse");
    let mut resumed = Simulator::restore(Arc::clone(&topo), NullTap, ckpt).expect("restore");
    resumed.run_to_quiescence();
    let (out_resumed, _) = resumed.finish();

    assert_eq!(
        serde_json::to_string(&out_straight).expect("json"),
        serde_json::to_string(&out_resumed).expect("json"),
        "resumed outputs must be byte-identical to the uninterrupted run"
    );
}

#[test]
fn checkpoint_restore_preserves_counters_and_clock() {
    let topo = two_cluster_topo();
    let mut sim = busy_sim(&topo);
    sim.run_until(SimTime::from_micros(900));
    let ckpt = sim.checkpoint();
    assert_eq!(ckpt.taken_at(), SimTime::from_micros(900));
    let restored = Simulator::restore(Arc::clone(&topo), NullTap, ckpt).expect("restore");
    assert_eq!(restored.now(), sim.now());
    assert_eq!(restored.pending_events(), sim.pending_events());
    assert_eq!(restored.processed_events(), sim.processed_events());
}

#[test]
fn engine_checkpoint_serialization_is_stable() {
    // Regression guard for the version-4 region-keyed checkpoint: same
    // top-level field order on every run, `util_series` as link-sorted
    // `(LinkId, bins)` pairs covering every tracked link, and the
    // version tag leading the record.
    let topo = two_cluster_topo();
    let mut sim =
        Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("valid config");
    let a = topo.racks()[0].hosts[0];
    let b = topo.racks()[3].hosts[0];
    let mut tracked = vec![topo.host_uplink(a), topo.host_downlink(a)];
    tracked.sort();
    sim.track_utilization(SimDuration::from_micros(500), &tracked)
        .expect("track");
    let conn = sim
        .open_connection(SimTime::ZERO, a, b, 3306)
        .expect("open");
    sim.send_message(
        conn,
        SimTime::ZERO,
        400,
        5_000,
        SimDuration::from_micros(80),
    )
    .expect("send");
    sim.run_until(SimTime::from_micros(800));
    let ckpt = sim.checkpoint();
    let json = serde_json::to_string(&ckpt).expect("serialize");

    let expected_keys = [
        "version",
        "cfg",
        "now",
        "events",
        "next_seqs",
        "ext_seq",
        "conns_client",
        "conns_server",
        "free_conns",
        "next_port",
        "link_free_at",
        "link_backlog",
        "link_counters",
        "link_rate_factor",
        "link_gray",
        "link_gray_seq",
        "health",
        "watched",
        "util_tracked",
        "switch_occ",
        "util_interval",
        "util_series",
        "buf_sampler",
        "buffer_stats",
        "emitted_packets",
        "delivered_packets",
        "completed_requests",
        "messages_on_closed",
        "stale_packets",
        "faults_applied",
        "reroutes",
        "reroute_failures",
        "failed_handshakes",
        "aborted_connections",
        "gray_dropped_packets",
        "record_latencies",
        "latencies",
        "processed_events",
    ];
    let mut cursor = 0usize;
    for key in expected_keys {
        let needle = format!("\"{key}\":");
        let at = json[cursor..]
            .find(&needle)
            .unwrap_or_else(|| panic!("field {key} missing or out of order"));
        cursor += at + needle.len();
    }
    assert!(json.starts_with("{\"version\":4,"), "version must lead");

    // util_series value shape: exactly the tracked links, ascending.
    let listed: Vec<LinkId> = ckpt.util_series.iter().map(|(l, _)| *l).collect();
    assert_eq!(listed, tracked, "pairs must cover tracked links in order");
    assert!(
        ckpt.util_series.iter().any(|(_, bins)| !bins.is_empty()),
        "a busy tracked link must have recorded utilization bins"
    );

    // And the checkpoint round-trips into an engine whose own
    // checkpoint serializes to the same bytes.
    let parsed: EngineCheckpoint = serde_json::from_str(&json).expect("parse");
    let restored = Simulator::restore(Arc::clone(&topo), NullTap, parsed).expect("restore");
    assert_eq!(
        serde_json::to_string(&restored.checkpoint()).expect("json"),
        json,
        "restore → checkpoint must be the identity on the serialized form"
    );
}

#[test]
fn checkpoint_bytes_are_width_independent() {
    let topo = two_dc_topo();
    let take = |width: usize| {
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("valid config");
        sim.set_parallel_width(Some(width));
        let webs = topo.hosts_with_role(sonet_topology::HostRole::Web);
        let caches = topo.hosts_with_role(sonet_topology::HostRole::CacheLeader);
        for (i, &w) in webs.iter().enumerate() {
            let c = sim
                .open_connection(SimTime::ZERO, w, caches[i % caches.len()], 11211)
                .expect("open");
            sim.send_message(
                c,
                SimTime::ZERO,
                20_000,
                4_000,
                SimDuration::from_micros(30),
            )
            .expect("send");
        }
        sim.run_until(SimTime::from_millis(4));
        serde_json::to_string(&sim.checkpoint()).expect("json")
    };
    let w1 = take(1);
    assert_eq!(w1, take(2), "width 2 checkpoint bytes diverged");
    assert_eq!(w1, take(8), "width 8 checkpoint bytes diverged");
}

#[test]
fn checkpoint_restores_across_widths() {
    // Kill-at-barrier, resume at a different width: both continuations
    // must land on the uninterrupted run's bytes.
    let topo = two_dc_topo();
    let build = || {
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("valid config");
        let webs = topo.hosts_with_role(sonet_topology::HostRole::Web);
        let caches = topo.hosts_with_role(sonet_topology::HostRole::CacheLeader);
        for (i, &w) in webs.iter().enumerate() {
            let c = sim
                .open_connection(SimTime::ZERO, w, caches[i % caches.len()], 11211)
                .expect("open");
            sim.send_message(
                c,
                SimTime::ZERO,
                50_000,
                8_000,
                SimDuration::from_micros(60),
            )
            .expect("send");
        }
        sim
    };
    let mut straight = build();
    straight.set_parallel_width(Some(1));
    straight.run_to_quiescence();
    let (out_straight, _) = straight.finish();
    let golden = serde_json::to_string(&out_straight).expect("json");

    let mut first = build();
    first.set_parallel_width(Some(8));
    first.run_until(SimTime::from_millis(3));
    assert!(first.pending_events() > 0, "checkpoint must be mid-flight");
    let ckpt_json = serde_json::to_string(&first.checkpoint()).expect("serialize");

    for resume_width in [1usize, 2, 8] {
        let ckpt: EngineCheckpoint = serde_json::from_str(&ckpt_json).expect("parse");
        let mut resumed = Simulator::restore(Arc::clone(&topo), NullTap, ckpt).expect("restore");
        resumed.set_parallel_width(Some(resume_width));
        resumed.run_to_quiescence();
        let (out, _) = resumed.finish();
        assert_eq!(
            golden,
            serde_json::to_string(&out).expect("json"),
            "resume at width {resume_width} diverged"
        );
    }
}

#[test]
fn checkpoint_keeps_server_halves_in_lower_partitions() {
    // Reverse-direction connections: the client lives in the *second*
    // partition and the server in the *first*. The checkpoint's server
    // filter consults the client table, so client halves must be
    // collected across all partitions before any server half is judged
    // (regression: a single interleaved pass dropped server halves whose
    // partition preceded their client's, and the restored run then
    // counted their traffic as stale).
    let topo = two_dc_topo();
    let build = || {
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("valid config");
        let webs = topo.hosts_with_role(sonet_topology::HostRole::Web);
        let caches = topo.hosts_with_role(sonet_topology::HostRole::CacheLeader);
        for (i, &leader) in caches.iter().enumerate() {
            let c = sim
                .open_connection(SimTime::ZERO, leader, webs[i % webs.len()], 8080)
                .expect("open");
            for m in 0..4u64 {
                sim.send_message(
                    c,
                    SimTime::from_micros(m * 900),
                    5_000 + m * 97,
                    3_000,
                    SimDuration::from_micros(30),
                )
                .expect("send");
            }
        }
        sim
    };
    let mut straight = build();
    straight.run_to_quiescence();
    let (out_straight, _) = straight.finish();
    let golden = serde_json::to_string(&out_straight).expect("json");

    let mut mid = build();
    // Past the cross-DC handshake (>= 2 ms RTT), with exchanges still in
    // flight so the server halves hold live transfer state.
    mid.run_until(SimTime::from_millis(4));
    assert!(mid.pending_events() > 0, "checkpoint must be mid-flight");
    let ckpt = mid.checkpoint();
    assert!(
        ckpt.conns_server.iter().flatten().count() > 0,
        "snapshot must carry the partition-0 server halves"
    );
    let mut resumed = Simulator::restore(Arc::clone(&topo), NullTap, ckpt).expect("restore");
    resumed.run_to_quiescence();
    let (out, _) = resumed.finish();
    assert_eq!(
        golden,
        serde_json::to_string(&out).expect("json"),
        "resumed run diverged from the uninterrupted one"
    );
    assert_eq!(out.stale_packets, 0, "no traffic may go stale");
}

#[test]
fn restore_rejects_wrong_topology() {
    let topo = two_cluster_topo();
    let mut sim = busy_sim(&topo);
    sim.run_until(SimTime::from_micros(500));
    let ckpt = sim.checkpoint();
    let other = Arc::new(
        Topology::build(TopologySpec::single_dc(vec![ClusterSpec::frontend(4, 2)])).expect("valid"),
    );
    match Simulator::restore(other, NullTap, ckpt) {
        Err(SimError::Config(msg)) => assert!(msg.contains("checkpoint mismatch")),
        Err(other) => panic!("expected Config error, got {other:?}"),
        Ok(_) => panic!("expected Config error, got a restored simulator"),
    }
}

#[test]
fn restore_rejects_foreign_version() {
    let topo = two_cluster_topo();
    let mut sim = busy_sim(&topo);
    sim.run_until(SimTime::from_micros(500));
    let json = serde_json::to_string(&sim.checkpoint()).expect("serialize");
    let forged = json.replacen("{\"version\":4,", "{\"version\":3,", 1);
    assert_ne!(json, forged, "the version tag must be present to forge");
    let ckpt: EngineCheckpoint = serde_json::from_str(&forged).expect("parse");
    match Simulator::restore(Arc::clone(&topo), NullTap, ckpt) {
        Err(SimError::Config(msg)) => assert!(msg.contains("version"), "{msg}"),
        Err(other) => panic!("expected Config error, got {other:?}"),
        Ok(_) => panic!("expected Config error, got a restored simulator"),
    }
}

#[test]
fn audit_holds_throughout_a_run() {
    let topo = two_cluster_topo();
    let mut sim = busy_sim(&topo);
    for step in 1..=8u64 {
        sim.run_until(SimTime::from_micros(step * 300));
        sim.audit().expect("invariants must hold mid-run");
    }
    sim.run_to_quiescence();
    sim.audit().expect("invariants must hold at quiescence");
}

#[test]
fn audit_detects_conservation_break() {
    let topo = two_cluster_topo();
    let mut sim = busy_sim(&topo);
    sim.run_until(SimTime::from_millis(1));
    // Corrupt a counter behind the engine's back.
    sim.parts[0].counters.delivered_packets += 1;
    let report = sim.audit().expect_err("corruption must be detected");
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, AuditViolation::PacketConservation { .. })));
    let rendered = report.to_string();
    assert!(rendered.contains("packet conservation"), "{rendered}");
}

#[test]
fn audit_detects_link_over_delivery() {
    let topo = two_cluster_topo();
    let mut sim = busy_sim(&topo);
    sim.run_to_quiescence();
    // A link that claims traffic while its clock says it was never busy
    // violates the rate x elapsed bound. Keep packet conservation
    // intact by inflating only the byte counter on the owner's replica.
    let n_links = topo.links().len();
    let li = (0..n_links)
        .find(|&i| sim.link_counters(LinkId(i as u32)).tx_bytes > 0)
        .expect("some link carried traffic");
    let owner = sim.shared.pmap.part_of_link[li] as usize;
    sim.parts[owner].link_counters[li].tx_bytes += 10_000_000_000;
    let report = sim.audit().expect_err("over-delivery must be detected");
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, AuditViolation::LinkOverDelivery { .. })));
}

#[test]
fn run_until_step_size_is_unobservable() {
    // Splitting one horizon into many run calls must not change a byte:
    // the supervised runner steps the clock in checkpoint intervals while
    // plain captures run straight through, and both must agree.
    let topo = two_dc_topo();
    let build = || {
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("valid config");
        sim.record_latencies(true);
        let webs = topo.hosts_with_role(sonet_topology::HostRole::Web);
        let caches = topo.hosts_with_role(sonet_topology::HostRole::CacheLeader);
        for (i, &w) in webs.iter().enumerate() {
            let c = sim
                .open_connection(SimTime::ZERO, w, caches[i % caches.len()], 11211)
                .expect("open");
            for m in 0..6u64 {
                sim.send_message(
                    c,
                    SimTime::from_micros(i as u64 * 31 + m * 900),
                    400 + m * 173,
                    2_000,
                    SimDuration::from_micros(50),
                )
                .expect("send");
            }
            sim.close_connection(c, SimTime::from_millis(8))
                .expect("close");
        }
        sim
    };
    let mut straight = build();
    straight.run_until(SimTime::from_millis(12));
    let (a, _) = straight.finish();

    let mut stepped = build();
    let mut t = SimTime::ZERO;
    while t < SimTime::from_millis(12) {
        t += SimDuration::from_micros(370);
        stepped.run_until(t.min(SimTime::from_millis(12)));
    }
    let (b, _) = stepped.finish();
    assert_eq!(
        serde_json::to_string(&a).expect("json"),
        serde_json::to_string(&b).expect("json"),
        "step size leaked into outputs"
    );
}

#[test]
fn run_until_step_size_is_unobservable_under_aborts() {
    // Same contract with connections aborting mid-flight: peer-gone
    // notifications are pinned to the abort instant plus lookahead, not
    // to wherever the caller's run_until boundaries happen to fall.
    let topo = two_dc_topo();
    let build = || {
        // A tight RTO budget so the outage aborts transfers well inside
        // the horizon instead of after seconds of exponential backoff.
        let cfg = SimConfig {
            rto: SimDuration::from_millis(2),
            max_consecutive_rtos: 3,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(Arc::clone(&topo), cfg, NullTap).expect("valid config");
        let webs = topo.hosts_with_role(sonet_topology::HostRole::Web);
        let caches = topo.hosts_with_role(sonet_topology::HostRole::CacheLeader);
        // A long outage of the ToR over the first cache leader: transfers
        // pinned through it exhaust their RTO budget and abort across the
        // partition boundary.
        let far_rsw = topo
            .racks()
            .iter()
            .find(|r| r.hosts.contains(&caches[0]))
            .expect("leader rack")
            .rsw;
        sim.inject_fault(SimTime::from_millis(6), FaultKind::SwitchDown(far_rsw))
            .expect("fault");
        for (i, &w) in webs.iter().enumerate() {
            let c = sim
                .open_connection(SimTime::ZERO, w, caches[i % caches.len()], 11211)
                .expect("open");
            // Bulk transfers that are still streaming when the ToR dies
            // at 6 ms — the handshake (~2 ms cross-DC) has completed, so
            // the RTO cap aborts *established* connections.
            for m in 0..4u64 {
                sim.send_message(
                    c,
                    SimTime::from_micros(i as u64 * 47 + m * 1100),
                    40_000 + m * 211,
                    1_500,
                    SimDuration::from_micros(40),
                )
                .expect("send");
            }
        }
        sim
    };
    let horizon = SimTime::from_millis(400);
    let mut straight = build();
    straight.run_until(horizon);
    let (a, _) = straight.finish();
    assert!(a.aborted_connections > 0, "the outage must abort transfers");

    let mut stepped = build();
    let mut t = SimTime::ZERO;
    while t < horizon {
        t += SimDuration::from_micros(7_300);
        stepped.run_until(t.min(horizon));
    }
    let (b, _) = stepped.finish();
    assert_eq!(
        serde_json::to_string(&a).expect("json"),
        serde_json::to_string(&b).expect("json"),
        "step size leaked into outputs when aborts cross the barrier"
    );
}

#[test]
fn gray_link_drops_fraction_without_touching_routing() {
    let topo = two_cluster_topo();
    let a = topo.racks()[0].hosts[0];
    let b = topo.racks()[1].hosts[0];
    let uplink = topo.host_uplink(a);

    let run = |gray: f64| {
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("valid config");
        if gray > 0.0 {
            sim.inject_fault(
                SimTime::ZERO,
                FaultKind::GrayLink {
                    link: uplink,
                    drop_fraction: gray,
                },
            )
            .expect("inject");
        }
        let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        for i in 0..20 {
            sim.send_message(conn, SimTime::from_millis(i), 20_000, 0, SimDuration::ZERO)
                .expect("send");
        }
        sim.run_to_quiescence();
        sim.audit().expect("conservation holds under gray loss");
        let (outputs, _) = sim.finish();
        outputs
    };

    let healthy = run(0.0);
    assert_eq!(healthy.gray_dropped_packets, 0);

    let gray = run(0.3);
    assert!(gray.gray_dropped_packets > 0, "gray link ate packets");
    // Gray drops ride the fault-drop counters for conservation.
    let fault_drops: u64 = gray
        .link_counters
        .iter()
        .map(|c| c.fault_drop_packets)
        .sum();
    assert_eq!(fault_drops, gray.gray_dropped_packets);
    // The control plane never saw a fault: nothing rerouted.
    assert_eq!(gray.reroutes, 0);
    assert_eq!(gray.reroute_failures, 0);
    // Transports still completed everything via retransmission.
    assert_eq!(gray.completed_requests, healthy.completed_requests);

    // Deterministic: same plan, same drops.
    let again = run(0.3);
    assert_eq!(again.gray_dropped_packets, gray.gray_dropped_packets);
    assert_eq!(again.delivered_packets, gray.delivered_packets);
}

#[test]
fn flap_expands_into_down_up_train() {
    let topo = two_cluster_topo();
    let a = topo.racks()[0].hosts[0];
    let b = topo.racks()[1].hosts[0];
    let uplink = topo.host_uplink(a);
    let mut sim =
        Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("valid config");
    sim.inject_fault(
        SimTime::from_millis(1),
        FaultKind::FlapLink {
            link: uplink,
            half_period: SimDuration::from_millis(2),
            cycles: 3,
        },
    )
    .expect("inject");
    let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
    for i in 0..10 {
        sim.send_message(conn, SimTime::from_millis(i), 5_000, 0, SimDuration::ZERO)
            .expect("send");
    }
    sim.run_to_quiescence();
    sim.audit().expect("conservation holds under flaps");
    let (outputs, _) = sim.finish();
    // 3 cycles → 6 primitive down/up fault events applied.
    assert_eq!(outputs.faults_applied, 6);
    assert!(outputs.delivered_packets > 0);
    // After the final up the link works again; the health mask is clean.
}

#[test]
fn flap_validation_rejects_degenerate_trains() {
    let topo = two_cluster_topo();
    let mut sim =
        Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("valid config");
    let uplink = topo.host_uplink(topo.racks()[0].hosts[0]);
    assert!(sim
        .inject_fault(
            SimTime::ZERO,
            FaultKind::FlapLink {
                link: uplink,
                half_period: SimDuration::ZERO,
                cycles: 1,
            },
        )
        .is_err());
    assert!(sim
        .inject_fault(
            SimTime::ZERO,
            FaultKind::FlapLink {
                link: uplink,
                half_period: SimDuration::from_millis(1),
                cycles: 0,
            },
        )
        .is_err());
    assert!(sim
        .inject_fault(
            SimTime::ZERO,
            FaultKind::GrayLink {
                link: uplink,
                drop_fraction: -0.1,
            },
        )
        .is_err());
}
