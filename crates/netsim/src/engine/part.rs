//! Partition-local state and event handling for the conservative
//! parallel engine.
//!
//! The plant decomposes into topology-fixed **regions**: one per
//! cluster, one per datacenter's FC/DR hub tier, and one for the
//! backbone switch. Regions group into runtime **partitions** at the
//! granularity selected by [`Granularity`] — per-cluster by default
//! (every region its own partition, dozens of them), or per-datacenter
//! (`SONET_PARTITION=dc`: a DC's clusters and hub fold together, the
//! backbone rides with partition 0). Every piece of mutable simulation
//! state has exactly one owning partition:
//!
//! * link and switch state — owned by the partition of the link's
//!   *transmitting* node;
//! * a connection's client endpoint (send state of the forward direction,
//!   receive state of the reverse, message metadata, handshake state) —
//!   owned by the client host's partition;
//! * the server endpoint — owned by the server host's partition.
//!
//! The two endpoints of a connection never share memory: everything the
//! peer needs travels inside the packet ([`WirePacket`] carries the
//! route it was emitted on, plus request metadata / issue timestamps on
//! message-boundary segments). The only events that cross a partition
//! boundary are `Transmit` hops onto a link owned elsewhere, whose
//! propagation delay feeds the engine's conservative lookahead.
//!
//! Determinism: every event carries the key `(at, src, seq)` where `src`
//! is the **region** of the event's subject — not the partition, so the
//! key is identical at every granularity — or [`EXT_SRC`] for the
//! coordinator, and `seq` a per-region counter advanced only by the
//! region's owning partition. Each partition drains its calendar
//! strictly in key order, and the coordinator merges every
//! cross-partition product (boundary events, tap calls, latency samples,
//! buffer windows) in key order at each barrier — so nothing observable
//! depends on how many worker threads carried the partitions, or on how
//! regions were grouped into partitions.

use crate::config::SimConfig;
use crate::conn::{Conn, ConnPhase, DirState, MsgMeta};
use crate::faults::FaultKind;
use crate::packet::{ConnId, Dir, FlowKey, Packet, PacketKind};
use serde::{Deserialize, Serialize};
use sonet_topology::{LinkHealth, LinkId, Node, SwitchId, Topology};
use sonet_util::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use super::{BufferWindowStat, LinkCounters};

/// Source tag for events scheduled by the coordinator (API calls, fault
/// replicas, barrier-injected peer notifications). Sorts after every
/// partition-sourced event at the same instant.
pub(crate) const EXT_SRC: u32 = u32::MAX;

/// Longest route the topology can produce (inter-datacenter: host, RSW,
/// CSW, DR, backbone, DR, CSW, RSW, host = 8 hops).
pub(crate) const MAX_HOPS: usize = 8;

/// A packet's pinned path, copied into the packet at emission time so any
/// partition can forward it without touching the owning connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct Route {
    len: u8,
    hops: [LinkId; MAX_HOPS],
}

impl Route {
    pub(crate) fn from_slice(hops: &[LinkId]) -> Route {
        assert!(hops.len() <= MAX_HOPS, "route longer than MAX_HOPS");
        let mut arr = [LinkId(0); MAX_HOPS];
        arr[..hops.len()].copy_from_slice(hops);
        Route {
            len: hops.len() as u8,
            hops: arr,
        }
    }

    pub(crate) fn as_slice(&self) -> &[LinkId] {
        &self.hops[..self.len as usize]
    }

    pub(crate) fn len(&self) -> usize {
        self.len as usize
    }

    pub(crate) fn last(&self) -> LinkId {
        self.hops[self.len as usize - 1]
    }
}

/// A packet plus the per-flight context that used to live in the
/// connection table: its route, and the application metadata the far
/// endpoint needs when a message boundary arrives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct WirePacket {
    pub p: Packet,
    /// Path the packet was emitted on (reroutes only affect later
    /// emissions, as with real in-flight packets).
    pub route: Route,
    /// On the last client→server segment of a message: the request
    /// metadata the server needs to schedule service.
    pub meta: Option<MsgMeta>,
    /// On the last server→client segment of a response: when the request
    /// it answers was issued (for RPC latency recording).
    pub issued: Option<SimTime>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum Ev {
    /// Put `pkt` on hop `hop` of its route.
    Transmit { pkt: WirePacket, hop: u8 },
    /// `pkt` fully arrived at its destination host.
    Deliver { pkt: WirePacket },
    /// A packet finished serializing: release buffer/backlog accounting.
    Release { link: u32, bytes: u32 },
    /// Retransmission timer (fires at the sender of `dir`).
    Rto { conn: ConnId, dir: Dir },
    /// Server finished computing the response to message `msg`.
    Service {
        conn: ConnId,
        msg: u32,
        meta: MsgMeta,
    },
    /// Emit the SYN for a connection.
    OpenConn { conn: ConnId },
    /// Re-emit the SYN if the handshake has not completed yet.
    SynRetry { conn: ConnId },
    /// Application queues a message on a connection.
    SendMsg {
        conn: ConnId,
        req: u64,
        meta: MsgMeta,
    },
    /// Application closes a connection.
    Close { conn: ConnId },
    /// Release a closed connection's slot for reuse after quarantine.
    Retire { conn: ConnId },
    /// Barrier-injected notification that the peer endpoint aborted;
    /// `client` selects which endpoint this event is addressed to.
    PeerGone { conn: ConnId, client: bool },
    /// An injected fault takes effect. One calendar entry per partition
    /// replica, all sharing a single `(at, EXT_SRC, seq)` key so the
    /// canonical (checkpoint) calendar is partition-count-independent.
    Fault { kind: FaultKind },
    /// Periodic buffer occupancy sample for the sampler shard of
    /// `region` (processed by the region's owning partition).
    BufSample { region: u32 },
}

/// Canonical event key: `(at, src, seq)`.
pub(crate) type EvKey = (SimTime, u32, u64);

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Scheduled {
    pub at: SimTime,
    /// Partition that scheduled the event ([`EXT_SRC`] for the
    /// coordinator).
    pub src: u32,
    /// Per-source sequence number (schedule order within `src`).
    pub seq: u64,
    pub ev: Ev,
}

impl Scheduled {
    pub(crate) fn key(&self) -> EvKey {
        (self.at, self.src, self.seq)
    }
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// How regions group into runtime partitions. The grouping never
/// changes outputs — event keys are region-scoped — only how much
/// parallelism the plant decomposes into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// One partition per datacenter; a DC's clusters and hub tier fold
    /// together and the backbone rides with partition 0 (the pre-cluster
    /// engine's decomposition — coarse, but cheap on barriers).
    Dc,
    /// One partition per region: every cluster, every DC hub tier and
    /// the backbone run alone (the default — dozens of partitions whose
    /// intra-cluster traffic never crosses a boundary).
    Cluster,
}

/// Process-wide granularity override: 0 = unset (consult the
/// `SONET_PARTITION` env var, default cluster), 1 = dc, 2 = cluster.
static GRANULARITY_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide partition granularity override. `None` restores
/// the default resolution (`SONET_PARTITION=dc|cluster`, else cluster).
/// Takes effect for simulators built afterwards.
pub fn set_granularity_override(g: Option<Granularity>) {
    let v = match g {
        None => 0,
        Some(Granularity::Dc) => 1,
        Some(Granularity::Cluster) => 2,
    };
    GRANULARITY_OVERRIDE.store(v, Ordering::Relaxed);
}

fn resolve_granularity() -> Granularity {
    match GRANULARITY_OVERRIDE.load(Ordering::Relaxed) {
        1 => return Granularity::Dc,
        2 => return Granularity::Cluster,
        _ => {}
    }
    match std::env::var("SONET_PARTITION").ok().as_deref() {
        Some("dc") => Granularity::Dc,
        _ => Granularity::Cluster,
    }
}

/// Static decomposition of the plant: topology-fixed regions (clusters,
/// per-DC hub tiers, backbone) grouped into runtime partitions.
#[derive(Debug, Clone)]
pub(crate) struct PartitionMap {
    pub n_parts: u32,
    /// Region count — clusters + datacenters + 1 (backbone). Fixed by
    /// the topology, independent of the partition granularity; event
    /// sources and checkpoint sequence counters are region-indexed.
    pub n_regions: u32,
    pub part_of_host: Vec<u32>,
    pub part_of_switch: Vec<u32>,
    /// Partition of the link's *transmitting* node — the owner of the
    /// link's queue, counters and utilization bins.
    pub part_of_link: Vec<u32>,
    /// Region of each host (= its cluster).
    pub region_of_host: Vec<u32>,
    /// Region of each switch: its cluster; else its datacenter's hub
    /// region; else the backbone region.
    pub region_of_switch: Vec<u32>,
    /// Region of each link's transmitting node.
    pub region_of_link: Vec<u32>,
    /// Owning partition of each region.
    pub part_of_region: Vec<u32>,
    /// Per-partition minimum propagation delay (ns) over links this
    /// partition owns whose receiving node lives elsewhere — the
    /// earliest any chain of local events can reach another partition.
    /// `None` when the partition has no outbound boundary link.
    pub min_exit_ns: Vec<Option<u64>>,
}

impl PartitionMap {
    pub(crate) fn new(topo: &Topology) -> PartitionMap {
        Self::with_granularity(topo, resolve_granularity())
    }

    pub(crate) fn with_granularity(topo: &Topology, gran: Granularity) -> PartitionMap {
        let n_clusters = topo.clusters().len() as u32;
        let n_dcs = topo.datacenters().len() as u32;
        let backbone_region = n_clusters + n_dcs;
        let n_regions = backbone_region + 1;

        let region_of_host: Vec<u32> = topo
            .hosts()
            .iter()
            .map(|h| h.cluster.index() as u32)
            .collect();
        let region_of_switch: Vec<u32> = topo
            .switches()
            .iter()
            .map(|s| match (s.cluster, s.datacenter) {
                (Some(c), _) => c.index() as u32,
                (None, Some(d)) => n_clusters + d.index() as u32,
                (None, None) => backbone_region,
            })
            .collect();
        let region_of_node = |n: Node| match n {
            Node::Host(h) => region_of_host[h.index()],
            Node::Switch(s) => region_of_switch[s.index()],
        };
        let region_of_link: Vec<u32> = topo
            .links()
            .iter()
            .map(|l| region_of_node(l.from))
            .collect();

        // Region → partition: identity at cluster granularity; at dc
        // granularity a cluster maps to its datacenter, a hub region to
        // its datacenter, and the backbone folds into partition 0 —
        // exactly the pre-cluster engine's decomposition.
        let (n_parts, part_of_region) = match gran {
            Granularity::Cluster => (n_regions, (0..n_regions).collect::<Vec<u32>>()),
            Granularity::Dc => {
                let mut v = Vec::with_capacity(n_regions as usize);
                for c in topo.clusters() {
                    v.push(c.datacenter.index() as u32);
                }
                for d in 0..n_dcs {
                    v.push(d);
                }
                v.push(0);
                (n_dcs.max(1), v)
            }
        };

        let part_of_host: Vec<u32> = region_of_host
            .iter()
            .map(|&r| part_of_region[r as usize])
            .collect();
        let part_of_switch: Vec<u32> = region_of_switch
            .iter()
            .map(|&r| part_of_region[r as usize])
            .collect();
        let part_of_node = |n: Node| match n {
            Node::Host(h) => part_of_host[h.index()],
            Node::Switch(s) => part_of_switch[s.index()],
        };
        let mut part_of_link = Vec::with_capacity(topo.links().len());
        let mut min_exit_ns: Vec<Option<u64>> = vec![None; n_parts as usize];
        for link in topo.links() {
            let owner = part_of_node(link.from);
            part_of_link.push(owner);
            if part_of_node(link.to) != owner {
                let slot = &mut min_exit_ns[owner as usize];
                *slot = Some(match *slot {
                    Some(l) => l.min(link.propagation_ns),
                    None => link.propagation_ns,
                });
            }
        }
        PartitionMap {
            n_parts,
            n_regions,
            part_of_host,
            part_of_switch,
            part_of_link,
            region_of_host,
            region_of_switch,
            region_of_link,
            part_of_region,
            min_exit_ns,
        }
    }
}

/// Read-only context shared by every partition during a window: the
/// topology-derived tables and the quasi-static configuration that only
/// the coordinator mutates (and only between windows).
pub(crate) struct SharedCtx {
    pub topo: Arc<Topology>,
    pub cfg: SimConfig,
    pub pmap: PartitionMap,
    pub link_gbps: Vec<f64>,
    pub link_prop: Vec<u64>,
    pub link_from_switch: Vec<Option<u32>>,
    pub switch_cap: Vec<u64>,
    pub switch_alpha: Vec<f64>,
    pub watched: Vec<bool>,
    pub util_tracked: Vec<bool>,
    pub util_interval: Option<SimDuration>,
    pub record_latencies: bool,
}

/// Partition-local totals, summed by the coordinator for reporting.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Counters {
    pub emitted_packets: u64,
    pub delivered_packets: u64,
    pub completed_requests: u64,
    pub messages_on_closed: u64,
    pub stale_packets: u64,
    pub faults_applied: u64,
    pub reroutes: u64,
    pub reroute_failures: u64,
    pub failed_handshakes: u64,
    pub aborted_connections: u64,
    pub gray_dropped_packets: u64,
}

/// Per-region buffer occupancy sampler shard over the switches of one
/// region (held by the region's owning partition, so shard membership —
/// like everything region-scoped — is granularity-independent).
/// `orig[i]` is the switch's index in the full list the caller
/// registered, which keys the canonical merge order of the produced
/// windows.
#[derive(Debug, Clone, Default)]
pub(crate) struct PartSampler {
    /// Region whose switches this shard samples (keys the shard's
    /// `BufSample` event chain).
    pub region: u32,
    pub interval: SimDuration,
    pub window: SimDuration,
    pub switches: Vec<SwitchId>,
    pub orig: Vec<u32>,
    /// Shared-pool capacity of each sampled switch (for normalization).
    pub caps: Vec<u64>,
    pub window_start: SimTime,
    pub samples: Vec<Vec<u64>>,
}

/// A buffered tap call: the key of the event that produced it, plus the
/// exact arguments the serial engine would have passed.
#[derive(Debug, Clone)]
pub(crate) struct TapCall {
    pub key: EvKey,
    pub at: SimTime,
    pub link: LinkId,
    pub pkt: Packet,
}

/// One partition: a sequential discrete-event simulator over its owned
/// slice of the plant.
pub(crate) struct Partition {
    pub idx: u32,
    pub now: SimTime,
    /// Exclusive end of the current window (set by the coordinator).
    pub wend: SimTime,
    /// Key of the event currently being handled (tags buffered outputs).
    cur_key: EvKey,
    /// Region of the event currently being handled — the `src` every
    /// event scheduled by the handler is keyed with.
    cur_region: u32,
    pub events: BinaryHeap<Reverse<Scheduled>>,
    /// Per-region sequence counters (full region-count size; only the
    /// regions this partition owns ever advance). Region-scoped so event
    /// keys — and checkpoints — are identical at every granularity.
    pub next_seqs: Vec<u64>,
    /// Lower bounds on when pending work could first schedule into
    /// another partition: `(bound, event time)`, min-heap by bound. The
    /// coordinator reads the head to size the next window and lazily
    /// pops entries whose event time has passed.
    pub cross_bounds: BinaryHeap<Reverse<(SimTime, SimTime)>>,
    /// Client endpoints, dense by connection slot (None = this partition
    /// does not own the slot's client side).
    pub clients: Vec<Option<Conn>>,
    /// Server endpoints, dense by connection slot.
    pub servers: Vec<Option<Conn>>,
    // Link/switch state: full-size dense vectors; only owned indices are
    // ever touched, so non-owned entries stay at their defaults.
    pub link_free_at: Vec<SimTime>,
    pub link_backlog: Vec<u64>,
    pub link_counters: Vec<LinkCounters>,
    pub link_rate_factor: Vec<f64>,
    /// Gray-failure drop fraction per link (0.0 = healthy). Unlike the
    /// health mask this is invisible to routing — that is the point.
    pub link_gray: Vec<f64>,
    /// Per-link count of packets offered to a gray link so far: the
    /// deterministic sequence number feeding the drop decision. Only the
    /// link's owner advances it, so it is width-independent.
    pub link_gray_seq: Vec<u64>,
    /// Replica of the fault-health state. Every partition processes the
    /// same fault schedule in the same key order, so replicas agree at
    /// every barrier.
    pub health: LinkHealth,
    pub switch_occ: Vec<u64>,
    pub util_series: Vec<Vec<u64>>,
    /// Sampler shards for the regions this partition owns, ordered by
    /// region.
    pub buf_samplers: Vec<PartSampler>,
    // Per-window products, drained by the coordinator at each barrier.
    /// Cross-partition events, indexed by target partition.
    pub outbox: Vec<Vec<Scheduled>>,
    pub tap_buf: Vec<TapCall>,
    pub lat_buf: Vec<(EvKey, SimDuration)>,
    /// Completed buffer windows: (window start, original switch index,
    /// stat).
    pub window_stats: Vec<(SimTime, u32, BufferWindowStat)>,
    /// Endpoints that aborted this window: (event key, conn, true when
    /// the *client* endpoint aborted).
    pub aborted_buf: Vec<(EvKey, ConnId, bool)>,
    /// Connection slots retired this window, with the retiring event's
    /// key — the granularity-independent order `free_conns` grows in.
    pub retired_buf: Vec<(EvKey, u32)>,
    pub counters: Counters,
    /// Non-housekeeping events in this partition's heap + outboxes.
    pub real_events: u64,
    pub processed_events: u64,
    /// Events handled in the current window (for load accounting — fault
    /// replicas and everything else count here).
    pub window_events: u64,
    /// The `processed_events` contribution of the current window: like
    /// `window_events` but counting fault replicas only once (on
    /// partition 0), so the total is partition-count-independent.
    pub window_counted: u64,
    /// Timestamp of the last handled event (quiescence clock).
    pub last_at: SimTime,
}

impl Partition {
    pub(crate) fn new(idx: u32, sh: &SharedCtx) -> Partition {
        let n_links = sh.topo.links().len();
        let n_switches = sh.topo.switches().len();
        Partition {
            idx,
            now: SimTime::ZERO,
            wend: SimTime::ZERO,
            cur_key: (SimTime::ZERO, 0, 0),
            cur_region: 0,
            events: BinaryHeap::new(),
            next_seqs: vec![0; sh.pmap.n_regions as usize],
            cross_bounds: BinaryHeap::new(),
            clients: Vec::new(),
            servers: Vec::new(),
            link_free_at: vec![SimTime::ZERO; n_links],
            link_backlog: vec![0; n_links],
            link_counters: vec![LinkCounters::default(); n_links],
            link_rate_factor: vec![1.0; n_links],
            link_gray: vec![0.0; n_links],
            link_gray_seq: vec![0; n_links],
            health: LinkHealth::new(&sh.topo),
            switch_occ: vec![0; n_switches],
            util_series: vec![Vec::new(); n_links],
            buf_samplers: Vec::new(),
            outbox: vec![Vec::new(); sh.pmap.n_parts as usize],
            tap_buf: Vec::new(),
            lat_buf: Vec::new(),
            window_stats: Vec::new(),
            aborted_buf: Vec::new(),
            retired_buf: Vec::new(),
            counters: Counters::default(),
            real_events: 0,
            processed_events: 0,
            window_events: 0,
            window_counted: 0,
            last_at: SimTime::ZERO,
        }
    }

    /// Pushes a coordinator-scheduled event (no ownership routing; the
    /// coordinator already picked this partition).
    pub(crate) fn push_ext(&mut self, sh: &SharedCtx, at: SimTime, seq: u64, ev: Ev) {
        if !matches!(ev, Ev::BufSample { .. }) {
            self.real_events += 1;
        }
        self.note_cross(sh, at, &ev);
        self.events.push(Reverse(Scheduled {
            at,
            src: EXT_SRC,
            seq,
            ev,
        }));
    }

    /// Coordinator-side scheduling under a *region* key: consumes the
    /// region's sequence counter, exactly as a handler running in that
    /// region would (used to seed per-region event chains like the
    /// buffer sampler's).
    pub(crate) fn push_region(&mut self, sh: &SharedCtx, region: u32, at: SimTime, ev: Ev) {
        debug_assert_eq!(sh.pmap.part_of_region[region as usize], self.idx);
        if !matches!(ev, Ev::BufSample { .. }) {
            self.real_events += 1;
        }
        let seq = self.next_seqs[region as usize];
        self.next_seqs[region as usize] += 1;
        self.note_cross(sh, at, &ev);
        self.events.push(Reverse(Scheduled {
            at,
            src: region,
            seq,
            ev,
        }));
    }

    /// Schedules a partition-local event, keyed by the region of the
    /// event currently being handled.
    fn schedule(&mut self, sh: &SharedCtx, at: SimTime, ev: Ev) {
        debug_assert!(at >= self.now, "scheduling into the past");
        if !matches!(ev, Ev::BufSample { .. }) {
            self.real_events += 1;
        }
        let src = self.cur_region;
        let seq = self.next_seqs[src as usize];
        self.next_seqs[src as usize] += 1;
        self.note_cross(sh, at, &ev);
        self.events.push(Reverse(Scheduled { at, src, seq, ev }));
    }

    /// Schedules an event into another partition's next window. The
    /// conservative protocol guarantees `at >= wend` for every such
    /// event, so the target merges it before opening the window that
    /// could process it.
    fn schedule_cross(&mut self, target: u32, at: SimTime, ev: Ev) {
        debug_assert!(at >= self.now);
        // real_events is credited to the *target* when the coordinator
        // merges the outbox at the barrier (which also classifies the
        // event against the target's cross-bound heap).
        let src = self.cur_region;
        let seq = self.next_seqs[src as usize];
        self.next_seqs[src as usize] += 1;
        self.outbox[target as usize].push(Scheduled { at, src, seq, ev });
    }

    /// Records the cross-partition lower bound of a freshly enqueued
    /// event, if handling it could ever reach another partition.
    pub(crate) fn note_cross(&mut self, sh: &SharedCtx, at: SimTime, ev: &Ev) {
        if let Some(bound) = self.cross_bound(sh, at, ev) {
            self.cross_bounds.push(Reverse((bound, at)));
        }
    }

    /// Lower bound on the earliest instant that handling `ev` at `at` —
    /// or any chain of strictly-local events it spawns — could schedule
    /// an event into another partition; `None` when no such chain
    /// exists. Soundness argument in DESIGN.md §10: every cross-schedule
    /// performed inside a window descends from some pre-window event,
    /// and this classification of that ancestor already bounds it.
    fn cross_bound(&self, sh: &SharedCtx, at: SimTime, ev: &Ev) -> Option<SimTime> {
        let pm = &sh.pmap;
        let min_exit = pm.min_exit_ns[self.idx as usize]?;
        let conn_bound =
            |straddles: bool| straddles.then(|| at + SimDuration::from_nanos(min_exit));
        let key_straddles = |key: &FlowKey| {
            pm.part_of_host[key.client.index()] != pm.part_of_host[key.server.index()]
        };
        match ev {
            Ev::Transmit { pkt, hop } => {
                // Walk the route while it stays on links we own,
                // accumulating propagation; the first hop whose next
                // location is foreign bounds the crossing exactly.
                let hops = pkt.route.as_slice();
                let mut acc = at;
                for k in *hop as usize..hops.len() {
                    let li = hops[k].index();
                    debug_assert_eq!(pm.part_of_link[li], self.idx, "classifying a foreign hop");
                    acc += SimDuration::from_nanos(sh.link_prop[li]);
                    let next_part = if k + 1 == hops.len() {
                        pm.part_of_host[pkt.p.wire_dst().index()]
                    } else {
                        pm.part_of_link[hops[k + 1].index()]
                    };
                    if next_part != self.idx {
                        return Some(acc);
                    }
                }
                // The packet terminates here; its delivery can still
                // spawn reverse traffic that leaves (ACKs and responses
                // of a partition-straddling connection).
                conn_bound(key_straddles(&pkt.p.key))
            }
            Ev::Deliver { pkt } => conn_bound(key_straddles(&pkt.p.key)),
            Ev::Rto { conn, dir } => {
                conn_bound(self.conn_straddles(sh, *conn, *dir == Dir::ClientToServer))
            }
            Ev::Service { conn, .. } => conn_bound(self.conn_straddles(sh, *conn, false)),
            Ev::OpenConn { conn }
            | Ev::SynRetry { conn }
            | Ev::SendMsg { conn, .. }
            | Ev::Close { conn } => conn_bound(self.conn_straddles(sh, *conn, true)),
            // Release/Retire mutate bookkeeping only; PeerGone tears a
            // half down (Retire stays local); Fault mutates replicas;
            // BufSample chains stay inside the region.
            Ev::Release { .. }
            | Ev::Retire { .. }
            | Ev::PeerGone { .. }
            | Ev::Fault { .. }
            | Ev::BufSample { .. } => None,
        }
    }

    /// Whether `conn`'s endpoints live in different partitions,
    /// consulted through the endpoint table given which half the event
    /// addresses. An absent or superseded half answers `true` — the
    /// handler will no-op, and a conservative bound is always sound.
    fn conn_straddles(&self, sh: &SharedCtx, conn: ConnId, client: bool) -> bool {
        let table = if client { &self.clients } else { &self.servers };
        match table.get(conn.index()).and_then(Option::as_ref) {
            Some(c) => {
                sh.pmap.part_of_host[c.key.client.index()]
                    != sh.pmap.part_of_host[c.key.server.index()]
            }
            None => true,
        }
    }

    /// Region of the event's subject: the host/link it touches, or the
    /// endpoint host it addresses — the `src` its handler schedules
    /// under. Fixed by the topology, never by the grouping.
    fn region_of_event(&self, sh: &SharedCtx, ev: &Ev) -> u32 {
        let pm = &sh.pmap;
        match ev {
            Ev::Transmit { pkt, hop } => {
                pm.region_of_link[pkt.route.as_slice()[*hop as usize].index()]
            }
            Ev::Deliver { pkt } => pm.region_of_host[pkt.p.wire_dst().index()],
            Ev::Release { link, .. } => pm.region_of_link[*link as usize],
            Ev::Rto { conn, dir } => self.conn_region(sh, *conn, *dir == Dir::ClientToServer),
            Ev::Service { conn, .. } => self.conn_region(sh, *conn, false),
            Ev::OpenConn { conn }
            | Ev::SynRetry { conn }
            | Ev::SendMsg { conn, .. }
            | Ev::Close { conn }
            | Ev::Retire { conn } => self.conn_region(sh, *conn, true),
            Ev::PeerGone { conn, client } => self.conn_region(sh, *conn, *client),
            // Fault handlers never schedule, so the region is unused;
            // BufSample chains carry their region explicitly.
            Ev::Fault { .. } => 0,
            Ev::BufSample { region } => *region,
        }
    }

    /// Region of the addressed endpoint's host. A dead or superseded
    /// endpoint returns region 0 — its handler no-ops and schedules
    /// nothing, so the value never reaches an event key.
    fn conn_region(&self, sh: &SharedCtx, conn: ConnId, client: bool) -> u32 {
        let table = if client { &self.clients } else { &self.servers };
        match table.get(conn.index()).and_then(Option::as_ref) {
            Some(c) => {
                let host = if client { c.key.client } else { c.key.server };
                sh.pmap.region_of_host[host.index()]
            }
            None => 0,
        }
    }

    /// Drains every event with `at < self.wend`, in key order.
    pub(crate) fn drain_window(&mut self, sh: &SharedCtx) {
        while let Some(Reverse(head)) = self.events.peek() {
            if head.at >= self.wend {
                break;
            }
            let Reverse(sched) = self.events.pop().expect("peeked");
            self.now = sched.at;
            self.last_at = sched.at;
            self.cur_key = sched.key();
            self.cur_region = self.region_of_event(sh, &sched.ev);
            if !matches!(sched.ev, Ev::BufSample { .. }) {
                self.real_events -= 1;
            }
            // Fault replicas are processed once per partition but exist
            // once in the canonical calendar: count them only on
            // partition 0 so `processed_events` is grouping-independent.
            if !matches!(sched.ev, Ev::Fault { .. }) || self.idx == 0 {
                self.processed_events += 1;
                self.window_counted += 1;
            }
            self.window_events += 1;
            self.handle(sh, sched.ev);
        }
        self.now = self.wend;
    }

    fn handle(&mut self, sh: &SharedCtx, ev: Ev) {
        match ev {
            Ev::Transmit { pkt, hop } => self.on_transmit(sh, pkt, hop),
            Ev::Deliver { pkt } => self.on_deliver(sh, pkt),
            Ev::Release { link, bytes } => {
                self.link_backlog[link as usize] -= bytes as u64;
                if let Some(sw) = sh.link_from_switch[link as usize] {
                    self.switch_occ[sw as usize] -= bytes as u64;
                }
            }
            Ev::Rto { conn, dir } => {
                if self.half_live(dir == Dir::ClientToServer, conn) {
                    self.on_rto(sh, conn, dir);
                }
            }
            Ev::Service { conn, msg, meta } => {
                if self.half_live(false, conn) {
                    self.on_service(sh, conn, msg, meta);
                }
            }
            Ev::OpenConn { conn } => {
                if self.half_live(true, conn) {
                    self.on_open(sh, conn);
                }
            }
            Ev::SynRetry { conn } => {
                if self.half_live(true, conn)
                    && self.clients[conn.index()].as_ref().expect("live").phase
                        == ConnPhase::Opening
                {
                    self.on_open(sh, conn);
                }
            }
            Ev::SendMsg { conn, req, meta } => {
                if self.half_live(true, conn) {
                    self.on_send_msg(sh, conn, req, meta);
                }
            }
            Ev::Close { conn } => {
                if self.half_live(true, conn) {
                    self.on_close(sh, conn);
                }
            }
            Ev::Retire { conn } => {
                if self.half_live(true, conn) {
                    self.retired_buf.push((self.cur_key, conn.idx));
                }
            }
            Ev::PeerGone { conn, client } => self.on_peer_gone(sh, conn, client),
            Ev::Fault { kind } => self.on_fault(kind),
            Ev::BufSample { region } => self.on_buf_sample(sh, region),
        }
    }

    /// True if this partition holds the given endpoint of `conn`'s
    /// current incarnation.
    fn half_live(&self, client: bool, conn: ConnId) -> bool {
        let table = if client { &self.clients } else { &self.servers };
        table
            .get(conn.index())
            .and_then(Option::as_ref)
            .is_some_and(|c| c.id == conn)
    }

    // ------------------------------------------------------------------
    // Network path
    // ------------------------------------------------------------------

    fn on_transmit(&mut self, sh: &SharedCtx, pkt: WirePacket, hop: u8) {
        let route = pkt.route;
        let link = route.as_slice()[hop as usize];
        let last_hop = hop as usize + 1 == route.len();
        let li = link.index();
        debug_assert_eq!(sh.pmap.part_of_link[li], self.idx, "foreign link transmit");
        let w = pkt.p.wire_bytes;

        // A dead link (or dead switch endpoint) eats the packet; the
        // transport's retransmission machinery — not the network — is
        // responsible for recovery, exactly as with a real outage.
        if !self.health.all_up() && !self.health.link_usable(&sh.topo, link) {
            self.link_counters[li].fault_drop_bytes += w as u64;
            self.link_counters[li].fault_drop_packets += 1;
            return;
        }

        // A gray link looks healthy to routing (ECMP keeps using it) but
        // silently eats a deterministic pseudo-random fraction of offered
        // packets. The per-link offer counter — not an RNG stream — feeds
        // the decision, so it is identical at every worker width.
        let gray = self.link_gray[li];
        if gray > 0.0 {
            let seq = self.link_gray_seq[li];
            self.link_gray_seq[li] = seq + 1;
            if gray_drop(li as u64, seq, gray) {
                self.link_counters[li].fault_drop_bytes += w as u64;
                self.link_counters[li].fault_drop_packets += 1;
                self.counters.gray_dropped_packets += 1;
                return;
            }
        }

        // Shared-buffer admission at switch egress.
        if let Some(sw) = sh.link_from_switch[li] {
            let swi = sw as usize;
            let free = sh.switch_cap[swi].saturating_sub(self.switch_occ[swi]);
            let dt_limit = (sh.switch_alpha[swi] * free as f64) as u64;
            if self.link_backlog[li] + w as u64 > dt_limit
                || self.switch_occ[swi] + w as u64 > sh.switch_cap[swi]
            {
                self.link_counters[li].drop_bytes += w as u64;
                self.link_counters[li].drop_packets += 1;
                return;
            }
            self.switch_occ[swi] += w as u64;
            self.link_backlog[li] += w as u64;
        } else {
            self.link_backlog[li] += w as u64;
        }

        let start = self.now.max(self.link_free_at[li]);
        let gbps = sh.link_gbps[li] * self.link_rate_factor[li];
        let end = start + SimDuration::for_bytes_at_gbps(w as u64, gbps);
        self.link_free_at[li] = end;
        self.link_counters[li].tx_bytes += w as u64;
        self.link_counters[li].tx_packets += 1;
        self.schedule(
            sh,
            end,
            Ev::Release {
                link: li as u32,
                bytes: w,
            },
        );

        if sh.watched[li] {
            self.tap_buf.push(TapCall {
                key: self.cur_key,
                at: end,
                link,
                pkt: pkt.p,
            });
        }
        if sh.util_tracked[li] {
            let interval = sh.util_interval.expect("tracked links imply interval");
            let idx = end.bin_index(interval) as usize;
            let series = &mut self.util_series[li];
            if series.len() <= idx {
                series.resize(idx + 1, 0);
            }
            series[idx] += w as u64;
        }

        let arrive = end + SimDuration::from_nanos(sh.link_prop[li]);
        let next = if last_hop {
            Ev::Deliver { pkt }
        } else {
            Ev::Transmit { pkt, hop: hop + 1 }
        };
        // The only event that can cross a partition boundary: the next
        // hop of an inter-datacenter route. Its delay from now is at
        // least this link's propagation, which is at least the lookahead.
        let target = if last_hop {
            sh.pmap.part_of_host[pkt.p.wire_dst().index()]
        } else {
            sh.pmap.part_of_link[route.as_slice()[hop as usize + 1].index()]
        };
        if target == self.idx {
            self.schedule(sh, arrive, next);
        } else {
            self.schedule_cross(target, arrive, next);
        }
    }

    fn on_deliver(&mut self, sh: &SharedCtx, pkt: WirePacket) {
        let p = pkt.p;
        let ci = p.conn.index();
        // The receiving endpoint: client→server packets land on the
        // server half, server→client packets on the client half.
        let to_server = p.dir == Dir::ClientToServer;
        let live = if matches!(p.kind, PacketKind::Syn) {
            // A SYN creates the server endpoint (below) unless a newer
            // incarnation already owns the slot.
            self.servers
                .get(ci)
                .and_then(Option::as_ref)
                .is_none_or(|c| c.id.gen <= p.conn.gen)
        } else {
            self.half_live(!to_server, p.conn)
        };
        if !live {
            self.counters.stale_packets += 1;
            return;
        }
        // The access link died while the packet was propagating on it:
        // the packet is lost with the link.
        if !self.health.all_up() {
            let last = pkt.route.last();
            if !self.health.link_usable(&sh.topo, last) {
                self.link_counters[last.index()].fault_drop_bytes += p.wire_bytes as u64;
                self.link_counters[last.index()].fault_drop_packets += 1;
                return;
            }
        }
        self.counters.delivered_packets += 1;
        match p.kind {
            PacketKind::Syn => {
                self.accept_syn(sh, &pkt);
            }
            PacketKind::SynAck => {
                let conn = self.clients[ci].as_mut().expect("live client");
                if conn.phase == ConnPhase::Opening {
                    conn.phase = ConnPhase::Open;
                    let queued = std::mem::take(&mut conn.pre_open);
                    for (req, meta) in queued {
                        self.queue_request(sh, p.conn, req, meta);
                    }
                }
            }
            PacketKind::Data { last_of_msg } => self.on_data(sh, pkt, last_of_msg),
            PacketKind::Ack | PacketKind::FinAck => self.on_ack(sh, p),
            PacketKind::Fin => {
                let conn = self.servers[ci].as_mut().expect("live server");
                conn.phase = ConnPhase::Closed;
                let received = conn.dir_mut(p.dir).received;
                self.emit(sh, p.conn, p.dir.flip(), PacketKind::FinAck, received, 0, 0);
            }
        }
    }

    /// Handles a delivered SYN: creates (or refreshes nothing on) the
    /// server endpoint and accepts immediately with a SYN-ACK, as the
    /// serial engine did. The reverse route is hashed against the health
    /// state at SYN arrival — the first moment the server partition
    /// knows the connection exists.
    fn accept_syn(&mut self, sh: &SharedCtx, pkt: &WirePacket) {
        let p = pkt.p;
        let ci = p.conn.index();
        let present = self.servers[ci].as_ref().is_some_and(|c| c.id == p.conn);
        if !present {
            let key = p.key;
            let hash = key.ecmp_hash();
            let route_rev = sh
                .topo
                .route_healthy(key.server, key.client, hash, &self.health)
                .or_else(|_| sh.topo.route(key.server, key.client, hash))
                .expect("a delivered SYN implies a connectable pair");
            self.servers[ci] = Some(Conn {
                id: p.conn,
                key,
                phase: ConnPhase::Open,
                route_fwd: Vec::new(),
                route_rev,
                c2s: DirState::default(),
                s2c: DirState::default(),
                msg_meta: Vec::new(),
                resp_req_issued: Vec::new(),
                pre_open: Vec::new(),
                next_server_msg: 0,
                syn_attempts: 0,
                opened_at: self.now,
            });
        }
        self.emit(sh, p.conn, Dir::ServerToClient, PacketKind::SynAck, 0, 0, 0);
    }

    fn on_data(&mut self, sh: &SharedCtx, pkt: WirePacket, last_of_msg: bool) {
        let p = pkt.p;
        let ci = p.conn.index();
        let to_server = p.dir == Dir::ClientToServer;
        let ack_every = sh.cfg.ack_every;
        let (send_ack, fresh_boundary, was_dup) = {
            let rs = self.half_mut(!to_server, ci).dir_mut(p.dir);
            if p.seq == rs.received {
                rs.received += 1;
                rs.unacked_by_us += 1;
                let boundary = last_of_msg;
                let fresh_boundary = boundary && rs.last_msg_completed.is_none_or(|m| p.msg > m);
                if fresh_boundary {
                    rs.last_msg_completed = Some(p.msg);
                }
                let ack_now = rs.unacked_by_us >= ack_every || boundary;
                if ack_now {
                    rs.unacked_by_us = 0;
                }
                (ack_now, fresh_boundary, false)
            } else {
                // Out-of-order duplicate (post-retransmission): re-ACK.
                (true, false, true)
            }
        };
        if send_ack {
            if was_dup {
                // A duplicate is also the receiver's only signal that its
                // own ACK path may be dead (the sender keeps
                // retransmitting because nothing comes back), so heal the
                // pinned route we answer on before spending the ACK.
                self.maybe_heal_route(sh, ci, !to_server);
            }
            let cum = self.half_mut(!to_server, ci).dir_mut(p.dir).received;
            self.emit(sh, p.conn, p.dir.flip(), PacketKind::Ack, cum, 0, 0);
        }
        if fresh_boundary && to_server {
            // A request fully arrived at the server.
            self.counters.completed_requests += 1;
            let meta = pkt.meta.expect("last client->server segment carries meta");
            if meta.response_bytes > 0 {
                self.schedule(
                    sh,
                    self.now + meta.service_time,
                    Ev::Service {
                        conn: p.conn,
                        msg: p.msg,
                        meta,
                    },
                );
            } else if sh.record_latencies {
                // One-way message: complete when the request lands.
                self.lat_buf
                    .push((self.cur_key, self.now.saturating_since(meta.issued_at)));
            }
        }
        if fresh_boundary && !to_server && sh.record_latencies {
            // The response fully arrived back at the client: RPC done.
            if let Some(issued) = pkt.issued {
                self.lat_buf
                    .push((self.cur_key, self.now.saturating_since(issued)));
            }
        }
    }

    fn on_ack(&mut self, sh: &SharedCtx, p: Packet) {
        let ci = p.conn.index();
        let data_dir = p.dir.flip();
        let sender_is_client = data_dir == Dir::ClientToServer;
        {
            let ds = self.half_mut(sender_is_client, ci).dir_mut(data_dir);
            if p.seq > ds.acked {
                let newly = p.seq - ds.acked;
                ds.acked = p.seq;
                ds.consecutive_rtos = 0;
                for _ in 0..newly {
                    ds.unacked.pop();
                }
            } else {
                return;
            }
        }
        self.pump(sh, p.conn, data_dir);
    }

    fn on_rto(&mut self, sh: &SharedCtx, conn: ConnId, dir: Dir) {
        let ci = conn.index();
        let is_client = dir == Dir::ClientToServer;
        let rto = sh.cfg.rto;
        #[derive(PartialEq)]
        enum Action {
            Idle,
            Rearm,
            Retransmit,
        }
        let action = {
            let ds = self.half_mut(is_client, ci).dir_mut(dir);
            ds.rto_armed = false;
            if ds.in_flight() == 0 {
                Action::Idle
            } else if ds.acked > ds.acked_at_arm {
                ds.rto_armed = true;
                ds.acked_at_arm = ds.acked;
                Action::Rearm
            } else {
                Action::Retransmit
            }
        };
        match action {
            Action::Idle => {}
            Action::Rearm => {
                let at = self.now + rto;
                self.schedule(sh, at, Ev::Rto { conn, dir });
            }
            Action::Retransmit => {
                // No progress since arming. If the pinned route broke,
                // first try to re-hash onto surviving equal-cost paths
                // (control-plane convergence, surfaced at transport
                // timescale); if no alternative exists, count the barren
                // retransmissions and eventually abort instead of
                // retrying into a dead link forever. On a healthy route,
                // retransmit indefinitely as plain go-back-N.
                if self.route_is_broken(sh, ci, is_client) && !self.try_reroute(sh, ci, is_client) {
                    let already_closed = self.half_mut(is_client, ci).phase == ConnPhase::Closed;
                    let ds = self.half_mut(is_client, ci).dir_mut(dir);
                    ds.consecutive_rtos += 1;
                    if ds.consecutive_rtos > sh.cfg.max_consecutive_rtos {
                        if !already_closed {
                            self.counters.aborted_connections += 1;
                        }
                        self.abort_half(sh, conn, is_client);
                        return;
                    }
                } else {
                    self.half_mut(is_client, ci).dir_mut(dir).consecutive_rtos = 0;
                }
                // Go-back-N: everything unacked returns to the head of
                // the pending queue and is re-sent under the window.
                let ds = self.half_mut(is_client, ci).dir_mut(dir);
                ds.sent = ds.acked;
                let unacked = std::mem::take(&mut ds.unacked);
                ds.pending.prepend(unacked);
                self.pump(sh, conn, dir);
            }
        }
    }

    fn on_service(&mut self, sh: &SharedCtx, conn: ConnId, _msg: u32, meta: MsgMeta) {
        let ci = conn.index();
        let resp_id = {
            let c = self.servers[ci].as_mut().expect("live server");
            let id = c.next_server_msg;
            c.next_server_msg += 1;
            debug_assert_eq!(c.resp_req_issued.len(), id as usize);
            c.resp_req_issued.push(meta.issued_at);
            id
        };
        self.servers[ci]
            .as_mut()
            .expect("live server")
            .s2c
            .pending
            .push_message(meta.response_bytes, sh.cfg.mss, resp_id);
        self.pump(sh, conn, Dir::ServerToClient);
    }

    fn on_open(&mut self, sh: &SharedCtx, conn: ConnId) {
        let ci = conn.index();
        let c = self.clients[ci].as_mut().expect("live client");
        c.syn_attempts += 1;
        let attempts = c.syn_attempts;
        if attempts > sh.cfg.syn_max_attempts {
            // The server is unreachable: give up instead of wedging the
            // workload behind an eternal handshake.
            self.counters.failed_handshakes += 1;
            self.abort_half(sh, conn, true);
            return;
        }
        // A fault may have broken the route picked at open time; re-hash
        // before burning another SYN on a dead link. If no healthy path
        // exists the SYN is sent anyway (and counted as a fault drop).
        if self.route_is_broken(sh, ci, true) {
            self.try_reroute(sh, ci, true);
        }
        self.emit(sh, conn, Dir::ClientToServer, PacketKind::Syn, 0, 0, 0);
        // Handshake loss recovery: retry until the SYN-ACK flips the
        // phase, backing off exponentially (capped) like a real
        // connect().
        let backoff = sh.cfg.rto * (1u64 << (attempts - 1).min(10));
        self.schedule(sh, self.now + backoff, Ev::SynRetry { conn });
    }

    /// Closes one endpoint abruptly (no FIN): queues are dropped, pending
    /// timers find nothing in flight. A peer in the *same region* learns
    /// of the abort at the abort instant — the serial engine's atomic
    /// whole-connection teardown, and a same-region peer shares this
    /// partition at every granularity so the choice is
    /// grouping-independent. A peer in another region is notified
    /// through the coordinator [`super::ABORT_NOTIFY_DELAY`] later (a
    /// RST surfacing after the fabric round-trip). The slot (client side
    /// only) retires after quarantine.
    fn abort_half(&mut self, sh: &SharedCtx, conn: ConnId, client: bool) {
        let ci = conn.index();
        let (was_closed, peer_host) = {
            let c = self.half_mut(client, ci);
            let was = c.phase == ConnPhase::Closed;
            c.phase = ConnPhase::Closed;
            c.pre_open.clear();
            c.c2s = DirState::default();
            c.s2c = DirState::default();
            let peer = if client { c.key.server } else { c.key.client };
            (was, peer)
        };
        if client && !was_closed {
            // A conn that closed normally already scheduled its Retire;
            // scheduling a second one would double-free the slot.
            let at = self.now + sh.cfg.conn_quarantine;
            self.schedule(sh, at, Ev::Retire { conn });
        }
        if sh.pmap.region_of_host[peer_host.index()] == self.cur_region {
            self.schedule(
                sh,
                self.now,
                Ev::PeerGone {
                    conn,
                    client: !client,
                },
            );
        } else {
            self.aborted_buf.push((self.cur_key, conn, client));
        }
    }

    /// The peer endpoint aborted: drop our half silently (not counted as
    /// an abort — the originator already counted it).
    fn on_peer_gone(&mut self, sh: &SharedCtx, conn: ConnId, client: bool) {
        if !self.half_live(client, conn) {
            return;
        }
        let ci = conn.index();
        let was_closed = {
            let c = self.half_mut(client, ci);
            let was = c.phase == ConnPhase::Closed;
            c.phase = ConnPhase::Closed;
            c.pre_open.clear();
            c.c2s = DirState::default();
            c.s2c = DirState::default();
            was
        };
        if client && !was_closed {
            let at = self.now + sh.cfg.conn_quarantine;
            self.schedule(sh, at, Ev::Retire { conn });
        }
    }

    /// True when this endpoint cannot make progress on its pinned path:
    /// a link of its own sending route is unusable, or no healthy path
    /// back from the peer exists at all (so even perfect sending could
    /// never be acknowledged).
    fn route_is_broken(&self, sh: &SharedCtx, ci: usize, client: bool) -> bool {
        if self.health.all_up() {
            return false;
        }
        let table = if client { &self.clients } else { &self.servers };
        let c = table[ci].as_ref().expect("live half");
        let own = if client { &c.route_fwd } else { &c.route_rev };
        if own.iter().any(|&l| !self.health.link_usable(&sh.topo, l)) {
            return true;
        }
        let (back_src, back_dst) = if client {
            (c.key.server, c.key.client)
        } else {
            (c.key.client, c.key.server)
        };
        sh.topo
            .route_healthy(back_src, back_dst, c.key.ecmp_hash(), &self.health)
            .is_err()
    }

    /// Re-hashes this endpoint's sending route onto surviving equal-cost
    /// paths, as switches re-balance ECMP groups when members die.
    /// Mirrors the serial engine's contract: the reroute only counts as
    /// successful when a healthy path exists in *both* directions —
    /// otherwise the endpoint keeps its dead route and the failure is
    /// counted, so the RTO cap can eventually abort it.
    fn try_reroute(&mut self, sh: &SharedCtx, ci: usize, client: bool) -> bool {
        let table = if client { &self.clients } else { &self.servers };
        let c = table[ci].as_ref().expect("live half");
        let key = c.key;
        let hash = key.ecmp_hash();
        let (own_len, own_src, own_dst, back_src, back_dst) = if client {
            (
                c.route_fwd.len(),
                key.client,
                key.server,
                key.server,
                key.client,
            )
        } else {
            (
                c.route_rev.len(),
                key.server,
                key.client,
                key.client,
                key.server,
            )
        };
        let own = sh.topo.route_healthy(own_src, own_dst, hash, &self.health);
        let back_ok = sh
            .topo
            .route_healthy(back_src, back_dst, hash, &self.health)
            .is_ok();
        match own {
            Ok(route) if back_ok => {
                // Same locality ⇒ same hop count, so in-flight packets'
                // hop indices stay valid on the replacement route.
                debug_assert_eq!(route.len(), own_len);
                let _ = own_len;
                let table = if client {
                    &mut self.clients
                } else {
                    &mut self.servers
                };
                let c = table[ci].as_mut().expect("live half");
                if client {
                    c.route_fwd = route;
                } else {
                    c.route_rev = route;
                }
                self.counters.reroutes += 1;
                true
            }
            _ => {
                self.counters.reroute_failures += 1;
                false
            }
        }
    }

    /// Duplicate-data heal: if our own pinned sending route broke, try
    /// to re-hash it (the dup means our ACKs are probably dying on it).
    fn maybe_heal_route(&mut self, sh: &SharedCtx, ci: usize, client: bool) {
        if self.health.all_up() {
            return;
        }
        let table = if client { &self.clients } else { &self.servers };
        let c = table[ci].as_ref().expect("live half");
        let own = if client { &c.route_fwd } else { &c.route_rev };
        if own.iter().any(|&l| !self.health.link_usable(&sh.topo, l)) {
            self.try_reroute(sh, ci, client);
        }
    }

    fn on_fault(&mut self, kind: FaultKind) {
        // Every partition applies the fault to its replica; only
        // partition 0 counts it, so the reported total matches the
        // number of injected events.
        if self.idx == 0 {
            self.counters.faults_applied += 1;
        }
        match kind {
            FaultKind::LinkDown(l) => self.health.set_link_up(l, false),
            FaultKind::LinkUp(l) => self.health.set_link_up(l, true),
            FaultKind::SwitchDown(s) => self.health.set_switch_up(s, false),
            FaultKind::SwitchUp(s) => self.health.set_switch_up(s, true),
            FaultKind::DegradeLink { link, rate_factor } => {
                self.link_rate_factor[link.index()] = rate_factor;
            }
            FaultKind::GrayLink {
                link,
                drop_fraction,
            } => {
                self.link_gray[link.index()] = drop_fraction;
            }
            // Flaps are expanded into LinkDown/LinkUp at injection time
            // and telemetry faults never reach the engine (inject_fault
            // rejects them); keep the match exhaustive without panicking.
            FaultKind::FlapLink { .. }
            | FaultKind::MirrorLoss { .. }
            | FaultKind::FbflowLoss { .. } => {}
        }
    }

    fn on_send_msg(&mut self, sh: &SharedCtx, conn: ConnId, req: u64, meta: MsgMeta) {
        let ci = conn.index();
        match self.clients[ci].as_ref().expect("live client").phase {
            ConnPhase::Closed => {
                self.counters.messages_on_closed += 1;
            }
            ConnPhase::Opening => {
                self.clients[ci]
                    .as_mut()
                    .expect("live client")
                    .pre_open
                    .push((req, meta));
            }
            ConnPhase::Open => {
                self.queue_request(sh, conn, req, meta);
            }
        }
    }

    fn queue_request(&mut self, sh: &SharedCtx, conn: ConnId, req: u64, meta: MsgMeta) {
        let mss = sh.cfg.mss;
        {
            let c = self.clients[conn.index()].as_mut().expect("live client");
            let msg_id = c.msg_meta.len() as u32;
            c.msg_meta.push(meta);
            c.c2s.pending.push_message(req, mss, msg_id);
        }
        self.pump(sh, conn, Dir::ClientToServer);
    }

    fn on_close(&mut self, sh: &SharedCtx, conn: ConnId) {
        let ci = conn.index();
        if self.clients[ci].as_ref().expect("live client").phase != ConnPhase::Closed {
            self.clients[ci].as_mut().expect("live client").phase = ConnPhase::Closed;
            self.emit(sh, conn, Dir::ClientToServer, PacketKind::Fin, 0, 0, 0);
            // Recycle the slot once in-flight stragglers cannot be
            // confused with a future occupant (generation tags guard
            // regardless).
            let at = self.now + sh.cfg.conn_quarantine;
            self.schedule(sh, at, Ev::Retire { conn });
        }
    }

    fn half_mut(&mut self, client: bool, ci: usize) -> &mut Conn {
        let table = if client {
            &mut self.clients
        } else {
            &mut self.servers
        };
        table[ci].as_mut().expect("live half")
    }

    /// Moves pending segments onto the wire while the window allows.
    fn pump(&mut self, sh: &SharedCtx, conn: ConnId, dir: Dir) {
        let is_client = dir == Dir::ClientToServer;
        let window = sh.cfg.window_segments as u64;
        let rto = sh.cfg.rto;
        loop {
            let (seg, seq) = {
                let ds = self.half_mut(is_client, conn.index()).dir_mut(dir);
                if ds.in_flight() >= window {
                    break;
                }
                let Some(seg) = ds.pending.pop() else { break };
                let seq = ds.sent;
                ds.sent += 1;
                ds.unacked.push_seg(seg);
                (seg, seq)
            };
            self.emit(
                sh,
                conn,
                dir,
                PacketKind::Data {
                    last_of_msg: seg.last_of_msg,
                },
                seq,
                seg.msg,
                seg.payload,
            );
        }
        // Arm the retransmission timer if data is outstanding.
        let now = self.now;
        let ds = self.half_mut(is_client, conn.index()).dir_mut(dir);
        if ds.in_flight() > 0 && !ds.rto_armed {
            ds.rto_armed = true;
            ds.acked_at_arm = ds.acked;
            self.schedule(sh, now + rto, Ev::Rto { conn, dir });
        }
    }

    /// Builds a packet and schedules its first hop now. The emitting
    /// endpoint is implied by `dir`: clients send client→server frames,
    /// servers send server→client frames (including ACKs for the
    /// opposite data direction).
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &mut self,
        sh: &SharedCtx,
        conn: ConnId,
        dir: Dir,
        kind: PacketKind,
        seq: u64,
        msg: u32,
        payload: u32,
    ) {
        let from_client = dir == Dir::ClientToServer;
        let ci = conn.index();
        let (key, route, meta, issued) = {
            let table = if from_client {
                &self.clients
            } else {
                &self.servers
            };
            let c = table[ci].as_ref().expect("live half");
            let route = if from_client {
                Route::from_slice(&c.route_fwd)
            } else {
                Route::from_slice(&c.route_rev)
            };
            let boundary = matches!(kind, PacketKind::Data { last_of_msg: true });
            let meta = if boundary && from_client {
                Some(c.msg_meta[msg as usize])
            } else {
                None
            };
            let issued = if boundary && !from_client {
                c.resp_req_issued.get(msg as usize).copied()
            } else {
                None
            };
            (c.key, route, meta, issued)
        };
        let wire = if payload > 0 {
            sh.cfg.data_wire_bytes(payload)
        } else {
            sh.cfg.control_bytes
        };
        let pkt = WirePacket {
            p: Packet {
                conn,
                key,
                dir,
                kind,
                seq,
                msg,
                payload,
                wire_bytes: wire,
            },
            route,
            meta,
            issued,
        };
        self.counters.emitted_packets += 1;
        debug_assert_eq!(
            sh.pmap.part_of_link[route.as_slice()[0].index()],
            self.idx,
            "first hop of an emitted packet is always local"
        );
        self.schedule(sh, self.now, Ev::Transmit { pkt, hop: 0 });
    }

    // ------------------------------------------------------------------
    // Buffer sampling
    // ------------------------------------------------------------------

    fn on_buf_sample(&mut self, sh: &SharedCtx, region: u32) {
        let Some(si) = self.buf_samplers.iter().position(|s| s.region == region) else {
            return;
        };
        // Close the shard's window first if we've crossed its boundary.
        if self.now >= self.buf_samplers[si].window_start + self.buf_samplers[si].window {
            self.flush_shard(si, false);
        }
        let shard = &mut self.buf_samplers[si];
        for (i, sw) in shard.switches.iter().enumerate() {
            shard.samples[i].push(self.switch_occ[sw.index()]);
        }
        let next = self.now + shard.interval;
        self.schedule(sh, next, Ev::BufSample { region });
    }

    /// Flushes every sampler shard's current window (end of run).
    pub(crate) fn flush_buffer_windows(&mut self) {
        for si in 0..self.buf_samplers.len() {
            self.flush_shard(si, true);
        }
    }

    fn flush_shard(&mut self, si: usize, final_flush: bool) {
        let mut sampler = std::mem::take(&mut self.buf_samplers[si]);
        let window_start = sampler.window_start;
        for (i, sw) in sampler.switches.iter().enumerate() {
            let samples = &mut sampler.samples[i];
            if samples.is_empty() {
                continue;
            }
            samples.sort_unstable();
            let n = samples.len();
            let median = samples[n / 2];
            let max = *samples.last().expect("non-empty");
            let mean = samples.iter().sum::<u64>() as f64 / n as f64;
            samples.clear();
            self.window_stats.push((
                window_start,
                sampler.orig[i],
                BufferWindowStat {
                    switch: *sw,
                    window_start,
                    median,
                    max,
                    mean,
                    samples: n as u32,
                    capacity: sampler.caps[i],
                },
            ));
        }
        if !final_flush {
            sampler.window_start += sampler.window;
            // If the clock jumped multiple windows, snap forward.
            while self.now >= sampler.window_start + sampler.window {
                sampler.window_start += sampler.window;
            }
        }
        self.buf_samplers[si] = sampler;
    }
}

/// The gray-failure drop decision for the `seq`-th packet offered to
/// `link` under drop fraction `fraction`. A splitmix64-style mix of
/// (link, seq) — pure data, no RNG stream, no shared state — so the
/// decision sequence is identical at every worker width and across
/// checkpoint/restore (the per-link counter is checkpointed).
pub(crate) fn gray_drop(link: u64, seq: u64, fraction: f64) -> bool {
    let mut z = link
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(seq)
        .wrapping_add(0x243f_6a88_85a3_08d3);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // 53 uniform mantissa bits → [0, 1); strict `<` keeps fraction 0.0
    // lossless and 1.0 total.
    ((z >> 11) as f64 / (1u64 << 53) as f64) < fraction
}
