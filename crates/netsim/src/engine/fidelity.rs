//! The flow-level fast path of the hybrid fidelity engine.
//!
//! DCT²Gen's observation (PAPERS.md) is that every analysis the paper
//! builds — locality mixes, flow-size/FCT distributions, heavy hitters —
//! is a *statistical shape*, preserved by flow-level generation from
//! packet-derived distributions. The hybrid engine exploits that: bulk
//! traffic is advanced analytically (per-link fair-share bandwidth plus a
//! queueing-delay term for FCT), while *fidelity islands* — flows that
//! touch a mirrored host's access link, a utilization-tracked link, a
//! buffer-sampled switch, a link or switch named by the fault plan, or a
//! heavy-hitter-sized transfer — continue through the per-cluster
//! partitioned packet DES unchanged. DESIGN.md §13 gives the model, the
//! demotion rules, and the shape-equivalence contract.
//!
//! Everything here runs on the coordinator thread between lookahead
//! windows, so flow-mode outputs are byte-identical at every worker
//! width and partition granularity by construction — the same property
//! the packet engine proves at its barriers.

use crate::faults::{FaultEvent, FaultKind};
use crate::packet::ConnId;
use serde::{Deserialize, Serialize};
use sonet_topology::LinkId;
use sonet_util::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which engine a run's flows go through.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub enum FidelityMode {
    /// Everything through the packet-level DES (the tier-1 default;
    /// byte-identical to the engine before the hybrid path existed).
    #[default]
    Packet,
    /// Bulk flows through the analytic fast path; fidelity islands stay
    /// packet-level.
    Hybrid,
}

// Hand-written so configs serialized before the hybrid engine existed
// still load: the vendored derive maps an absent field to `Null`, which
// decodes as the packet-mode default here.
impl serde::Deserialize for FidelityMode {
    fn from_content(c: &serde::Content) -> Result<Self, serde::DeError> {
        match c {
            serde::Content::Null => Ok(FidelityMode::Packet),
            // Accept both the CLI spelling ("hybrid") and the derived
            // Serialize's variant name ("Hybrid") — checkpoints carry
            // the latter.
            serde::Content::Str(s) => FidelityMode::parse(&s.to_ascii_lowercase())
                .ok_or_else(|| serde::DeError::msg(format!("unknown fidelity mode '{s}'"))),
            other => Err(serde::DeError::msg(format!(
                "expected a fidelity mode string, got {other:?}"
            ))),
        }
    }
}

impl FidelityMode {
    /// Parses a `--fidelity=` value.
    pub fn parse(s: &str) -> Option<FidelityMode> {
        match s {
            "packet" => Some(FidelityMode::Packet),
            "hybrid" => Some(FidelityMode::Hybrid),
            _ => None,
        }
    }

    /// CLI-facing name.
    pub fn name(&self) -> &'static str {
        match self {
            FidelityMode::Packet => "packet",
            FidelityMode::Hybrid => "hybrid",
        }
    }
}

/// Configuration of the hybrid engine's flow planner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FidelityConfig {
    /// Engine mode.
    pub mode: FidelityMode,
    /// Messages at or above this many application bytes (request +
    /// response) are heavy-hitter material: the flow is demoted to the
    /// packet path at send time so rank analyses see real packet streams.
    pub heavy_flow_bytes: u64,
}

impl Default for FidelityConfig {
    fn default() -> Self {
        FidelityConfig {
            mode: FidelityMode::Packet,
            // 8 MiB ≈ 6.7 ms of line rate at 10 Gbps: transfers this
            // large dominate any heavy-hitter aggregation window they
            // appear in.
            heavy_flow_bytes: 8 << 20,
        }
    }
}

impl FidelityConfig {
    /// A hybrid-mode configuration with default thresholds.
    pub fn hybrid() -> FidelityConfig {
        FidelityConfig {
            mode: FidelityMode::Hybrid,
            ..FidelityConfig::default()
        }
    }
}

/// What a scheduled fast-path event does when its time arrives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum FastKind {
    /// An accepted application send, deferred to its issue instant: the
    /// workload generates whole windows of future-stamped messages in
    /// arbitrary order, so the analytic transfer must not run until the
    /// calendar reaches the send time — otherwise the virtual link
    /// queues are charged out of time order and a message stamped early
    /// in a window queues behind one stamped late.
    Send {
        conn: ConnId,
        /// Request application bytes.
        req: u64,
        /// Response application bytes (0 for one-way messages).
        resp: u64,
        /// Server think time between request arrival and response.
        service: SimDuration,
    },
    /// The server's think time elapsed: evaluate the response transfer on
    /// the reverse route (deferred for the same causality reason as
    /// `Send`).
    RespStart {
        conn: ConnId,
        /// Response application bytes (conservation credit: the send
        /// evaluation already offered them).
        resp: u64,
        /// Original issue instant of the request (latency epoch).
        issued_at: SimTime,
    },
    /// The request's last byte reaches the server: the message counts as
    /// completed; one-way messages record their latency here.
    ReqDone {
        conn: ConnId,
        /// Request application bytes (conservation credit).
        req: u64,
        /// One-way latency sample (`None` when a response follows).
        latency: Option<SimDuration>,
    },
    /// The response's last byte reaches the client: latency sample.
    RespDone {
        conn: ConnId,
        /// Response application bytes (conservation credit).
        resp: u64,
        /// End-to-end request latency.
        latency: SimDuration,
    },
    /// A fault window opened on the flow's route: hand the flow to the
    /// packet engine (the island grew to include it).
    Demote { conn: ConnId },
    /// The message could not survive its route's fault state: the flow
    /// aborts after the packet transport's RTO budget.
    Abort {
        conn: ConnId,
        /// Application bytes charged as aborted.
        bytes: u64,
    },
    /// FIN instant of a fast flow: the connection stops accepting sends.
    Close { conn: ConnId },
    /// Quarantine expiry of a closed fast flow's slot.
    Retire { idx: u32 },
}

/// One scheduled fast-path event, totally ordered by `(at, seq)` — the
/// coordinator-serial analogue of the packet calendar's canonical key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct FastEv {
    pub at: SimTime,
    pub seq: u64,
    pub kind: FastKind,
}

impl Eq for FastEv {}

impl Ord for FastEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for FastEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Running totals of the fast path, reported through `SimOutputs`, the
/// live counters and the RUNINFO gauges; the conservation audit closes
/// over the byte fields.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct FastCounters {
    /// Flows the planner assigned to the fast path at open time.
    pub flows_fast: u64,
    /// Flows assigned to the packet path at open time.
    pub flows_packet: u64,
    /// Fast flows handed to the packet engine mid-life (fault window or
    /// heavy transfer reached their route).
    pub demotions: u64,
    /// Messages whose request fully arrived analytically.
    pub completed: u64,
    /// Messages aborted by fault state on the fast path.
    pub aborted_messages: u64,
    /// Fast flows aborted (connection-level; rides
    /// `aborted_connections`).
    pub aborted_flows: u64,
    /// Application bytes offered to the fast path.
    pub bytes_offered: u64,
    /// Application bytes whose transfer completed.
    pub bytes_completed: u64,
    /// Application bytes abandoned by fault aborts.
    pub bytes_aborted: u64,
    /// Sends whose flow closed or aborted before the send instant (rides
    /// `messages_on_closed`).
    pub on_closed: u64,
    /// Fast events processed (rides `processed_events`).
    pub events: u64,
}

/// Coordinator-owned state of the flow-level fast path.
pub(crate) struct FastPath {
    pub cfg: FidelityConfig,
    /// Event sequence counter (keys the calendar's total order).
    seq: u64,
    /// The fast calendar.
    queue: BinaryHeap<Reverse<FastEv>>,
    /// Per-slot: the slot's current flow is on the fast path.
    pub fast: Vec<bool>,
    /// Per-slot: the analytic handshake has been charged.
    established: Vec<bool>,
    /// Per-slot pinned routes (client→server, server→client) of fast
    /// flows; empty for packet flows.
    routes: Vec<(Vec<LinkId>, Vec<LinkId>)>,
    /// Per-slot count of messages sent on the fast path (keys the
    /// deterministic gray-loss hash).
    msgs: Vec<u64>,
    /// Virtual serialization horizon per link — the fair-share queue. A
    /// transfer charges its wire bytes on every route link, so
    /// concurrent fast flows queue behind each other exactly as flows
    /// sharing a FIFO link do.
    link_free: Vec<SimTime>,
    /// Utilization estimate per link (EWMA over 1 ms epochs) feeding the
    /// M/M/1-style waiting term.
    link_rho: Vec<f64>,
    link_epoch_bytes: Vec<u64>,
    link_epoch_start: Vec<SimTime>,
    /// Links/switches named by any injected fault — island territory.
    pub fault_links: Vec<bool>,
    pub fault_switches: Vec<bool>,
    /// Buffer-sampled switches — island territory.
    pub sampled_switches: Vec<bool>,
    /// The network-fault schedule as injected, in `(at, kind-rank)`
    /// order; the fast path derives drop/abort behaviour from the same
    /// events the packet replicas apply.
    pub fault_sched: Vec<FaultEvent>,
    pub counters: FastCounters,
}

/// Epoch length of the utilization EWMA.
const RHO_EPOCH: SimDuration = SimDuration::from_millis(1);

/// Cap on the M/M/1 waiting-term multiplier (ρ/(1−ρ) explodes as the
/// estimate nears 1; persistent overload is already modelled by the
/// virtual queue).
const MM1_CAP: f64 = 4.0;

/// Route fault state at one instant, as seen by the fast path.
pub(crate) struct RouteFault {
    /// A dead link or switch sits on the route.
    pub down: bool,
    /// Worst gray-loss fraction among route links, with the owning link.
    pub gray: Option<(LinkId, f64)>,
}

impl FastPath {
    pub fn new(n_links: usize, n_switches: usize) -> FastPath {
        FastPath {
            cfg: FidelityConfig::default(),
            seq: 0,
            queue: BinaryHeap::new(),
            fast: Vec::new(),
            established: Vec::new(),
            routes: Vec::new(),
            msgs: Vec::new(),
            link_free: vec![SimTime::ZERO; n_links],
            link_rho: vec![0.0; n_links],
            link_epoch_bytes: vec![0; n_links],
            link_epoch_start: vec![SimTime::ZERO; n_links],
            fault_links: vec![false; n_links],
            fault_switches: vec![false; n_switches],
            sampled_switches: vec![false; n_switches],
            fault_sched: Vec::new(),
            counters: FastCounters::default(),
        }
    }

    /// True when the hybrid fast path is active.
    pub fn hybrid(&self) -> bool {
        self.cfg.mode == FidelityMode::Hybrid
    }

    /// True when the slot's current flow rides the fast path.
    pub fn is_fast(&self, idx: usize) -> bool {
        self.fast.get(idx).copied().unwrap_or(false)
    }

    /// Grows the per-slot tables to cover `n` slots.
    pub fn ensure_slots(&mut self, n: usize) {
        if self.fast.len() < n {
            self.fast.resize(n, false);
            self.established.resize(n, false);
            self.routes.resize(n, (Vec::new(), Vec::new()));
            self.msgs.resize(n, 0);
        }
    }

    /// Resets a slot for a new incarnation (reuse after quarantine).
    pub fn reset_slot(&mut self, idx: usize) {
        self.ensure_slots(idx + 1);
        self.fast[idx] = false;
        self.established[idx] = false;
        self.routes[idx] = (Vec::new(), Vec::new());
        self.msgs[idx] = 0;
    }

    /// Marks a slot's flow as fast with its pinned routes.
    pub fn adopt(&mut self, idx: usize, fwd: Vec<LinkId>, rev: Vec<LinkId>) {
        self.ensure_slots(idx + 1);
        self.fast[idx] = true;
        self.established[idx] = false;
        self.routes[idx] = (fwd, rev);
        self.msgs[idx] = 0;
    }

    /// Takes a flow off the fast path (demotion hand-off).
    pub fn drop_fast(&mut self, idx: usize) {
        self.fast[idx] = false;
        self.routes[idx] = (Vec::new(), Vec::new());
    }

    /// The slot's pinned routes (fast flows only).
    pub fn routes(&self, idx: usize) -> &(Vec<LinkId>, Vec<LinkId>) {
        &self.routes[idx]
    }

    /// Schedules a fast event.
    pub fn push(&mut self, at: SimTime, kind: FastKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(FastEv { at, seq, kind }));
    }

    /// Earliest scheduled fast-event time.
    pub fn peek_at(&self) -> Option<SimTime> {
        self.queue.peek().map(|r| r.0.at)
    }

    /// Pops the single earliest event due at or before `t`. Draining one
    /// event at a time keeps the calendar canonical even when handling an
    /// event (a `Send`) schedules new events that are also already due.
    pub fn pop_next_due(&mut self, t: SimTime) -> Option<FastEv> {
        match self.queue.peek() {
            Some(r) if r.0.at <= t => Some(self.queue.pop().expect("peeked").0),
            _ => None,
        }
    }

    /// Number of scheduled fast events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Application bytes still in flight on the fast calendar (the
    /// conservation audit's in-flight term). Queued `Send`s contribute
    /// nothing: their bytes are only offered when the send instant is
    /// reached and the transfer is actually evaluated.
    pub fn bytes_in_flight(&self) -> u64 {
        self.queue
            .iter()
            .map(|r| match &r.0.kind {
                FastKind::ReqDone { req, .. } => *req,
                FastKind::RespStart { resp, .. } | FastKind::RespDone { resp, .. } => *resp,
                FastKind::Abort { bytes, .. } => *bytes,
                _ => 0,
            })
            .sum()
    }

    /// Records an injected fault into the island map and the schedule.
    pub fn note_fault(&mut self, at: SimTime, kind: FaultKind) {
        match kind {
            FaultKind::LinkDown(l)
            | FaultKind::LinkUp(l)
            | FaultKind::DegradeLink { link: l, .. }
            | FaultKind::GrayLink { link: l, .. } => {
                self.fault_links[l.index()] = true;
            }
            FaultKind::SwitchDown(s) | FaultKind::SwitchUp(s) => {
                self.fault_switches[s.index()] = true;
            }
            _ => {}
        }
        // Keep the schedule ordered by (time, kind-rank): injections may
        // arrive out of time order (flap trains, plan merges).
        let key = (at, fault_rank(&kind));
        let pos = self
            .fault_sched
            .partition_point(|e| (e.at, fault_rank(&e.kind)) <= key);
        self.fault_sched.insert(pos, FaultEvent { at, kind });
    }

    /// Fast slots whose pinned routes a degrading fault touches — these
    /// get a `Demote` scheduled at the fault instant.
    pub fn slots_hit_by(&self, kind: &FaultKind, link_from_switch: &[Option<u32>]) -> Vec<u32> {
        let hit = |route: &[LinkId]| -> bool {
            match *kind {
                FaultKind::LinkDown(l)
                | FaultKind::DegradeLink { link: l, .. }
                | FaultKind::GrayLink { link: l, .. } => route.contains(&l),
                FaultKind::SwitchDown(s) => route
                    .iter()
                    .any(|l| link_from_switch[l.index()] == Some(s.0)),
                _ => false,
            }
        };
        let mut out = Vec::new();
        for (idx, &f) in self.fast.iter().enumerate() {
            if f && (hit(&self.routes[idx].0) || hit(&self.routes[idx].1)) {
                out.push(idx as u32);
            }
        }
        out
    }

    /// True when the route crosses island territory: a watched or
    /// utilization-tracked link, a buffer-sampled switch, or any link or
    /// switch the fault plan has named so far.
    pub fn route_in_island(
        &self,
        route: &[LinkId],
        watched: &[bool],
        util_tracked: &[bool],
        link_from_switch: &[Option<u32>],
    ) -> bool {
        route.iter().any(|l| {
            let li = l.index();
            if watched[li] || util_tracked[li] || self.fault_links[li] {
                return true;
            }
            match link_from_switch[li] {
                Some(s) => self.sampled_switches[s as usize] || self.fault_switches[s as usize],
                None => false,
            }
        })
    }

    /// Fault state of `route` at instant `t`, replayed from the same
    /// schedule the packet replicas apply.
    pub fn route_fault_at(
        &self,
        route: &[LinkId],
        t: SimTime,
        link_from_switch: &[Option<u32>],
    ) -> RouteFault {
        let mut down = false;
        let mut gray: Option<(LinkId, f64)> = None;
        for &l in route {
            let li = l.index();
            let sw = link_from_switch[li];
            let mut link_down = false;
            let mut sw_down = false;
            let mut link_gray = 0.0f64;
            for ev in &self.fault_sched {
                if ev.at > t {
                    break;
                }
                match ev.kind {
                    FaultKind::LinkDown(x) if x == l => link_down = true,
                    FaultKind::LinkUp(x) if x == l => link_down = false,
                    FaultKind::GrayLink {
                        link,
                        drop_fraction,
                    } if link == l => link_gray = drop_fraction,
                    FaultKind::SwitchDown(s) if Some(s.0) == sw => sw_down = true,
                    FaultKind::SwitchUp(s) if Some(s.0) == sw => sw_down = false,
                    _ => {}
                }
            }
            down |= link_down | sw_down;
            if link_gray > 0.0 && gray.map(|(_, g)| link_gray > g).unwrap_or(true) {
                gray = Some((l, link_gray));
            }
        }
        RouteFault { down, gray }
    }

    /// Advances the per-link utilization EWMA with a transfer of `wire`
    /// bytes at `t`, and returns the link's current estimate.
    fn bump_rho(&mut self, li: usize, wire: u64, t: SimTime, bytes_per_ns: f64) -> f64 {
        let elapsed = t.saturating_since(self.link_epoch_start[li]);
        if elapsed >= RHO_EPOCH {
            let cap = bytes_per_ns * elapsed.as_nanos() as f64;
            let inst = if cap > 0.0 {
                (self.link_epoch_bytes[li] as f64 / cap).min(1.0)
            } else {
                0.0
            };
            self.link_rho[li] = 0.5 * self.link_rho[li] + 0.5 * inst;
            self.link_epoch_start[li] = t;
            self.link_epoch_bytes[li] = 0;
        }
        self.link_epoch_bytes[li] += wire;
        self.link_rho[li]
    }

    /// One-way transfer of `payload` application bytes over `route`
    /// starting at `t`, charging the virtual per-link queues. Returns the
    /// arrival instant of the last byte.
    ///
    /// The model mirrors the packet engine's timing decomposition:
    /// pipeline fill (one segment's serialization plus propagation per
    /// hop), drain of the remaining wire bytes at the bottleneck rate, a
    /// go-back-N window throttle once the transfer exceeds the in-flight
    /// cap, the virtual-queue backlog (fair sharing among concurrent
    /// fast flows), and an M/M/1-style waiting term driven by the
    /// utilization estimate. DESIGN.md §13 calibrates the error bound.
    #[allow(clippy::too_many_arguments)]
    pub fn transfer(
        &mut self,
        route: &[LinkId],
        payload: u64,
        t: SimTime,
        mss: u32,
        header: u32,
        window_segments: u32,
        link_gbps: &[f64],
        link_prop: &[u64],
    ) -> SimTime {
        if payload == 0 || route.is_empty() {
            return t;
        }
        let n_seg = payload.div_ceil(mss as u64);
        let wire = payload + n_seg * header as u64;
        let seg_wire = (mss + header) as u64;
        let first_wire = wire.min(seg_wire);

        // Pipeline fill + propagation, bottleneck discovery, and the
        // virtual-queue backlog, in one pass over the route.
        let mut fill_ns = 0.0f64;
        let mut bottleneck_bpns = f64::MAX;
        let mut queue_ns = 0u64;
        for &l in route {
            let li = l.index();
            let bpns = link_gbps[li] * 0.125; // bytes per nanosecond
            fill_ns += first_wire as f64 / bpns + link_prop[li] as f64;
            bottleneck_bpns = bottleneck_bpns.min(bpns);
            queue_ns = queue_ns.max(self.link_free[li].saturating_since(t).as_nanos());
        }

        // Window throttle: go-back-N caps in-flight data; past the cap
        // the drain rate is one window of wire bytes per round trip.
        let rtt_ns = 2.0 * fill_ns;
        let max_infl = window_segments as u64 * seg_wire;
        let mut eff_bpns = bottleneck_bpns;
        if wire > max_infl && rtt_ns > 0.0 {
            eff_bpns = eff_bpns.min(max_infl as f64 / rtt_ns);
        }
        let drain_ns = (wire - first_wire) as f64 / eff_bpns;

        // M/M/1-style waiting at the bottleneck, from the utilization the
        // fast traffic itself generates; then charge the virtual queues so
        // later transfers see this one's backlog.
        let mut mm1_ns = 0.0f64;
        for &l in route {
            let li = l.index();
            let bpns = link_gbps[li] * 0.125;
            let rho = self.bump_rho(li, wire, t, bpns);
            if (bpns - bottleneck_bpns).abs() < 1e-12 {
                let wait = (rho / (1.0 - rho.min(0.95))).min(MM1_CAP);
                mm1_ns = mm1_ns.max(wait * seg_wire as f64 / bpns);
            }
            let start = self.link_free[li].max(t);
            self.link_free[li] = start + SimDuration::from_nanos((wire as f64 / bpns) as u64);
        }

        t + SimDuration::from_nanos(queue_ns)
            + SimDuration::from_nanos((fill_ns + drain_ns + mm1_ns) as u64)
    }

    /// Handshake round trip (SYN out, SYN-ACK back): one control packet's
    /// serialization plus propagation per hop, both ways.
    pub fn handshake(
        &self,
        fwd: &[LinkId],
        rev: &[LinkId],
        control_bytes: u32,
        link_gbps: &[f64],
        link_prop: &[u64],
    ) -> SimDuration {
        let leg = |route: &[LinkId]| -> f64 {
            route
                .iter()
                .map(|l| {
                    let li = l.index();
                    control_bytes as f64 / (link_gbps[li] * 0.125) + link_prop[li] as f64
                })
                .sum()
        };
        SimDuration::from_nanos((leg(fwd) + leg(rev)) as u64)
    }

    /// Marks a slot established, returning true the first time (the
    /// handshake is charged once per flow).
    pub fn establish(&mut self, idx: usize) -> bool {
        let fresh = !self.established[idx];
        self.established[idx] = true;
        fresh
    }

    /// Next message ordinal for the slot (keys the gray-loss hash).
    pub fn next_msg(&mut self, idx: usize) -> u64 {
        let m = self.msgs[idx];
        self.msgs[idx] = m + 1;
        m
    }

    /// Serializes the fast path into the checkpoint's fidelity section,
    /// padded to `n_slots` so the per-slot tables always match the
    /// endpoint tables.
    pub fn to_ckpt(&self, n_slots: usize) -> FastCkpt {
        let mut events: Vec<FastEv> = self.queue.iter().map(|r| r.0.clone()).collect();
        events.sort();
        let pad = |v: &[bool]| -> Vec<bool> {
            let mut v = v.to_vec();
            v.resize(n_slots, false);
            v
        };
        let mut routes = self.routes.clone();
        routes.resize(n_slots, (Vec::new(), Vec::new()));
        let mut msgs = self.msgs.clone();
        msgs.resize(n_slots, 0);
        FastCkpt {
            mode: self.cfg.mode,
            heavy_flow_bytes: self.cfg.heavy_flow_bytes,
            seq: self.seq,
            events,
            fast: pad(&self.fast),
            established: pad(&self.established),
            routes,
            msgs,
            link_free: self.link_free.clone(),
            link_rho: self.link_rho.clone(),
            link_epoch_bytes: self.link_epoch_bytes.clone(),
            link_epoch_start: self.link_epoch_start.clone(),
            sampled_switches: self.sampled_switches.clone(),
            fault_sched: self.fault_sched.clone(),
            counters: self.counters,
        }
    }

    /// Restores the fast path from a checkpoint section (dimensions are
    /// validated by the caller against the topology and slot count).
    pub fn restore(&mut self, c: FastCkpt) {
        self.cfg = FidelityConfig {
            mode: c.mode,
            heavy_flow_bytes: c.heavy_flow_bytes,
        };
        self.seq = c.seq;
        self.queue = c.events.into_iter().map(Reverse).collect();
        self.fast = c.fast;
        self.established = c.established;
        self.routes = c.routes;
        self.msgs = c.msgs;
        self.link_free = c.link_free;
        self.link_rho = c.link_rho;
        self.link_epoch_bytes = c.link_epoch_bytes;
        self.link_epoch_start = c.link_epoch_start;
        self.sampled_switches = c.sampled_switches;
        self.fault_sched = Vec::new();
        for ev in c.fault_sched {
            self.note_fault(ev.at, ev.kind);
        }
        self.counters = c.counters;
    }
}

/// Tie-break rank for fault kinds injected at the same instant, keeping
/// the replayed schedule independent of injection bookkeeping order.
fn fault_rank(kind: &FaultKind) -> u8 {
    match kind {
        FaultKind::LinkDown(_) => 0,
        FaultKind::LinkUp(_) => 1,
        FaultKind::SwitchDown(_) => 2,
        FaultKind::SwitchUp(_) => 3,
        FaultKind::DegradeLink { .. } => 4,
        FaultKind::GrayLink { .. } => 5,
        FaultKind::FlapLink { .. } => 6,
        FaultKind::MirrorLoss { .. } => 7,
        FaultKind::FbflowLoss { .. } => 8,
    }
}

/// The checkpoint's versioned fidelity section: the fast calendar in
/// canonical `(at, seq)` order plus per-slot and per-link analytic state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct FastCkpt {
    pub mode: FidelityMode,
    pub heavy_flow_bytes: u64,
    pub seq: u64,
    pub events: Vec<FastEv>,
    pub fast: Vec<bool>,
    pub established: Vec<bool>,
    pub routes: Vec<(Vec<LinkId>, Vec<LinkId>)>,
    pub msgs: Vec<u64>,
    pub link_free: Vec<SimTime>,
    pub link_rho: Vec<f64>,
    pub link_epoch_bytes: Vec<u64>,
    pub link_epoch_start: Vec<SimTime>,
    pub sampled_switches: Vec<bool>,
    pub fault_sched: Vec<FaultEvent>,
    pub counters: FastCounters,
}
