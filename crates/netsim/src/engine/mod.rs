//! The discrete-event engine.
//!
//! A calendar of timestamped events drives packets across their routes.
//! Each directed link is a FIFO: serialization starts when the link frees,
//! and switch egress queues admit packets against a shared buffer pool
//! with dynamic-threshold sharing (see [`crate::config::BufferConfig`]).
//!
//! # Execution model
//!
//! The plant is statically partitioned into topology-fixed *regions* —
//! one per cluster, one per datacenter hub tier, one for the backbone —
//! grouped per-cluster by default or per-datacenter under
//! `SONET_PARTITION=dc` ([`part`] module); each partition owns a slice
//! of the link/switch/connection state and a private event calendar.
//! The coordinator advances all partitions in lockstep *windows* of
//! conservative lookahead: each partition classifies every enqueued
//! event with a lower bound on when handling it could first reach
//! another partition, and the window end is the minimum such bound
//! (capped at 1 ms). Intra-cluster work — the bulk of the paper's
//! traffic — never produces a bound, so cluster-partitioned windows
//! stay long. Boundary packets, tap deliveries, latency samples and
//! buffer windows are exchanged at each barrier in canonical
//! `(time, source-region, sequence)` order. Partitions run on the
//! [`sonet_util::par`] work-stealing pool; because the region keys, the
//! windows and every merge order are fixed by the topology and the
//! event keys (never by thread scheduling or the region grouping),
//! outputs are **byte-identical at any `--threads` value and either
//! granularity**, including 1. DESIGN.md §10 gives the protocol and the
//! determinism argument.

mod fidelity;
mod part;
#[cfg(test)]
mod tests;

use crate::config::SimConfig;
use crate::conn::{Conn, ConnPhase, MsgMeta};
use crate::faults::{FaultKind, FaultPlan};
use crate::packet::{ConnId, Dir, FlowKey};
use crate::tap::PacketTap;
use fidelity::{FastKind, FastPath};
pub use fidelity::{FidelityConfig, FidelityMode};
pub use part::{set_granularity_override, Granularity};
use part::{Ev, EvKey, PartSampler, Partition, PartitionMap, Scheduled, SharedCtx, EXT_SRC};
use serde::{Deserialize, Serialize};
use sonet_topology::{HostId, LinkHealth, LinkId, Node, SwitchId, Topology};
use sonet_util::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Checkpoint format version written by this engine. Version 1 was the
/// serial engine's single-calendar snapshot; version 2 predates
/// gray-failure link state; version 3 keyed events by partition rather
/// than region; version 4 predates the hybrid fidelity engine's
/// flow-mode section. None is loadable here (restoring an old
/// checkpoint requires the release that wrote it).
const CHECKPOINT_VERSION: u32 = 5;

/// Hard cap on window length: with no pending cross-bound traffic the
/// engine still barriers this often, bounding how stale the
/// coordinator's view can get (and how far a quiescing plant coasts).
const WINDOW_CAP: SimDuration = SimDuration::from_nanos(1_000_000);

/// Delay after which a cross-region abort notification reaches the peer
/// (a RST surfacing after the fabric round-trip). **Must be ≥
/// [`WINDOW_CAP`]**: an abort at `t` is buffered by a window that ends
/// no later than `t + WINDOW_CAP`, so the injected `PeerGone` at
/// `t + ABORT_NOTIFY_DELAY` can never land in the peer's past.
const ABORT_NOTIFY_DELAY: SimDuration = WINDOW_CAP;

/// Errors surfaced by the simulator API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The requested time is in the simulated past.
    TimeInPast {
        /// The rejected timestamp.
        requested: SimTime,
        /// The current simulation clock.
        now: SimTime,
    },
    /// Unknown connection handle.
    NoSuchConn(ConnId),
    /// The connection is closed.
    ConnClosed(ConnId),
    /// Source and destination host are the same.
    SelfConnection(HostId),
    /// A message must carry at least one request byte.
    EmptyRequest,
    /// Bad configuration.
    Config(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TimeInPast { requested, now } => {
                write!(
                    f,
                    "requested time {requested} is before simulation clock {now}"
                )
            }
            SimError::NoSuchConn(c) => write!(f, "unknown connection {c}"),
            SimError::ConnClosed(c) => write!(f, "{c} is closed"),
            SimError::SelfConnection(h) => write!(f, "{h} cannot connect to itself"),
            SimError::EmptyRequest => write!(f, "messages must carry at least 1 request byte"),
            SimError::Config(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Per-link transmit/drop counters (the SNMP-style counters of §6.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkCounters {
    /// Bytes successfully serialized onto the link.
    pub tx_bytes: u64,
    /// Packets successfully serialized onto the link.
    pub tx_packets: u64,
    /// Bytes dropped at admission (egress drops).
    pub drop_bytes: u64,
    /// Packets dropped at admission.
    pub drop_packets: u64,
    /// Bytes lost to injected faults (dead link or dead switch endpoint).
    pub fault_drop_bytes: u64,
    /// Packets lost to injected faults.
    pub fault_drop_packets: u64,
}

/// Aggregated buffer occupancy for one switch over one aggregation window
/// (the per-second median/max series of Fig 15a).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BufferWindowStat {
    /// Which switch.
    pub switch: SwitchId,
    /// Window start time.
    pub window_start: SimTime,
    /// Median sampled occupancy (bytes).
    pub median: u64,
    /// Maximum sampled occupancy (bytes).
    pub max: u64,
    /// Mean sampled occupancy (bytes).
    pub mean: f64,
    /// Number of samples in the window.
    pub samples: u32,
    /// Shared pool capacity (bytes), for normalization.
    pub capacity: u64,
}

/// Everything the engine hands back at the end of a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimOutputs {
    /// Per-link counters, indexed by `LinkId`.
    pub link_counters: Vec<LinkCounters>,
    /// Per-interval transmitted bytes for utilization-tracked links.
    pub util_series: HashMap<LinkId, Vec<u64>>,
    /// Interval used for `util_series`.
    pub util_interval: Option<SimDuration>,
    /// Buffer occupancy windows, in time order, for sampled switches.
    pub buffer_stats: Vec<BufferWindowStat>,
    /// Total packets handed to the network (first-hop transmissions
    /// scheduled), the source side of the conservation law the auditor
    /// checks: emitted = delivered + dropped + fault-dropped + stale +
    /// in-flight.
    pub emitted_packets: u64,
    /// Total packets delivered to hosts.
    pub delivered_packets: u64,
    /// Total application messages whose request fully arrived at servers.
    pub completed_requests: u64,
    /// Messages rejected because their connection closed first.
    pub messages_on_closed: u64,
    /// In-flight packets discarded because their connection endpoint was
    /// gone or recycled when they arrived.
    pub stale_packets: u64,
    /// Fault events the engine applied.
    pub faults_applied: u64,
    /// Connection endpoints successfully re-hashed onto a healthy path
    /// after a fault broke their pinned route.
    pub reroutes: u64,
    /// Endpoints whose route broke with no healthy alternative (they keep
    /// the dead path and eventually abort).
    pub reroute_failures: u64,
    /// Handshakes abandoned after the SYN retry cap.
    pub failed_handshakes: u64,
    /// Established connections aborted by the consecutive-RTO cap while
    /// their route was broken.
    pub aborted_connections: u64,
    /// Packets silently eaten by gray links (also counted in the owning
    /// link's `fault_drop_*`, so conservation still balances).
    pub gray_dropped_packets: u64,
    /// End-to-end request latencies (request issue → response fully
    /// received, or → request fully received for one-way messages), when
    /// [`Simulator::record_latencies`] was enabled.
    pub rpc_latencies: Vec<SimDuration>,
    /// Flows the hybrid planner put on the analytic fast path at open
    /// time (always 0 in packet mode).
    pub flows_fast: u64,
    /// Flows assigned to the packet engine at open time (every flow, in
    /// packet mode).
    pub flows_packet: u64,
    /// Fast flows demoted to the packet engine mid-life — a fault window
    /// opened on their route, or a heavy-hitter-sized transfer appeared.
    pub fast_path_demotions: u64,
    /// Messages completed analytically (a subset of
    /// `completed_requests`).
    pub fast_completed_requests: u64,
    /// Application bytes offered to the fast path.
    pub fast_bytes_offered: u64,
    /// Application bytes the fast path completed.
    pub fast_bytes_completed: u64,
    /// Application bytes the fast path aborted under faults.
    pub fast_bytes_aborted: u64,
    /// Final simulation clock.
    pub ended_at: SimTime,
}

/// Snapshot of the engine's running totals, readable mid-run between run
/// calls via [`Simulator::live_counters`]. Window-to-window *deltas* of
/// these are what the chaos recovery SLOs are defined over.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiveCounters {
    /// Packets handed to the network so far.
    pub emitted_packets: u64,
    /// Packets delivered to hosts so far.
    pub delivered_packets: u64,
    /// Application messages fully arrived at servers so far.
    pub completed_requests: u64,
    /// Packets lost to injected faults so far (dead links/switches plus
    /// gray-link drops).
    pub fault_dropped_packets: u64,
    /// The gray-link subset of `fault_dropped_packets`.
    pub gray_dropped_packets: u64,
    /// Endpoints re-hashed onto a healthy path so far.
    pub reroutes: u64,
    /// Endpoints left on a dead path (no healthy alternative) so far.
    pub reroute_failures: u64,
    /// Handshakes abandoned after the SYN retry cap so far.
    pub failed_handshakes: u64,
    /// Established connections aborted by the RTO cap so far.
    pub aborted_connections: u64,
}

/// Barrier/throughput counters for the partitioned execution, for bench
/// reporting. The event counts are deterministic; the `*_ns` fields and
/// `steals` are wall-clock measurements of the worker pool (they vary
/// run to run and never feed back into simulation state).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelStats {
    /// Lookahead windows executed (barriers crossed).
    pub barriers: u64,
    /// Events handled across all partitions and windows.
    pub events: u64,
    /// Sum over windows of the busiest partition's event count — the
    /// critical path a perfectly scheduled run cannot beat.
    pub bottleneck_events: u64,
    /// Partitions executed by a worker other than the one their weight
    /// seeded them on (work-stealing migrations).
    pub steals: u64,
    /// Total worker time spent draining partitions (wall clock).
    pub busy_ns: u64,
    /// Total worker time spent idle at barriers waiting for the slowest
    /// worker (wall clock): `wall_ns * width - busy_ns`.
    pub idle_ns: u64,
    /// Total in-phase wall time across windows (one lane).
    pub wall_ns: u64,
}

/// One allocated connection slot: current generation plus the partitions
/// holding its two endpoints.
#[derive(Debug, Clone, Copy)]
struct Slot {
    gen: u32,
    cpart: u32,
    spart: u32,
}

/// Coordinator-owned state: everything touched only between windows.
struct Coord<T: PacketTap> {
    tap: T,
    now: SimTime,
    /// Sequence counter for coordinator-scheduled ([`EXT_SRC`]) events.
    ext_seq: u64,
    slots: Vec<Slot>,
    free_conns: Vec<u32>,
    next_port: Vec<u16>,
    latencies: Vec<SimDuration>,
    buffer_stats: Vec<BufferWindowStat>,
    audit_barriers: bool,
    pstats: ParallelStats,
    /// The hybrid engine's flow-level fast path (inert in packet mode).
    fast: FastPath,
}

/// The packet-level simulator. See the crate docs for the model.
pub struct Simulator<T: PacketTap> {
    shared: SharedCtx,
    coord: Coord<T>,
    parts: Vec<Partition>,
    /// Worker-thread override (`None` = the process-wide `--threads`
    /// setting, resolved at each run call).
    width_override: Option<usize>,
}

enum StopMode {
    Until(SimTime),
    Quiescence,
}

impl<T: PacketTap> Simulator<T> {
    /// Creates a simulator over `topo` with the given transport/buffer
    /// configuration, delivering watched-link packets to `tap`.
    pub fn new(topo: Arc<Topology>, cfg: SimConfig, tap: T) -> Result<Simulator<T>, SimError> {
        cfg.validate().map_err(SimError::Config)?;
        let n_links = topo.links().len();
        let n_hosts = topo.hosts().len();

        let mut link_from_switch = Vec::with_capacity(n_links);
        let mut link_gbps = Vec::with_capacity(n_links);
        let mut link_prop = Vec::with_capacity(n_links);
        for link in topo.links() {
            link_from_switch.push(match link.from {
                Node::Switch(s) => Some(s.0),
                Node::Host(_) => None,
            });
            link_gbps.push(link.gbps);
            link_prop.push(link.propagation_ns);
        }
        let mut switch_cap = Vec::new();
        let mut switch_alpha = Vec::new();
        for sw in topo.switches() {
            let b = cfg.buffer_for(sw.kind);
            switch_cap.push(b.shared_bytes);
            switch_alpha.push(b.alpha);
        }

        let pmap = PartitionMap::new(&topo);
        let shared = SharedCtx {
            topo,
            cfg,
            pmap,
            link_gbps,
            link_prop,
            link_from_switch,
            switch_cap,
            switch_alpha,
            watched: vec![false; n_links],
            util_tracked: vec![false; n_links],
            util_interval: None,
            record_latencies: false,
        };
        let parts = (0..shared.pmap.n_parts)
            .map(|i| Partition::new(i, &shared))
            .collect();
        let n_switches = shared.switch_cap.len();
        Ok(Simulator {
            shared,
            coord: Coord {
                tap,
                now: SimTime::ZERO,
                ext_seq: 0,
                slots: Vec::new(),
                free_conns: Vec::new(),
                next_port: vec![32768; n_hosts],
                latencies: Vec::new(),
                buffer_stats: Vec::new(),
                audit_barriers: false,
                pstats: ParallelStats::default(),
                fast: FastPath::new(n_links, n_switches),
            },
            parts,
            width_override: None,
        })
    }

    /// Selects the fidelity mode for flows opened from now on (the
    /// default is [`FidelityMode::Packet`], which leaves the engine
    /// byte-identical to its pre-hybrid behaviour). Call before opening
    /// connections: already-open flows keep the mode they were planned
    /// with.
    pub fn set_fidelity(&mut self, cfg: FidelityConfig) -> Result<(), SimError> {
        if cfg.heavy_flow_bytes == 0 {
            return Err(SimError::Config(
                "heavy-flow threshold must be positive".into(),
            ));
        }
        self.coord.fast.cfg = cfg;
        Ok(())
    }

    /// The fidelity configuration in effect.
    pub fn fidelity(&self) -> FidelityConfig {
        self.coord.fast.cfg
    }

    /// Current simulation clock.
    pub fn now(&self) -> SimTime {
        self.coord.now
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.shared.topo
    }

    /// Transport configuration in effect.
    pub fn config(&self) -> &SimConfig {
        &self.shared.cfg
    }

    /// Starts delivering packets on `link` to the tap.
    pub fn watch_link(&mut self, link: LinkId) {
        self.shared.watched[link.index()] = true;
    }

    /// Mutable access to the tap (e.g. to degrade a telemetry collector
    /// mid-run when a fault plan says so).
    pub fn tap_mut(&mut self) -> &mut T {
        &mut self.coord.tap
    }

    /// Shared access to the tap (e.g. to checkpoint its state).
    pub fn tap(&self) -> &T {
        &self.coord.tap
    }

    /// Events handled so far (packet events plus fast-path flow events);
    /// run supervisors use this for event-count budgets.
    pub fn processed_events(&self) -> u64 {
        self.parts.iter().map(|p| p.processed_events).sum::<u64>() + self.coord.fast.counters.events
    }

    /// Events still on the calendar (including housekeeping samples and
    /// scheduled fast-path flow events).
    pub fn pending_events(&self) -> usize {
        self.parts.iter().map(|p| p.events.len()).sum::<usize>() + self.coord.fast.pending()
    }

    /// Current link/switch health under the faults applied so far. (Every
    /// partition holds an identical replica; partition 0's is returned.)
    pub fn health(&self) -> &LinkHealth {
        &self.parts[0].health
    }

    /// Number of plant partitions — one per cluster/hub-tier/backbone
    /// region at the default `cluster` granularity, one per datacenter
    /// under `SONET_PARTITION=dc`.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Barrier/utilization counters accumulated so far.
    pub fn parallel_stats(&self) -> ParallelStats {
        self.coord.pstats
    }

    /// Overrides the worker width for this simulator (`None` reverts to
    /// the process-wide `--threads` setting). Output is byte-identical at
    /// every width; this only chooses how many OS threads carry the
    /// partitions.
    pub fn set_parallel_width(&mut self, width: Option<usize>) {
        self.width_override = width;
    }

    /// Runs every partition's invariant audit after each window when
    /// enabled, panicking on the first violation (used by the
    /// equivalence/property suites to check mid-run states the public
    /// API cannot observe).
    pub fn audit_every_barrier(&mut self, on: bool) {
        self.coord.audit_barriers = on;
    }

    /// Schedules one network fault. Telemetry faults are rejected — they
    /// belong to the capture layer, not the engine.
    pub fn inject_fault(&mut self, at: SimTime, kind: FaultKind) -> Result<(), SimError> {
        if at < self.coord.now {
            return Err(SimError::TimeInPast {
                requested: at,
                now: self.coord.now,
            });
        }
        if kind.is_telemetry() {
            return Err(SimError::Config(
                "telemetry faults are applied by the capture layer, not the engine".into(),
            ));
        }
        let n_links = self.shared.topo.links().len();
        let n_switches = self.shared.topo.switches().len();
        match kind {
            FaultKind::LinkDown(l) | FaultKind::LinkUp(l) if l.index() >= n_links => {
                return Err(SimError::Config(format!("{l} is out of range")));
            }
            FaultKind::SwitchDown(s) | FaultKind::SwitchUp(s) if s.index() >= n_switches => {
                return Err(SimError::Config(format!("{s} is out of range")));
            }
            FaultKind::DegradeLink { link, rate_factor } => {
                if link.index() >= n_links {
                    return Err(SimError::Config(format!("{link} is out of range")));
                }
                if !(rate_factor > 0.0 && rate_factor <= 1.0) {
                    return Err(SimError::Config(format!(
                        "rate factor {rate_factor} outside (0, 1]"
                    )));
                }
            }
            FaultKind::GrayLink {
                link,
                drop_fraction,
            } => {
                if link.index() >= n_links {
                    return Err(SimError::Config(format!("{link} is out of range")));
                }
                if !(0.0..=1.0).contains(&drop_fraction) {
                    return Err(SimError::Config(format!(
                        "gray drop fraction {drop_fraction} outside [0, 1]"
                    )));
                }
            }
            FaultKind::FlapLink {
                link,
                half_period,
                cycles,
            } => {
                if link.index() >= n_links {
                    return Err(SimError::Config(format!("{link} is out of range")));
                }
                if half_period.as_nanos() == 0 {
                    return Err(SimError::Config("flap half-period must be positive".into()));
                }
                if cycles == 0 || cycles > crate::faults::MAX_FLAP_CYCLES {
                    return Err(SimError::Config(format!(
                        "flap cycles {cycles} outside 1..={}",
                        crate::faults::MAX_FLAP_CYCLES
                    )));
                }
                // Expand the flap into primitive down/up events so every
                // replica (and every checkpoint) sees only the kinds the
                // fault handler applies directly.
                for c in 0..cycles as u64 {
                    let down_at = at + half_period * (2 * c);
                    let up_at = at + half_period * (2 * c + 1);
                    self.inject_fault(down_at, FaultKind::LinkDown(link))?;
                    self.inject_fault(up_at, FaultKind::LinkUp(link))?;
                }
                return Ok(());
            }
            _ => {}
        }
        // The fast path replays the same schedule: the touched link or
        // switch becomes island territory for future opens, and any live
        // fast flow whose pinned route the fault degrades is handed to
        // the packet engine at the fault instant.
        self.coord.fast.note_fault(at, kind);
        if self.coord.fast.hybrid() {
            for idx in self
                .coord
                .fast
                .slots_hit_by(&kind, &self.shared.link_from_switch)
            {
                let conn = ConnId {
                    idx,
                    gen: self.coord.slots[idx as usize].gen,
                };
                self.coord.fast.push(at, FastKind::Demote { conn });
            }
        }
        // Replicate to every partition: each applies the fault to its own
        // health/rate replica at the same virtual time, so replicas agree
        // at every barrier without any cross-partition reads. All
        // replicas share ONE sequence number — they are the same
        // canonical event, so the checkpoint calendar (which dedups the
        // replicas) is independent of the partition count.
        let seq = self.coord.ext_seq;
        self.coord.ext_seq += 1;
        for p in &mut self.parts {
            p.push_ext(&self.shared, at, seq, Ev::Fault { kind });
        }
        Ok(())
    }

    /// Schedules every *network* event of `plan` (telemetry events are
    /// skipped; the capture layer replays those against its taps). Events
    /// in the simulated past are rejected, leaving earlier ones scheduled.
    pub fn inject_faults(&mut self, plan: &FaultPlan) -> Result<(), SimError> {
        for ev in plan.network_events() {
            self.inject_fault(ev.at, ev.kind)?;
        }
        Ok(())
    }

    /// Live view of a link's counters (SNMP-style mid-run poll; the full
    /// vector is also returned by [`Simulator::finish`]).
    pub fn link_counters(&self, link: LinkId) -> LinkCounters {
        let owner = self.shared.pmap.part_of_link[link.index()] as usize;
        self.parts[owner].link_counters[link.index()]
    }

    /// Live engine totals, observable between run calls (at a barrier, the
    /// only time the public API can see the engine). Deterministic at any
    /// worker width; the chaos SLO evaluator polls these per window to
    /// measure blackhole durations and recovery.
    pub fn live_counters(&self) -> LiveCounters {
        let sum = |f: fn(&part::Counters) -> u64| -> u64 {
            self.parts.iter().map(|p| f(&p.counters)).sum()
        };
        // Per-link state is only ever touched by its owner; every other
        // partition's entry stays zero, so summing all replicas is exact.
        let mut fault_dropped_packets = 0;
        for p in &self.parts {
            fault_dropped_packets += p
                .link_counters
                .iter()
                .map(|c| c.fault_drop_packets)
                .sum::<u64>();
        }
        LiveCounters {
            emitted_packets: sum(|c| c.emitted_packets),
            delivered_packets: sum(|c| c.delivered_packets),
            // Fast-path completions ride the same totals the chaos SLOs
            // are defined over: a hybrid run's recovery behaviour is
            // measured on all of its traffic, not just the islands.
            completed_requests: sum(|c| c.completed_requests) + self.coord.fast.counters.completed,
            fault_dropped_packets,
            gray_dropped_packets: sum(|c| c.gray_dropped_packets),
            reroutes: sum(|c| c.reroutes),
            reroute_failures: sum(|c| c.reroute_failures),
            failed_handshakes: sum(|c| c.failed_handshakes),
            aborted_connections: sum(|c| c.aborted_connections)
                + self.coord.fast.counters.aborted_flows,
        }
    }

    /// Enables end-to-end RPC latency recording (one sample per completed
    /// message; disabled by default to keep long runs lean).
    pub fn record_latencies(&mut self, on: bool) {
        self.shared.record_latencies = on;
    }

    /// Records per-`interval` transmitted bytes for each given link
    /// (powers utilization time series such as Fig 15b).
    pub fn track_utilization(
        &mut self,
        interval: SimDuration,
        links: &[LinkId],
    ) -> Result<(), SimError> {
        if interval.is_zero() {
            return Err(SimError::Config(
                "utilization interval must be positive".into(),
            ));
        }
        if let Some(&l) = links
            .iter()
            .find(|l| l.index() >= self.shared.topo.links().len())
        {
            return Err(SimError::Config(format!("{l} is out of range")));
        }
        self.shared.util_interval = Some(interval);
        for &l in links {
            self.shared.util_tracked[l.index()] = true;
        }
        Ok(())
    }

    /// Samples the shared-buffer occupancy of `switches` every `interval`,
    /// aggregating (median/max/mean) per `window` — the Fig 15a pipeline:
    /// 10-µs samples aggregated per second.
    pub fn sample_buffers(
        &mut self,
        interval: SimDuration,
        window: SimDuration,
        switches: Vec<SwitchId>,
    ) -> Result<(), SimError> {
        if interval.is_zero() || window.is_zero() {
            return Err(SimError::Config("sampler periods must be positive".into()));
        }
        if let Some(&s) = switches
            .iter()
            .find(|s| s.index() >= self.shared.topo.switches().len())
        {
            return Err(SimError::Config(format!("{s} is out of range")));
        }
        // Buffer-sampled switches are fidelity islands: flows opened from
        // now on that cross them stay on the packet path, so occupancy
        // series keep seeing real packet streams.
        for &sw in &switches {
            self.coord.fast.sampled_switches[sw.index()] = true;
        }
        // Split the switch list by *region*, remembering each switch's
        // index in the caller's list — the canonical order the barrier
        // merge (and the checkpoint) reassembles. Sharding by region,
        // with each shard's sample chain keyed by its region, makes the
        // event stream independent of how regions group into partitions.
        let now = self.coord.now;
        for region in 0..self.shared.pmap.n_regions {
            let mut owned = Vec::new();
            let mut orig = Vec::new();
            let mut caps = Vec::new();
            for (i, &sw) in switches.iter().enumerate() {
                if self.shared.pmap.region_of_switch[sw.index()] == region {
                    owned.push(sw);
                    orig.push(i as u32);
                    caps.push(self.shared.switch_cap[sw.index()]);
                }
            }
            if owned.is_empty() {
                continue;
            }
            let n = owned.len();
            let p = &mut self.parts[self.shared.pmap.part_of_region[region as usize] as usize];
            // Re-registering replaces the region's shard (the old chain's
            // events die against the fresh shard state).
            p.buf_samplers.retain(|s| s.region != region);
            p.buf_samplers.push(PartSampler {
                region,
                interval,
                window,
                switches: owned,
                orig,
                caps,
                window_start: now,
                samples: vec![Vec::new(); n],
            });
            p.buf_samplers.sort_by_key(|s| s.region);
            p.push_region(&self.shared, region, now, Ev::BufSample { region });
        }
        Ok(())
    }

    /// Opens a TCP-like connection from `client` to `server:server_port`
    /// at absolute time `at` (SYN emission time). Routes are pinned by the
    /// flow's ECMP hash, as hardware hashing pins real flows.
    pub fn open_connection(
        &mut self,
        at: SimTime,
        client: HostId,
        server: HostId,
        server_port: u16,
    ) -> Result<ConnId, SimError> {
        if at < self.coord.now {
            return Err(SimError::TimeInPast {
                requested: at,
                now: self.coord.now,
            });
        }
        if client == server {
            return Err(SimError::SelfConnection(client));
        }
        let port = self.coord.next_port[client.index()];
        self.coord.next_port[client.index()] = port.checked_add(1).unwrap_or(32768);
        let key = FlowKey {
            client,
            server,
            client_port: port,
            server_port,
        };
        let hash = key.ecmp_hash();
        let id = match self.coord.free_conns.pop() {
            Some(idx) => {
                // Reusing a quarantined slot evicts the previous
                // incarnation's endpoint halves from whichever partitions
                // hold them. Stragglers addressed to the old generation
                // then count as stale instead of being processed by a
                // zombie endpoint — and, just as important, the live
                // tables match exactly what a checkpoint captures, so a
                // restored run evolves identically to an uninterrupted
                // one.
                let old = self.coord.slots[idx as usize];
                self.parts[old.cpart as usize].clients[idx as usize] = None;
                self.parts[old.spart as usize].servers[idx as usize] = None;
                ConnId {
                    idx,
                    gen: old.gen + 1,
                }
            }
            None => ConnId {
                idx: self.coord.slots.len() as u32,
                gen: 0,
            },
        };
        let cpart = self.shared.pmap.part_of_host[client.index()];
        let spart = self.shared.pmap.part_of_host[server.index()];
        let slot = Slot {
            gen: id.gen,
            cpart,
            spart,
        };
        if (id.idx as usize) < self.coord.slots.len() {
            self.coord.slots[id.idx as usize] = slot;
        } else {
            self.coord.slots.push(slot);
        }
        // Route around current faults where possible; when no healthy
        // path exists, pin the nominal route anyway — the SYN dies on the
        // dead hop and the handshake gives up after its retry budget,
        // which is how a real connect() to an unreachable server behaves.
        // (The server endpoint pins its reverse route when the SYN
        // arrives; see `Partition::accept_syn`.)
        let route_fwd = self
            .shared
            .topo
            .route_healthy(client, server, hash, &self.parts[0].health)
            .or_else(|_| self.shared.topo.route(client, server, hash))
            .expect("distinct endpoints were checked above");
        // The fidelity planner: in hybrid mode a flow whose two routes
        // avoid every island (watched/tracked links, sampled switches,
        // fault-plan territory) is advanced analytically; everything
        // else — and everything, in packet mode — goes through the DES.
        self.coord.fast.reset_slot(id.idx as usize);
        let mut fast = false;
        if self.coord.fast.hybrid() {
            let route_rev = self
                .shared
                .topo
                .route_healthy(server, client, hash, &self.parts[0].health)
                .or_else(|_| self.shared.topo.route(server, client, hash))
                .expect("distinct endpoints were checked above");
            let island = |route: &[LinkId]| {
                self.coord.fast.route_in_island(
                    route,
                    &self.shared.watched,
                    &self.shared.util_tracked,
                    &self.shared.link_from_switch,
                )
            };
            if !island(&route_fwd) && !island(&route_rev) {
                fast = true;
                self.coord
                    .fast
                    .adopt(id.idx as usize, route_fwd.clone(), route_rev);
            }
        }
        if fast {
            self.coord.fast.counters.flows_fast += 1;
        } else {
            self.coord.fast.counters.flows_packet += 1;
        }
        let conn = Conn {
            id,
            key,
            phase: ConnPhase::Opening,
            route_fwd,
            route_rev: Vec::new(),
            c2s: crate::conn::DirState::default(),
            s2c: crate::conn::DirState::default(),
            msg_meta: Vec::new(),
            resp_req_issued: Vec::new(),
            pre_open: Vec::new(),
            next_server_msg: 0,
            syn_attempts: 0,
            opened_at: at,
        };
        let n_slots = self.coord.slots.len();
        for p in &mut self.parts {
            if p.clients.len() < n_slots {
                p.clients.resize(n_slots, None);
                p.servers.resize(n_slots, None);
            }
        }
        self.parts[cpart as usize].clients[id.idx as usize] = Some(conn);
        // A fast flow's endpoint record still lives in the partition
        // tables (checkpoints and slot reuse work unchanged), but no
        // packet handshake is scheduled: the analytic model charges the
        // SYN round trip on the flow's first send, and a later demotion
        // simply schedules the `OpenConn` this branch skipped.
        if !fast {
            let seq = self.coord.ext_seq;
            self.coord.ext_seq += 1;
            self.parts[cpart as usize].push_ext(&self.shared, at, seq, Ev::OpenConn { conn: id });
        }
        Ok(id)
    }

    /// Queues a request/response exchange on `conn` at absolute time `at`:
    /// the client sends `request_bytes`; once the full request reaches the
    /// server it works for `service_time` and then sends `response_bytes`
    /// back (zero for one-way transfers).
    pub fn send_message(
        &mut self,
        conn: ConnId,
        at: SimTime,
        request_bytes: u64,
        response_bytes: u64,
        service_time: SimDuration,
    ) -> Result<(), SimError> {
        if at < self.coord.now {
            return Err(SimError::TimeInPast {
                requested: at,
                now: self.coord.now,
            });
        }
        if request_bytes == 0 {
            return Err(SimError::EmptyRequest);
        }
        let slot = self
            .coord
            .slots
            .get(conn.index())
            .filter(|s| s.gen == conn.gen)
            .ok_or(SimError::NoSuchConn(conn))?;
        let cpart = slot.cpart as usize;
        let phase = self.parts[cpart].clients[conn.index()]
            .as_ref()
            .expect("registered slot has a client endpoint")
            .phase;
        if phase == ConnPhase::Closed {
            return Err(SimError::ConnClosed(conn));
        }
        if self.coord.fast.is_fast(conn.index()) {
            return self.send_fast(conn, at, request_bytes, response_bytes, service_time);
        }
        let seq = self.coord.ext_seq;
        self.coord.ext_seq += 1;
        self.parts[cpart].push_ext(
            &self.shared,
            at,
            seq,
            Ev::SendMsg {
                conn,
                req: request_bytes,
                meta: MsgMeta {
                    response_bytes,
                    service_time,
                    issued_at: at,
                },
            },
        );
        Ok(())
    }

    /// Advances one request/response exchange analytically on a fast
    /// flow. Heavy-hitter-sized transfers demote the flow to the packet
    /// engine instead; fault state on the pinned routes turns into RTO
    /// delays or aborts derived from the same schedule the packet
    /// replicas apply.
    fn send_fast(
        &mut self,
        conn: ConnId,
        at: SimTime,
        request_bytes: u64,
        response_bytes: u64,
        service_time: SimDuration,
    ) -> Result<(), SimError> {
        let idx = conn.index();
        // Heavy-hitter island: hand the flow over and let the packet
        // path carry this message (and all later ones).
        if request_bytes + response_bytes >= self.coord.fast.cfg.heavy_flow_bytes {
            self.demote_to_packet(conn, at);
            let cpart = self.coord.slots[idx].cpart as usize;
            let seq = self.coord.ext_seq;
            self.coord.ext_seq += 1;
            self.parts[cpart].push_ext(
                &self.shared,
                at,
                seq,
                Ev::SendMsg {
                    conn,
                    req: request_bytes,
                    meta: MsgMeta {
                        response_bytes,
                        service_time,
                        issued_at: at,
                    },
                },
            );
            return Ok(());
        }
        // Defer the analytic evaluation to the send instant: the fast
        // calendar drains in `(at, seq)` order, so the virtual link
        // queues are charged causally even though callers (the workload
        // generator above all) issue whole windows of future-stamped
        // messages in arbitrary order.
        self.coord.fast.push(
            at,
            FastKind::Send {
                conn,
                req: request_bytes,
                resp: response_bytes,
                service: service_time,
            },
        );
        Ok(())
    }

    /// Evaluates one deferred fast send at its issue instant `at`: fault
    /// state turns into RTO delays or aborts, everything else becomes
    /// analytic transfers on the virtual queues. Runs from the fast
    /// calendar, so evaluation order is global time order.
    fn fast_send_eval(
        &mut self,
        conn: ConnId,
        at: SimTime,
        request_bytes: u64,
        response_bytes: u64,
        service_time: SimDuration,
    ) {
        let idx = conn.index();
        if !self.slot_live(conn) {
            self.coord.fast.counters.on_closed += 1;
            return;
        }
        if !self.coord.fast.is_fast(idx) {
            // The flow demoted between issue and send instant: the packet
            // engine carries this message.
            let cpart = self.coord.slots[idx].cpart as usize;
            let seq = self.coord.ext_seq;
            self.coord.ext_seq += 1;
            self.parts[cpart].push_ext(
                &self.shared,
                at,
                seq,
                Ev::SendMsg {
                    conn,
                    req: request_bytes,
                    meta: MsgMeta {
                        response_bytes,
                        service_time,
                        issued_at: at,
                    },
                },
            );
            return;
        }
        let cpart = self.coord.slots[idx].cpart as usize;
        let closed = self.parts[cpart].clients[idx]
            .as_ref()
            .map(|c| c.phase == ConnPhase::Closed)
            .unwrap_or(true);
        if closed {
            // The flow aborted before the send instant.
            self.coord.fast.counters.on_closed += 1;
            return;
        }
        let cfg = &self.shared.cfg;
        let fast = &mut self.coord.fast;
        fast.counters.bytes_offered += request_bytes + response_bytes;
        let (fwd, rev) = fast.routes(idx).clone();
        let rf_fwd = fast.route_fault_at(&fwd, at, &self.shared.link_from_switch);
        let rf_rev = fast.route_fault_at(&rev, at, &self.shared.link_from_switch);
        if rf_fwd.down || rf_rev.down {
            // A dead hop on the pinned route: the transport burns its
            // consecutive-RTO budget and aborts, as the packet engine's
            // RTO cap would.
            let abort_at = at + cfg.rto * cfg.max_consecutive_rtos as u64;
            fast.push(
                abort_at,
                FastKind::Abort {
                    conn,
                    bytes: request_bytes + response_bytes,
                },
            );
            return;
        }
        let mut t0 = at;
        if fast.establish(idx) {
            t0 += fast.handshake(
                &fwd,
                &rev,
                cfg.control_bytes,
                &self.shared.link_gbps,
                &self.shared.link_prop,
            );
        }
        // Gray loss: deterministic drop trials on the worst gray hop add
        // one RTO each; a full budget of consecutive drops aborts. The
        // same splitmix hash as the packet path, keyed by (flow, message,
        // trial) instead of the per-link packet ordinal.
        let msg = fast.next_msg(idx);
        if let Some((l, f)) = rf_fwd.gray.or(rf_rev.gray) {
            let mut gray_delay = SimDuration::ZERO;
            let mut trials = 0u32;
            while trials < cfg.max_consecutive_rtos
                && part::gray_drop(
                    l.index() as u64,
                    ((conn.idx as u64) << 32) | (msg << 8) | trials as u64,
                    f,
                )
            {
                gray_delay += cfg.rto;
                trials += 1;
            }
            if trials >= cfg.max_consecutive_rtos {
                fast.push(
                    at + gray_delay,
                    FastKind::Abort {
                        conn,
                        bytes: request_bytes + response_bytes,
                    },
                );
                return;
            }
            t0 += gray_delay;
        }
        let req_done = fast.transfer(
            &fwd,
            request_bytes,
            t0,
            cfg.mss,
            cfg.header_bytes,
            cfg.window_segments,
            &self.shared.link_gbps,
            &self.shared.link_prop,
        );
        if response_bytes == 0 {
            let latency = self.shared.record_latencies.then(|| req_done - at);
            fast.push(
                req_done,
                FastKind::ReqDone {
                    conn,
                    req: request_bytes,
                    latency,
                },
            );
        } else {
            fast.push(
                req_done,
                FastKind::ReqDone {
                    conn,
                    req: request_bytes,
                    latency: None,
                },
            );
            // The response transfer starts after the server's think time;
            // defer its virtual-queue charge to that instant so it too is
            // evaluated in global time order.
            fast.push(
                req_done + service_time,
                FastKind::RespStart {
                    conn,
                    resp: response_bytes,
                    issued_at: at,
                },
            );
        }
    }

    /// Evaluates a deferred response transfer at its start instant.
    fn fast_resp_eval(&mut self, conn: ConnId, start: SimTime, resp: u64, issued_at: SimTime) {
        let cfg = &self.shared.cfg;
        let fast = &mut self.coord.fast;
        let rev = fast.routes(conn.index()).1.clone();
        let resp_done = fast.transfer(
            &rev,
            resp,
            start,
            cfg.mss,
            cfg.header_bytes,
            cfg.window_segments,
            &self.shared.link_gbps,
            &self.shared.link_prop,
        );
        fast.push(
            resp_done,
            FastKind::RespDone {
                conn,
                resp,
                latency: resp_done - issued_at,
            },
        );
    }

    /// Hands a fast flow to the packet engine: the `OpenConn` skipped at
    /// open time is scheduled now, so the packet handshake (with pre-open
    /// queueing for subsequent sends) takes over. In-flight analytic
    /// transfers still complete on the fast calendar.
    fn demote_to_packet(&mut self, conn: ConnId, at: SimTime) {
        let idx = conn.index();
        if !self.coord.fast.is_fast(idx) {
            return;
        }
        self.coord.fast.drop_fast(idx);
        self.coord.fast.counters.demotions += 1;
        let cpart = self.coord.slots[idx].cpart as usize;
        let closed = self.parts[cpart].clients[idx]
            .as_ref()
            .map(|c| c.phase == ConnPhase::Closed)
            .unwrap_or(true);
        if closed {
            return;
        }
        let seq = self.coord.ext_seq;
        self.coord.ext_seq += 1;
        self.parts[cpart].push_ext(&self.shared, at, seq, Ev::OpenConn { conn });
    }

    /// Closes `conn` at absolute time `at` (FIN emission).
    pub fn close_connection(&mut self, conn: ConnId, at: SimTime) -> Result<(), SimError> {
        if at < self.coord.now {
            return Err(SimError::TimeInPast {
                requested: at,
                now: self.coord.now,
            });
        }
        let slot = self
            .coord
            .slots
            .get(conn.index())
            .filter(|s| s.gen == conn.gen)
            .ok_or(SimError::NoSuchConn(conn))?;
        let cpart = slot.cpart as usize;
        if self.coord.fast.is_fast(conn.index()) {
            // Fast flows close on the fast calendar; if the flow demotes
            // before the FIN instant, the event handler forwards a packet
            // close instead.
            self.coord.fast.push(at, FastKind::Close { conn });
            return Ok(());
        }
        let seq = self.coord.ext_seq;
        self.coord.ext_seq += 1;
        self.parts[cpart].push_ext(&self.shared, at, seq, Ev::Close { conn });
        Ok(())
    }

    /// True when `conn` still names the slot's current incarnation.
    fn slot_live(&self, conn: ConnId) -> bool {
        self.coord
            .slots
            .get(conn.index())
            .map(|s| s.gen == conn.gen)
            .unwrap_or(false)
    }

    /// Applies every fast-path event due at or before `t`, in canonical
    /// `(at, seq)` order. Runs on the coordinator between windows — the
    /// packet clock has already reached `t` — so completions, latency
    /// samples and retirements land in global time order and are
    /// byte-identical at any worker width or partition granularity.
    fn apply_fast_due(&mut self, t: SimTime) {
        // One event at a time: handling a `Send` or `RespStart` schedules
        // follow-up events that may themselves already be due, and they
        // must drain in canonical `(at, seq)` order with everything else.
        while let Some(ev) = self.coord.fast.pop_next_due(t) {
            self.coord.fast.counters.events += 1;
            match ev.kind {
                FastKind::Send {
                    conn,
                    req,
                    resp,
                    service,
                } => {
                    self.fast_send_eval(conn, ev.at, req, resp, service);
                }
                FastKind::RespStart {
                    conn,
                    resp,
                    issued_at,
                } => {
                    self.fast_resp_eval(conn, ev.at, resp, issued_at);
                }
                FastKind::ReqDone { conn, req, latency } => {
                    // Conservation credits survive slot turnover: the
                    // bytes finished transferring whether or not the flow
                    // is still the slot's current incarnation.
                    let _ = conn;
                    self.coord.fast.counters.completed += 1;
                    self.coord.fast.counters.bytes_completed += req;
                    if let Some(d) = latency {
                        self.coord.latencies.push(d);
                    }
                }
                FastKind::RespDone {
                    conn,
                    resp,
                    latency,
                } => {
                    let _ = conn;
                    self.coord.fast.counters.bytes_completed += resp;
                    if self.shared.record_latencies {
                        self.coord.latencies.push(latency);
                    }
                }
                FastKind::Demote { conn } => {
                    if self.slot_live(conn) {
                        self.demote_to_packet(conn, ev.at);
                    }
                }
                FastKind::Abort { conn, bytes } => {
                    self.coord.fast.counters.aborted_messages += 1;
                    self.coord.fast.counters.bytes_aborted += bytes;
                    if self.slot_live(conn) && self.coord.fast.is_fast(conn.index()) {
                        let cpart = self.coord.slots[conn.index()].cpart as usize;
                        if let Some(c) = self.parts[cpart].clients[conn.index()].as_mut() {
                            if c.phase != ConnPhase::Closed {
                                c.phase = ConnPhase::Closed;
                                self.coord.fast.counters.aborted_flows += 1;
                                self.coord.fast.push(
                                    ev.at + self.shared.cfg.conn_quarantine,
                                    FastKind::Retire { idx: conn.idx },
                                );
                            }
                        }
                    }
                }
                FastKind::Close { conn } => {
                    if !self.slot_live(conn) {
                        continue;
                    }
                    if self.coord.fast.is_fast(conn.index()) {
                        let cpart = self.coord.slots[conn.index()].cpart as usize;
                        if let Some(c) = self.parts[cpart].clients[conn.index()].as_mut() {
                            if c.phase != ConnPhase::Closed {
                                c.phase = ConnPhase::Closed;
                                self.coord.fast.push(
                                    ev.at + self.shared.cfg.conn_quarantine,
                                    FastKind::Retire { idx: conn.idx },
                                );
                            }
                        }
                    } else {
                        // The flow demoted between FIN issue and FIN
                        // instant: close it the packet way.
                        let cpart = self.coord.slots[conn.index()].cpart as usize;
                        let seq = self.coord.ext_seq;
                        self.coord.ext_seq += 1;
                        self.parts[cpart].push_ext(&self.shared, ev.at, seq, Ev::Close { conn });
                    }
                }
                FastKind::Retire { idx } => {
                    self.coord.free_conns.push(idx);
                }
            }
        }
    }

    /// Publishes the fast path's RUNINFO gauges (write-only side channel;
    /// no-op with observability off).
    fn flush_fast_gauges(&self) {
        use sonet_util::obs;
        if !obs::on() {
            return;
        }
        let c = &self.coord.fast.counters;
        obs::gauge_set!("engine.flows_fast", c.flows_fast);
        obs::gauge_set!("engine.flows_packet", c.flows_packet);
        obs::gauge_set!("engine.fast_path_demotions", c.demotions);
        obs::gauge_set!("engine.fast_completed_requests", c.completed);
    }

    /// Runs the event loop until the clock reaches `until` (all events at
    /// or before `until` are processed; the clock then rests at `until`).
    pub fn run_until(&mut self, until: SimTime) {
        // Interleave the two calendars at fixed, state-independent
        // points: advance the packet engine to the next fast event's
        // instant, apply every fast event due there, repeat. The fast
        // path is coordinator-serial, so hybrid runs stay byte-identical
        // at any worker width and partition granularity.
        while let Some(tf) = self.coord.fast.peek_at() {
            if tf > until {
                break;
            }
            self.run_windows(StopMode::Until(tf));
            self.apply_fast_due(tf);
        }
        self.run_windows(StopMode::Until(until));
        self.flush_fast_gauges();
    }

    /// Drains every remaining event other than the periodic buffer
    /// sampler, which reschedules itself forever and would otherwise keep
    /// the calendar non-empty (use after the last injection when a
    /// natural quiesce is wanted rather than a fixed horizon).
    pub fn run_to_quiescence(&mut self) {
        while let Some(tf) = self.coord.fast.peek_at() {
            self.run_windows(StopMode::Until(tf));
            self.apply_fast_due(tf);
        }
        self.run_windows(StopMode::Quiescence);
        self.flush_fast_gauges();
    }

    fn run_windows(&mut self, mode: StopMode) {
        let width = self
            .width_override
            .unwrap_or_else(|| sonet_util::par::resolve_threads(None))
            .clamp(1, self.parts.len());
        let shared = &self.shared;
        let coord = &mut self.coord;
        // Flight-recorder handles, resolved once per run. Everything the
        // closure records is write-only side-channel state (DESIGN.md
        // §11): nothing below feeds back into event processing, so the
        // calendar stays byte-identical with observability off or on.
        let part_ev_counters: Option<Vec<_>> = sonet_util::obs::on().then(|| {
            (0..self.parts.len())
                .map(|i| {
                    sonet_util::obs::metrics::global().counter(&format!("engine.part{i}.events"))
                })
                .collect()
        });
        let part_idle_counters: Option<Vec<_>> = sonet_util::obs::deep().then(|| {
            (0..self.parts.len())
                .map(|i| {
                    sonet_util::obs::metrics::global().counter(&format!("engine.part{i}.idle_ns"))
                })
                .collect()
        });
        // Registered up front (not lazily on first increment) so a run
        // that never steals still reports `engine.steals: 0` in its
        // RUNINFO manifest rather than omitting the metric.
        let pool_counters = sonet_util::obs::on().then(|| {
            let m = sonet_util::obs::metrics::global();
            (
                m.counter("engine.steals"),
                m.counter("engine.worker_idle_ns"),
            )
        });
        let parts = std::mem::take(&mut self.parts);
        let mut win_start_us: Option<u64> = None;
        let mut win_idx: u64 = 0;
        let mut pending_part_events: Vec<u64> = vec![0; parts.len()];
        // Scalar counters ride the same 64-window flush cadence as the
        // per-partition batch: plain u64 adds per window, registry traffic
        // once per flush. (barriers, boundary events, steals, idle ns.)
        let mut pend = [0u64; 4];
        // Per-partition load estimate (integer EWMA of window event
        // counts) feeding the stealing pool's seed assignment: heavy
        // partitions spread across workers first, and persistently idle
        // ones ride along as steal fodder.
        let mut ewma: Vec<u64> = vec![0; parts.len()];
        let parts = sonet_util::par::run_phased_stealing(
            width,
            parts,
            |parts: &mut [Partition], ctl: &mut sonet_util::par::StealCtl| -> bool {
                if let Some(start) = win_start_us.take() {
                    sonet_util::obs::trace::complete(
                        "engine.window",
                        sonet_util::obs::trace::Category::Window,
                        start,
                    );
                }
                pend[1] += barrier_merge(coord, shared, parts);
                for p in parts.iter_mut() {
                    coord.pstats.events += p.window_counted;
                    p.window_counted = 0;
                }
                if let Some(busiest) = parts.iter().map(|p| p.window_events).max() {
                    coord.pstats.bottleneck_events += busiest;
                }
                coord.pstats.steals += ctl.stats.steals;
                coord.pstats.busy_ns += ctl.stats.busy_ns;
                coord.pstats.idle_ns += ctl.stats.idle_ns;
                coord.pstats.wall_ns += ctl.stats.wall_ns;
                pend[2] += ctl.stats.steals;
                pend[3] += ctl.stats.idle_ns;
                if let Some(ctrs) = &part_ev_counters {
                    win_idx += 1;
                    let flush = win_idx.is_multiple_of(OBS_FLUSH_WINDOWS);
                    record_window_metrics(parts, ctrs, &mut pending_part_events, flush);
                    if flush {
                        flush_scalar_metrics(&mut pend, &pool_counters);
                    }
                }
                if let Some(ctrs) = &part_idle_counters {
                    for (i, &busy) in ctl.stats.slot_busy_ns.iter().enumerate() {
                        let idle = ctl.stats.wall_ns.saturating_sub(busy);
                        if idle > 0 && i < ctrs.len() {
                            ctrs[i].add(idle);
                        }
                    }
                }
                for (i, p) in parts.iter_mut().enumerate() {
                    ewma[i] = (ewma[i] + p.window_events) / 2;
                    ctl.weights[i] = ewma[i] + 1;
                    p.window_events = 0;
                }
                if coord.audit_barriers {
                    let now = parts.iter().map(|p| p.now).max().unwrap_or(coord.now);
                    if let Err(report) = audit_parts(shared, parts, now) {
                        panic!("barrier audit failed: {report}");
                    }
                }
                let next = parts
                    .iter()
                    .filter_map(|p| p.events.peek().map(|r| r.0.at))
                    .min();
                // Window horizon: the cap, tightened by the earliest
                // instant any partition's pending work could cross into
                // another partition (stale bounds — classified for events
                // already processed — are popped on the way).
                let horizon = next.map(|t| {
                    let mut horizon = t + WINDOW_CAP;
                    for p in parts.iter_mut() {
                        while let Some(&Reverse((bound, at))) = p.cross_bounds.peek() {
                            if at < p.now {
                                p.cross_bounds.pop();
                            } else {
                                horizon = horizon.min(bound);
                                break;
                            }
                        }
                    }
                    horizon
                });
                let wend = match mode {
                    StopMode::Until(until) => match (next, horizon) {
                        (Some(t), Some(h)) if t <= until => {
                            Some((until + SimDuration::from_nanos(1)).min(h))
                        }
                        _ => None,
                    },
                    StopMode::Quiescence => {
                        let real: u64 = parts.iter().map(|p| p.real_events).sum();
                        if real == 0 {
                            None
                        } else {
                            Some(horizon.expect("real events imply a calendar head"))
                        }
                    }
                };
                match wend {
                    Some(wend) => {
                        for p in parts.iter_mut() {
                            p.wend = wend;
                        }
                        coord.pstats.barriers += 1;
                        pend[0] += 1;
                        if sonet_util::obs::on() {
                            let t = next.expect("a scheduled window has a calendar head");
                            sonet_util::obs::hist_observe!(
                                "engine.effective_lookahead_ns",
                                (wend - t).as_nanos(),
                                sonet_util::obs::metrics::BOUNDS_POW4
                            );
                        }
                        if sonet_util::obs::deep() {
                            win_start_us = Some(sonet_util::obs::trace::now_us());
                        }
                        true
                    }
                    None => {
                        // Epilogue: rest the clock exactly where the
                        // serial contract says — at `until`, or at the
                        // last handled event for a natural quiesce.
                        let end = match mode {
                            StopMode::Until(until) => until,
                            StopMode::Quiescence => parts
                                .iter()
                                .map(|p| p.last_at)
                                .max()
                                .unwrap_or(coord.now)
                                .max(coord.now),
                        };
                        for p in parts.iter_mut() {
                            p.now = end;
                        }
                        coord.now = end;
                        // Final drain: whatever the 64-window batching
                        // still holds lands in the registry before the
                        // run's RUNINFO snapshot is taken.
                        if let Some(ctrs) = &part_ev_counters {
                            flush_window_metrics(parts, ctrs, &mut pending_part_events);
                            flush_scalar_metrics(&mut pend, &pool_counters);
                        }
                        false
                    }
                }
            },
            |_, p| p.drain_window(shared),
        );
        self.parts = parts;
    }

    /// Finishes the run: flushes telemetry windows and returns the outputs
    /// together with the tap.
    pub fn finish(mut self) -> (SimOutputs, T) {
        let mut tail = Vec::new();
        for p in &mut self.parts {
            p.flush_buffer_windows();
            tail.append(&mut p.window_stats);
        }
        tail.sort_by_key(|(start, orig, _)| (*start, *orig));
        self.coord
            .buffer_stats
            .extend(tail.into_iter().map(|(_, _, s)| s));

        let n_links = self.shared.topo.links().len();
        let mut link_counters = Vec::with_capacity(n_links);
        let mut util_series = HashMap::new();
        for li in 0..n_links {
            let owner = self.shared.pmap.part_of_link[li] as usize;
            link_counters.push(self.parts[owner].link_counters[li]);
            if self.shared.util_tracked[li] {
                util_series.insert(
                    LinkId(li as u32),
                    std::mem::take(&mut self.parts[owner].util_series[li]),
                );
            }
        }
        let sum = |f: fn(&part::Counters) -> u64| -> u64 {
            self.parts.iter().map(|p| f(&p.counters)).sum()
        };
        let fc = self.coord.fast.counters;
        let outputs = SimOutputs {
            link_counters,
            util_series,
            util_interval: self.shared.util_interval,
            buffer_stats: std::mem::take(&mut self.coord.buffer_stats),
            emitted_packets: sum(|c| c.emitted_packets),
            delivered_packets: sum(|c| c.delivered_packets),
            completed_requests: sum(|c| c.completed_requests) + fc.completed,
            messages_on_closed: sum(|c| c.messages_on_closed) + fc.on_closed,
            stale_packets: sum(|c| c.stale_packets),
            faults_applied: sum(|c| c.faults_applied),
            reroutes: sum(|c| c.reroutes),
            reroute_failures: sum(|c| c.reroute_failures),
            failed_handshakes: sum(|c| c.failed_handshakes),
            aborted_connections: sum(|c| c.aborted_connections) + fc.aborted_flows,
            gray_dropped_packets: sum(|c| c.gray_dropped_packets),
            rpc_latencies: std::mem::take(&mut self.coord.latencies),
            flows_fast: fc.flows_fast,
            flows_packet: fc.flows_packet,
            fast_path_demotions: fc.demotions,
            fast_completed_requests: fc.completed,
            fast_bytes_offered: fc.bytes_offered,
            fast_bytes_completed: fc.bytes_completed,
            fast_bytes_aborted: fc.bytes_aborted,
            ended_at: self.coord.now,
        };
        (outputs, self.coord.tap)
    }
}

/// Publishes per-barrier flight-recorder metrics: window event volume and
/// balance, per-partition event counters, calendar size, and cumulative
/// drops by cause. Called from the coordinator between phases, only when
/// observability is on; purely write-only into the obs side channel.
///
/// Per-cluster granularity runs one to two orders of magnitude more
/// windows than the old per-DC engine, so per-window registry traffic is
/// now a measurable tax (CI pins `--obs summary` to ≤2% of events/sec).
/// Counters therefore accumulate into `pending` (one slot per partition)
/// and flush every `OBS_FLUSH_WINDOWS` barriers — exact totals, just
/// batched — gauges refresh on the same cadence (they are last-write
/// snapshots, so sampling loses nothing at the end of the run), and the
/// per-window distribution histograms ride with the other per-window
/// detail in deep mode.
const OBS_FLUSH_WINDOWS: u64 = 64;

fn record_window_metrics(
    parts: &[Partition],
    ctrs: &[std::sync::Arc<sonet_util::obs::metrics::Counter>],
    pending: &mut [u64],
    flush: bool,
) {
    use sonet_util::obs;
    for (acc, p) in pending.iter_mut().zip(parts) {
        *acc += p.window_events;
    }
    if obs::deep() {
        let total: u64 = parts.iter().map(|p| p.window_events).sum();
        if total > 0 {
            obs::hist_observe!("engine.events_per_window", total, obs::metrics::BOUNDS_POW4);
            let busiest = parts.iter().map(|p| p.window_events).max().unwrap_or(0);
            let lightest = parts.iter().map(|p| p.window_events).min().unwrap_or(0);
            if parts.len() > 1 && busiest > 0 {
                obs::hist_observe!(
                    "engine.barrier_balance_permille",
                    lightest * 1000 / busiest,
                    obs::metrics::BOUNDS_PERMILLE
                );
            }
        }
    }
    if flush {
        flush_window_metrics(parts, ctrs, pending);
    }
}

/// Drains the batched scalar counters — `pend` is `[barriers,
/// boundary_events, steals, worker_idle_ns]` — on the same cadence as
/// `flush_window_metrics`. The steal/idle handles are the pre-registered
/// pair, so a run that never steals still reports explicit zeros.
fn flush_scalar_metrics(
    pend: &mut [u64; 4],
    pool: &Option<(
        std::sync::Arc<sonet_util::obs::metrics::Counter>,
        std::sync::Arc<sonet_util::obs::metrics::Counter>,
    )>,
) {
    use sonet_util::obs;
    if pend[0] > 0 {
        obs::counter_add!("engine.barriers", pend[0]);
    }
    if pend[1] > 0 {
        obs::counter_add!("engine.boundary_events", pend[1]);
    }
    if let Some((steal_ctr, idle_ctr)) = pool {
        if pend[2] > 0 {
            steal_ctr.add(pend[2]);
        }
        if pend[3] > 0 {
            idle_ctr.add(pend[3]);
        }
    }
    *pend = [0; 4];
}

/// Drains the batched per-partition counters and refreshes the snapshot
/// gauges. Runs on the flush cadence and once more from the epilogue, so
/// RUNINFO finals are exact regardless of where the run stopped.
fn flush_window_metrics(
    parts: &[Partition],
    ctrs: &[std::sync::Arc<sonet_util::obs::metrics::Counter>],
    pending: &mut [u64],
) {
    use sonet_util::obs;
    let total: u64 = pending.iter().sum();
    if total > 0 {
        obs::counter_add!("engine.events", total);
        for (acc, ctr) in pending.iter_mut().zip(ctrs) {
            if *acc > 0 {
                ctr.add(*acc);
                *acc = 0;
            }
        }
    }
    obs::gauge_set!(
        "engine.calendar_events",
        parts.iter().map(|p| p.real_events).sum::<u64>()
    );
    let sum = |f: fn(&part::Counters) -> u64| -> u64 { parts.iter().map(|p| f(&p.counters)).sum() };
    obs::gauge_set!("engine.drop.stale_packets", sum(|c| c.stale_packets));
    obs::gauge_set!(
        "engine.drop.messages_on_closed",
        sum(|c| c.messages_on_closed)
    );
    obs::gauge_set!("engine.drop.reroute_failures", sum(|c| c.reroute_failures));
    obs::gauge_set!("engine.drop.gray_packets", sum(|c| c.gray_dropped_packets));
    obs::gauge_set!(
        "engine.drop.aborted_connections",
        sum(|c| c.aborted_connections)
    );
}

/// Exchanges every cross-partition product of the completed window, in
/// canonical order. Runs on the coordinator thread between phases; also a
/// no-op on a fresh simulator, so the window loop calls it
/// unconditionally. Returns the number of boundary events delivered so
/// the caller can batch the `engine.boundary_events` counter.
fn barrier_merge<T: PacketTap>(
    coord: &mut Coord<T>,
    sh: &SharedCtx,
    parts: &mut [Partition],
) -> u64 {
    let n = parts.len();

    // 1. Boundary events: outbox → target calendar, coalesced per target
    //    across every source so each target's bookkeeping (calendar
    //    growth, cross-bound classification) runs once per barrier
    //    instead of once per partition pair. Every entry carries its
    //    (time, source, seq) key, so heap order — not delivery order —
    //    decides processing order.
    let mut boundary: u64 = 0;
    let mut incoming: Vec<Vec<Scheduled>> = vec![Vec::new(); n];
    for src in parts.iter_mut() {
        // Per-source outbox histograms are deep-mode detail: at cluster
        // granularity they would cost `partitions` registry ops on every
        // one of the (much more numerous) windows in summary mode.
        if sonet_util::obs::deep() {
            let depth: usize = src.outbox.iter().map(Vec::len).sum();
            sonet_util::obs::hist_observe!(
                "engine.outbox_depth",
                depth as u64,
                sonet_util::obs::metrics::BOUNDS_POW4
            );
        }
        for (tgt, evs) in src.outbox.iter_mut().enumerate() {
            incoming[tgt].append(evs);
        }
    }
    for (tgt, evs) in incoming.into_iter().enumerate() {
        if evs.is_empty() {
            continue;
        }
        boundary += evs.len() as u64;
        let p = &mut parts[tgt];
        p.real_events += evs.len() as u64;
        for s in evs {
            debug_assert!(s.at >= p.now, "lookahead violation");
            p.note_cross(sh, s.at, &s.ev);
            p.events.push(Reverse(s));
        }
    }

    // A partition drains its window in key order, so each per-partition
    // product buffer is already key-sorted — the canonical merge sort is
    // only needed when more than one partition contributed this window.

    // 2. Tap deliveries, merged across partitions by generating-event key
    //    (exactly the order a width-1 run produces them in).
    let multi = parts.iter().filter(|p| !p.tap_buf.is_empty()).count() > 1;
    let mut taps: Vec<part::TapCall> = Vec::new();
    for p in parts.iter_mut() {
        taps.append(&mut p.tap_buf);
    }
    if multi {
        taps.sort_by_key(|t| t.key);
    }
    for t in &taps {
        coord.tap.on_packet(t.at, t.link, &t.pkt);
    }

    // 3. RPC latency samples, same canonical order.
    let multi = parts.iter().filter(|p| !p.lat_buf.is_empty()).count() > 1;
    let mut lats: Vec<(EvKey, SimDuration)> = Vec::new();
    for p in parts.iter_mut() {
        lats.append(&mut p.lat_buf);
    }
    if multi {
        lats.sort_by_key(|(k, _)| *k);
    }
    coord.latencies.extend(lats.into_iter().map(|(_, d)| d));

    // 4. Completed buffer windows, ordered by (window start, position in
    //    the caller's switch list) — the order the serial sampler emits.
    //    Always sorted: one partition can own several region shards whose
    //    flushes interleave out of (start, orig) order.
    let mut wins: Vec<(SimTime, u32, BufferWindowStat)> = Vec::new();
    for p in parts.iter_mut() {
        wins.append(&mut p.window_stats);
    }
    wins.sort_by_key(|(start, orig, _)| (*start, *orig));
    coord
        .buffer_stats
        .extend(wins.into_iter().map(|(_, _, s)| s));

    // 5. Cross-region aborts: the peer learns one notification delay
    //    after the abort instant — like a RST surfacing after the fabric
    //    round-trip. Tying the notification to the abort's own timestamp
    //    (not the barrier position) keeps results independent of how the
    //    caller slices its `run_until` horizon: no window ever extends
    //    past its start by more than `WINDOW_CAP <= ABORT_NOTIFY_DELAY`,
    //    so the notification is never in the peer's past.
    let multi = parts.iter().filter(|p| !p.aborted_buf.is_empty()).count() > 1;
    let mut aborts: Vec<(EvKey, ConnId, bool)> = Vec::new();
    for p in parts.iter_mut() {
        aborts.append(&mut p.aborted_buf);
    }
    if multi {
        aborts.sort_by_key(|(k, _, _)| *k);
    }
    for (key, conn, client_aborted) in aborts {
        let slot = coord.slots[conn.index()];
        if slot.gen != conn.gen {
            continue;
        }
        let (peer, peer_is_client) = if client_aborted {
            (slot.spart as usize, false)
        } else {
            (slot.cpart as usize, true)
        };
        let at = key.0 + ABORT_NOTIFY_DELAY;
        debug_assert!(
            at >= parts[peer].now,
            "abort notification lands in the peer's past"
        );
        let seq = coord.ext_seq;
        coord.ext_seq += 1;
        parts[peer].push_ext(
            sh,
            at,
            seq,
            Ev::PeerGone {
                conn,
                client: peer_is_client,
            },
        );
    }

    // 6. Retired slots become reusable in retiring-event order — the
    //    same order a width-1 run grows `free_conns` in, whatever the
    //    partition count.
    let multi = parts.iter().filter(|p| !p.retired_buf.is_empty()).count() > 1;
    let mut retired: Vec<(EvKey, u32)> = Vec::new();
    for p in parts.iter_mut() {
        retired.append(&mut p.retired_buf);
    }
    if multi {
        retired.sort_by_key(|(k, _)| *k);
    }
    coord
        .free_conns
        .extend(retired.into_iter().map(|(_, idx)| idx));

    boundary
}

// ---------------------------------------------------------------------
// Checkpoint / restore
// ---------------------------------------------------------------------

/// Serialized sampler state: the canonical (width-independent) view — the
/// full switch list in registration order with each switch's in-window
/// samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BufSamplerCkpt {
    interval: SimDuration,
    window: SimDuration,
    switches: Vec<SwitchId>,
    window_start: SimTime,
    samples: Vec<Vec<u64>>,
}

/// Serialized dynamic state of a [`Simulator`].
///
/// Contains everything the engine mutates, merged across partitions into
/// a canonical single-plant view: the event calendar (sorted by
/// `(time, source, seq)` key), both endpoint tables, link and switch
/// state, telemetry accumulators, and totals — plus the [`SimConfig`] it
/// ran under. Topology-derived tables are rebuilt from the topology
/// passed to [`Simulator::restore`], so a checkpoint stays small and
/// cannot disagree with the plant it is replayed against. Because the
/// view is canonical — events keyed by topology-fixed regions, fault
/// replicas deduplicated, sequence counters region-indexed — checkpoint
/// bytes are identical at every worker width *and* every partition
/// granularity, and a checkpoint taken under one configuration restores
/// under any other.
///
/// Checkpoints from older format versions fail to restore — resuming
/// one requires the release that wrote it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineCheckpoint {
    version: u32,
    cfg: SimConfig,
    now: SimTime,
    events: Vec<Scheduled>,
    /// Per-region event sequence counters, indexed by region (clusters,
    /// then per-DC hub tiers, then the backbone) — partition-count-
    /// independent because event sources are regions, not partitions.
    next_seqs: Vec<u64>,
    ext_seq: u64,
    conns_client: Vec<Option<Conn>>,
    conns_server: Vec<Option<Conn>>,
    free_conns: Vec<u32>,
    next_port: Vec<u16>,
    link_free_at: Vec<SimTime>,
    link_backlog: Vec<u64>,
    link_counters: Vec<LinkCounters>,
    link_rate_factor: Vec<f64>,
    link_gray: Vec<f64>,
    link_gray_seq: Vec<u64>,
    health: LinkHealth,
    watched: Vec<bool>,
    util_tracked: Vec<bool>,
    switch_occ: Vec<u64>,
    util_interval: Option<SimDuration>,
    /// `util_series` flattened to link-sorted pairs so the serialized form
    /// is byte-stable across runs.
    util_series: Vec<(LinkId, Vec<u64>)>,
    buf_sampler: Option<BufSamplerCkpt>,
    buffer_stats: Vec<BufferWindowStat>,
    emitted_packets: u64,
    delivered_packets: u64,
    completed_requests: u64,
    messages_on_closed: u64,
    stale_packets: u64,
    faults_applied: u64,
    reroutes: u64,
    reroute_failures: u64,
    failed_handshakes: u64,
    aborted_connections: u64,
    gray_dropped_packets: u64,
    record_latencies: bool,
    latencies: Vec<SimDuration>,
    processed_events: u64,
    /// The hybrid engine's flow-mode section (version 5+): fast calendar,
    /// per-slot flow modes and routes, per-link analytic queue state, the
    /// replayable fault schedule, and the fast totals.
    fast: fidelity::FastCkpt,
}

impl EngineCheckpoint {
    /// Virtual time the checkpoint was taken at.
    pub fn taken_at(&self) -> SimTime {
        self.now
    }
}

impl<T: PacketTap> Simulator<T> {
    /// Captures the engine's full dynamic state. Non-destructive: the
    /// simulator keeps running; the checkpoint is an independent snapshot
    /// that [`Simulator::restore`] turns back into an identical engine.
    /// Must be taken between run calls (at a barrier), which is the only
    /// time the public API can observe the engine anyway.
    pub fn checkpoint(&self) -> EngineCheckpoint {
        let sh = &self.shared;
        let n_links = sh.topo.links().len();
        let n_switches = sh.topo.switches().len();

        let mut events: Vec<Scheduled> = self
            .parts
            .iter()
            .flat_map(|p| p.events.iter().map(|r| r.0.clone()))
            .collect();
        events.sort_by_key(Scheduled::key);
        // Fault events are replicated into every partition under one
        // shared key; the canonical calendar keeps a single copy (restore
        // fans it back out), so the bytes are partition-count-independent.
        events.dedup_by(|a, b| a.key() == b.key());

        let n_slots = self.coord.slots.len();
        let mut conns_client: Vec<Option<Conn>> = vec![None; n_slots];
        let mut conns_server: Vec<Option<Conn>> = vec![None; n_slots];
        // Two passes: the server filter below consults the client table,
        // and a conn's server half may live in a lower-indexed partition
        // than its client half.
        for p in &self.parts {
            for (i, c) in p.clients.iter().enumerate() {
                if let Some(c) = c {
                    conns_client[i] = Some(c.clone());
                }
            }
        }
        for p in &self.parts {
            for (i, c) in p.servers.iter().enumerate() {
                if let Some(c) = c {
                    // The canonical server endpoint is the one matching
                    // the current client generation; stale halves left in
                    // other partitions by slot reuse stay behind (they
                    // only ever absorb stragglers).
                    let current = conns_client[i]
                        .as_ref()
                        .is_some_and(|cl| cl.id.gen == c.id.gen);
                    if current {
                        conns_server[i] = Some(c.clone());
                    }
                }
            }
        }

        let mut link_free_at = vec![SimTime::ZERO; n_links];
        let mut link_backlog = vec![0u64; n_links];
        let mut link_counters = vec![LinkCounters::default(); n_links];
        let mut link_rate_factor = vec![1.0f64; n_links];
        let mut link_gray = vec![0.0f64; n_links];
        let mut link_gray_seq = vec![0u64; n_links];
        let mut util_series = Vec::new();
        for li in 0..n_links {
            let owner = &self.parts[sh.pmap.part_of_link[li] as usize];
            link_free_at[li] = owner.link_free_at[li];
            link_backlog[li] = owner.link_backlog[li];
            link_counters[li] = owner.link_counters[li];
            link_rate_factor[li] = owner.link_rate_factor[li];
            link_gray[li] = owner.link_gray[li];
            link_gray_seq[li] = owner.link_gray_seq[li];
            if sh.util_tracked[li] {
                util_series.push((LinkId(li as u32), owner.util_series[li].clone()));
            }
        }
        let mut switch_occ = vec![0u64; n_switches];
        for (si, occ) in switch_occ.iter_mut().enumerate() {
            *occ = self.parts[sh.pmap.part_of_switch[si] as usize].switch_occ[si];
        }

        // Reassemble the canonical sampler from the per-region shards,
        // ordered by each switch's position in the original registration.
        let mut shard_refs: Vec<(&PartSampler, usize)> = Vec::new();
        for p in &self.parts {
            for s in &p.buf_samplers {
                for i in 0..s.switches.len() {
                    shard_refs.push((s, i));
                }
            }
        }
        shard_refs.sort_by_key(|(s, i)| s.orig[*i]);
        let buf_sampler = shard_refs.first().map(|(first, _)| BufSamplerCkpt {
            interval: first.interval,
            window: first.window,
            switches: shard_refs.iter().map(|(s, i)| s.switches[*i]).collect(),
            window_start: first.window_start,
            samples: shard_refs
                .iter()
                .map(|(s, i)| s.samples[*i].clone())
                .collect(),
        });

        let sum = |f: fn(&part::Counters) -> u64| -> u64 {
            self.parts.iter().map(|p| f(&p.counters)).sum()
        };
        EngineCheckpoint {
            version: CHECKPOINT_VERSION,
            cfg: sh.cfg.clone(),
            now: self.coord.now,
            events,
            next_seqs: (0..sh.pmap.n_regions as usize)
                .map(|r| self.parts[sh.pmap.part_of_region[r] as usize].next_seqs[r])
                .collect(),
            ext_seq: self.coord.ext_seq,
            conns_client,
            conns_server,
            free_conns: self.coord.free_conns.clone(),
            next_port: self.coord.next_port.clone(),
            link_free_at,
            link_backlog,
            link_counters,
            link_rate_factor,
            link_gray,
            link_gray_seq,
            health: self.parts[0].health.clone(),
            watched: sh.watched.clone(),
            util_tracked: sh.util_tracked.clone(),
            switch_occ,
            util_interval: sh.util_interval,
            util_series,
            buf_sampler,
            buffer_stats: self.coord.buffer_stats.clone(),
            emitted_packets: sum(|c| c.emitted_packets),
            delivered_packets: sum(|c| c.delivered_packets),
            completed_requests: sum(|c| c.completed_requests),
            messages_on_closed: sum(|c| c.messages_on_closed),
            stale_packets: sum(|c| c.stale_packets),
            faults_applied: sum(|c| c.faults_applied),
            reroutes: sum(|c| c.reroutes),
            reroute_failures: sum(|c| c.reroute_failures),
            failed_handshakes: sum(|c| c.failed_handshakes),
            aborted_connections: sum(|c| c.aborted_connections),
            gray_dropped_packets: sum(|c| c.gray_dropped_packets),
            record_latencies: sh.record_latencies,
            latencies: self.coord.latencies.clone(),
            processed_events: self.parts.iter().map(|p| p.processed_events).sum(),
            fast: self.coord.fast.to_ckpt(n_slots),
        }
    }

    /// Rebuilds a simulator from a checkpoint over the same topology.
    ///
    /// The restored engine is observationally identical to the one that
    /// took the checkpoint: continuing both produces byte-identical
    /// outputs, at any worker width. The tap is supplied by the caller
    /// (its state, if any, is checkpointed by the layer that owns it).
    /// Fails with [`SimError::Config`] when the checkpoint's version or
    /// dimensions do not match or its calendar is internally
    /// inconsistent.
    pub fn restore(
        topo: Arc<Topology>,
        tap: T,
        ckpt: EngineCheckpoint,
    ) -> Result<Simulator<T>, SimError> {
        let mut sim = Simulator::new(topo, ckpt.cfg.clone(), tap)?;
        let sh = &sim.shared;
        let n_links = sh.topo.links().len();
        let n_switches = sh.topo.switches().len();
        let n_hosts = sh.topo.hosts().len();
        let n_regions = sh.pmap.n_regions as usize;
        let bad = |what: &str| Err(SimError::Config(format!("checkpoint mismatch: {what}")));
        if ckpt.version != CHECKPOINT_VERSION {
            return bad("unsupported checkpoint version");
        }
        if ckpt.link_free_at.len() != n_links
            || ckpt.link_backlog.len() != n_links
            || ckpt.link_counters.len() != n_links
            || ckpt.link_rate_factor.len() != n_links
            || ckpt.link_gray.len() != n_links
            || ckpt.link_gray_seq.len() != n_links
            || ckpt.watched.len() != n_links
            || ckpt.util_tracked.len() != n_links
        {
            return bad("link state dimensions do not match the topology");
        }
        if ckpt.switch_occ.len() != n_switches {
            return bad("switch state dimensions do not match the topology");
        }
        if ckpt.next_port.len() != n_hosts {
            return bad("host state dimensions do not match the topology");
        }
        if ckpt.health.n_links() != n_links || ckpt.health.n_switches() != n_switches {
            return bad("health mask dimensions do not match the topology");
        }
        if ckpt.next_seqs.len() != n_regions {
            return bad("region count does not match the topology");
        }
        if ckpt.conns_server.len() != ckpt.conns_client.len() {
            return bad("endpoint tables disagree on slot count");
        }
        let n_slots = ckpt.conns_client.len();
        if ckpt.fast.link_free.len() != n_links
            || ckpt.fast.link_rho.len() != n_links
            || ckpt.fast.link_epoch_bytes.len() != n_links
            || ckpt.fast.link_epoch_start.len() != n_links
        {
            return bad("fast-path link state dimensions do not match the topology");
        }
        if ckpt.fast.sampled_switches.len() != n_switches {
            return bad("fast-path switch state dimensions do not match the topology");
        }
        if ckpt.fast.fast.len() != n_slots
            || ckpt.fast.established.len() != n_slots
            || ckpt.fast.routes.len() != n_slots
            || ckpt.fast.msgs.len() != n_slots
        {
            return bad("fast-path slot tables do not match the endpoint tables");
        }
        if ckpt
            .fast
            .routes
            .iter()
            .flat_map(|(f, r)| f.iter().chain(r.iter()))
            .any(|l| l.index() >= n_links)
        {
            return bad("fast-path route references an out-of-range link");
        }

        // Rebuild the slot registry from the client endpoints (the client
        // half exists for every allocated slot and persists after
        // retirement, so generation and both partitions are derivable).
        let mut slots = Vec::with_capacity(n_slots);
        for (i, c) in ckpt.conns_client.iter().enumerate() {
            let Some(c) = c else {
                return bad("allocated slot without a client endpoint");
            };
            if c.id.idx as usize != i {
                return bad("client endpoint in the wrong slot");
            }
            if c.route_fwd.iter().any(|l| l.index() >= n_links) {
                return bad("connection route references an out-of-range link");
            }
            slots.push(Slot {
                gen: c.id.gen,
                cpart: sh.pmap.part_of_host[c.key.client.index()],
                spart: sh.pmap.part_of_host[c.key.server.index()],
            });
        }
        for c in ckpt.conns_server.iter().flatten() {
            if c.route_rev.iter().any(|l| l.index() >= n_links) {
                return bad("connection route references an out-of-range link");
            }
        }

        for ev in &ckpt.events {
            if ev.at < ckpt.now {
                return bad("calendar entry before the checkpointed clock");
            }
            let issued = if ev.src == EXT_SRC {
                ckpt.ext_seq
            } else if (ev.src as usize) < n_regions {
                ckpt.next_seqs[ev.src as usize]
            } else {
                return bad("calendar entry from an unknown region");
            };
            if ev.seq >= issued {
                return bad("calendar entry with an unissued sequence number");
            }
        }

        sim.coord.now = ckpt.now;
        sim.coord.ext_seq = ckpt.ext_seq;
        sim.coord.slots = slots;
        sim.coord.free_conns = ckpt.free_conns;
        sim.coord.next_port = ckpt.next_port;
        sim.coord.buffer_stats = ckpt.buffer_stats;
        sim.coord.latencies = ckpt.latencies;
        sim.coord.fast.restore(ckpt.fast);
        sim.shared.watched = ckpt.watched;
        sim.shared.util_tracked = ckpt.util_tracked;
        sim.shared.util_interval = ckpt.util_interval;
        sim.shared.record_latencies = ckpt.record_latencies;
        let sh = &sim.shared;

        for p in &mut sim.parts {
            p.now = ckpt.now;
            p.wend = ckpt.now;
            p.health = ckpt.health.clone();
            p.clients.resize(n_slots, None);
            p.servers.resize(n_slots, None);
        }
        // Each region's counter lands on the partition that owns the
        // region under the *current* granularity — which may differ from
        // the granularity that took the checkpoint.
        for (r, &seq) in ckpt.next_seqs.iter().enumerate() {
            let owner = sh.pmap.part_of_region[r] as usize;
            sim.parts[owner].next_seqs[r] = seq;
        }
        for (i, c) in ckpt.conns_client.into_iter().enumerate() {
            let cpart = sim.coord.slots[i].cpart as usize;
            sim.parts[cpart].clients[i] = c;
        }
        for (i, c) in ckpt.conns_server.into_iter().enumerate() {
            if let Some(c) = c {
                let spart = sh.pmap.part_of_host[c.key.server.index()] as usize;
                sim.parts[spart].servers[i] = Some(c);
            }
        }
        for li in 0..n_links {
            let owner = sh.pmap.part_of_link[li] as usize;
            sim.parts[owner].link_free_at[li] = ckpt.link_free_at[li];
            sim.parts[owner].link_backlog[li] = ckpt.link_backlog[li];
            sim.parts[owner].link_counters[li] = ckpt.link_counters[li];
            sim.parts[owner].link_rate_factor[li] = ckpt.link_rate_factor[li];
            sim.parts[owner].link_gray[li] = ckpt.link_gray[li];
            sim.parts[owner].link_gray_seq[li] = ckpt.link_gray_seq[li];
        }
        for si in 0..n_switches {
            let owner = sh.pmap.part_of_switch[si] as usize;
            sim.parts[owner].switch_occ[si] = ckpt.switch_occ[si];
        }
        for (l, series) in ckpt.util_series {
            if l.index() >= n_links {
                return bad("utilization series references an out-of-range link");
            }
            let owner = sh.pmap.part_of_link[l.index()] as usize;
            sim.parts[owner].util_series[l.index()] = series;
        }
        if let Some(s) = ckpt.buf_sampler {
            if s.samples.len() != s.switches.len() {
                return bad("sampler sample/switch lists disagree");
            }
            if let Some(&sw) = s.switches.iter().find(|sw| sw.index() >= n_switches) {
                return bad(&format!("sampler references out-of-range {sw}"));
            }
            for region in 0..n_regions as u32 {
                let mut owned = Vec::new();
                let mut orig = Vec::new();
                let mut caps = Vec::new();
                let mut samples = Vec::new();
                for (i, &sw) in s.switches.iter().enumerate() {
                    if sh.pmap.region_of_switch[sw.index()] == region {
                        owned.push(sw);
                        orig.push(i as u32);
                        caps.push(sh.switch_cap[sw.index()]);
                        samples.push(s.samples[i].clone());
                    }
                }
                if owned.is_empty() {
                    continue;
                }
                let p = &mut sim.parts[sh.pmap.part_of_region[region as usize] as usize];
                p.buf_samplers.push(PartSampler {
                    region,
                    interval: s.interval,
                    window: s.window,
                    switches: owned,
                    orig,
                    caps,
                    window_start: s.window_start,
                    samples,
                });
            }
        }

        // Route every calendar entry to the partition that owns its
        // subject, then recount the housekeeping split per partition.
        // Each push re-classifies the event against its new owner's
        // cross-bound heap, so the first window after a resume is sized
        // by the same rule as any other.
        for ev in ckpt.events {
            let target = match &ev.ev {
                Ev::Transmit { pkt, hop } => {
                    let hops = pkt.route.as_slice();
                    let Some(&link) = hops.get(*hop as usize) else {
                        return bad("transmit event beyond its route");
                    };
                    sh.pmap.part_of_link[link.index()] as usize
                }
                Ev::Deliver { pkt } => sh.pmap.part_of_host[pkt.p.wire_dst().index()] as usize,
                Ev::Release { link, .. } => {
                    if *link as usize >= n_links {
                        return bad("release event for an out-of-range link");
                    }
                    sh.pmap.part_of_link[*link as usize] as usize
                }
                Ev::Rto { conn, dir } => {
                    let Some(slot) = sim.coord.slots.get(conn.index()) else {
                        return bad("timer event for an unknown slot");
                    };
                    if *dir == Dir::ClientToServer {
                        slot.cpart as usize
                    } else {
                        slot.spart as usize
                    }
                }
                Ev::Service { conn, .. } => {
                    let Some(slot) = sim.coord.slots.get(conn.index()) else {
                        return bad("service event for an unknown slot");
                    };
                    slot.spart as usize
                }
                Ev::OpenConn { conn }
                | Ev::SynRetry { conn }
                | Ev::SendMsg { conn, .. }
                | Ev::Close { conn }
                | Ev::Retire { conn } => {
                    let Some(slot) = sim.coord.slots.get(conn.index()) else {
                        return bad("connection event for an unknown slot");
                    };
                    slot.cpart as usize
                }
                Ev::PeerGone { conn, client } => {
                    let Some(slot) = sim.coord.slots.get(conn.index()) else {
                        return bad("peer-gone event for an unknown slot");
                    };
                    if *client {
                        slot.cpart as usize
                    } else {
                        slot.spart as usize
                    }
                }
                Ev::Fault { .. } => {
                    // The canonical calendar holds one copy; the live
                    // engine replicates faults into every partition so
                    // each health replica stays in lockstep.
                    for p in &mut sim.parts {
                        p.real_events += 1;
                        p.events.push(Reverse(ev.clone()));
                    }
                    continue;
                }
                Ev::BufSample { region } => {
                    if *region as usize >= n_regions {
                        return bad("buffer sample for an unknown region");
                    }
                    sh.pmap.part_of_region[*region as usize] as usize
                }
            };
            let p = &mut sim.parts[target];
            if !matches!(ev.ev, Ev::BufSample { .. }) {
                p.real_events += 1;
            }
            p.note_cross(sh, ev.at, &ev.ev);
            p.events.push(Reverse(ev));
        }

        // Flat totals land on partition 0; reports only ever read sums.
        sim.parts[0].counters = part::Counters {
            emitted_packets: ckpt.emitted_packets,
            delivered_packets: ckpt.delivered_packets,
            completed_requests: ckpt.completed_requests,
            messages_on_closed: ckpt.messages_on_closed,
            stale_packets: ckpt.stale_packets,
            faults_applied: ckpt.faults_applied,
            reroutes: ckpt.reroutes,
            reroute_failures: ckpt.reroute_failures,
            failed_handshakes: ckpt.failed_handshakes,
            aborted_connections: ckpt.aborted_connections,
            gray_dropped_packets: ckpt.gray_dropped_packets,
        };
        sim.parts[0].processed_events = ckpt.processed_events;
        for p in &mut sim.parts {
            p.last_at = ckpt.now;
        }
        Ok(sim)
    }
}

// ---------------------------------------------------------------------
// Invariant auditor
// ---------------------------------------------------------------------

/// One violated runtime invariant, with the numbers that violated it.
#[derive(Debug, Clone, Serialize)]
pub enum AuditViolation {
    /// Packet conservation broke: every packet the engine ever emitted
    /// must be delivered, dropped at admission, fault-dropped, counted
    /// stale, or still in flight on the calendar.
    PacketConservation {
        /// Packets handed to the network.
        emitted: u64,
        /// Packets delivered to hosts.
        delivered: u64,
        /// Packets dropped at buffer admission.
        dropped: u64,
        /// Packets lost to injected faults.
        fault_dropped: u64,
        /// In-flight packets discarded against recycled connection slots.
        stale: u64,
        /// Transmit/Deliver events still on the calendar.
        in_flight: u64,
    },
    /// A link transmitted more bytes than its line rate allows in the time
    /// it has been busy.
    LinkOverDelivery {
        /// The offending link.
        link: LinkId,
        /// Bytes the link claims to have serialized.
        tx_bytes: u64,
        /// The rate x elapsed bound (with per-packet rounding slack).
        bound_bytes: u64,
    },
    /// A calendar entry is timestamped before the current clock.
    CalendarInPast {
        /// The stale entry's timestamp.
        event_at: SimTime,
        /// The engine clock.
        now: SimTime,
    },
    /// Telemetry accounting broke: packets offered to a tap must equal
    /// captured + overflowed + deliberately dropped. (Emitted by the
    /// capture layer's auditor; the engine itself never raises it.)
    TelemetryAccounting {
        /// Packets offered to the collector.
        offered: u64,
        /// Packets retained.
        captured: u64,
        /// Packets lost to capacity overflow.
        overflow: u64,
        /// Packets lost to an injected telemetry fault.
        fault_dropped: u64,
    },
    /// Flow conservation broke on the fast path: every byte offered to a
    /// flow-mode message must complete, abort, or still be in flight on
    /// the fast calendar.
    FlowConservation {
        /// Bytes offered to fast-path messages.
        offered: u64,
        /// Bytes whose transfers completed.
        completed: u64,
        /// Bytes lost to fault-driven aborts.
        aborted: u64,
        /// Bytes still pending on the fast calendar.
        in_flight: u64,
    },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::PacketConservation {
                emitted,
                delivered,
                dropped,
                fault_dropped,
                stale,
                in_flight,
            } => write!(
                f,
                "packet conservation: emitted {emitted} != delivered {delivered} \
                 + dropped {dropped} + fault-dropped {fault_dropped} + stale {stale} \
                 + in-flight {in_flight}"
            ),
            AuditViolation::LinkOverDelivery {
                link,
                tx_bytes,
                bound_bytes,
            } => write!(
                f,
                "{link} transmitted {tx_bytes} bytes, above its rate x elapsed \
                 bound of {bound_bytes}"
            ),
            AuditViolation::CalendarInPast { event_at, now } => {
                write!(f, "calendar entry at {event_at} is before the clock {now}")
            }
            AuditViolation::TelemetryAccounting {
                offered,
                captured,
                overflow,
                fault_dropped,
            } => write!(
                f,
                "telemetry accounting: offered {offered} != captured {captured} \
                 + overflow {overflow} + fault-dropped {fault_dropped}"
            ),
            AuditViolation::FlowConservation {
                offered,
                completed,
                aborted,
                in_flight,
            } => write!(
                f,
                "flow conservation: offered {offered} bytes != completed {completed} \
                 + aborted {aborted} + in-flight {in_flight}"
            ),
        }
    }
}

/// Structured report of every invariant violated at one audit point.
///
/// Stringly loud by design: `Display` renders each violation with its
/// numbers, and the report serializes to JSON for machine consumption.
#[derive(Debug, Clone, Serialize)]
pub struct AuditReport {
    /// Virtual time the audit ran at.
    pub at: SimTime,
    /// Every invariant that did not hold.
    pub violations: Vec<AuditViolation>,
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "invariant audit at {} found {} violation(s):",
            self.at,
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for AuditReport {}

/// Audit body shared by [`Simulator::audit`] and the per-barrier hook
/// (which only has the partition slice, not the whole simulator).
fn audit_parts(shared: &SharedCtx, parts: &[Partition], now: SimTime) -> Result<(), AuditReport> {
    let mut violations = Vec::new();

    let mut in_flight = 0u64;
    for p in parts {
        for r in p.events.iter() {
            let s = &r.0;
            if matches!(s.ev, Ev::Transmit { .. } | Ev::Deliver { .. }) {
                in_flight += 1;
            }
            if s.at < p.now {
                violations.push(AuditViolation::CalendarInPast {
                    event_at: s.at,
                    now: p.now,
                });
            }
        }
        for outbox in &p.outbox {
            for s in outbox {
                if matches!(s.ev, Ev::Transmit { .. } | Ev::Deliver { .. }) {
                    in_flight += 1;
                }
            }
        }
    }
    let sum_links = |f: fn(&LinkCounters) -> u64| -> u64 {
        shared
            .pmap
            .part_of_link
            .iter()
            .enumerate()
            .map(|(li, &owner)| f(&parts[owner as usize].link_counters[li]))
            .sum()
    };
    let dropped = sum_links(|c| c.drop_packets);
    let fault_dropped = sum_links(|c| c.fault_drop_packets);
    let sum = |f: fn(&part::Counters) -> u64| -> u64 { parts.iter().map(|p| f(&p.counters)).sum() };
    let emitted = sum(|c| c.emitted_packets);
    let delivered = sum(|c| c.delivered_packets);
    let stale = sum(|c| c.stale_packets);
    let accounted = delivered + dropped + fault_dropped + stale + in_flight;
    if emitted != accounted {
        violations.push(AuditViolation::PacketConservation {
            emitted,
            delivered,
            dropped,
            fault_dropped,
            stale,
            in_flight,
        });
    }

    for (li, &owner) in shared.pmap.part_of_link.iter().enumerate() {
        let p = &parts[owner as usize];
        let c = &p.link_counters[li];
        if c.tx_bytes == 0 {
            continue;
        }
        // The link serializes back to back, so its cumulative bytes fit
        // under nominal-rate x the time it has been committed to
        // (`link_free_at`), plus up to one nanosecond of rounding per
        // packet. Degraded rates only lower throughput (factor <= 1),
        // so the nominal rate stays a sound bound.
        let bytes_per_ns = shared.link_gbps[li] * 0.125;
        let busy_ns = p.link_free_at[li].as_nanos();
        let bound = bytes_per_ns * (busy_ns + c.tx_packets + 1) as f64;
        if c.tx_bytes as f64 > bound {
            violations.push(AuditViolation::LinkOverDelivery {
                link: LinkId(li as u32),
                tx_bytes: c.tx_bytes,
                bound_bytes: bound as u64,
            });
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(AuditReport {
            at: now,
            violations,
        })
    }
}

impl<T: PacketTap> Simulator<T> {
    /// Checks the engine's conservation laws, failing with a structured
    /// [`AuditReport`] when any are violated:
    ///
    /// 1. packets emitted = delivered + dropped + fault-dropped + stale +
    ///    in-flight (calendar Transmit/Deliver entries);
    /// 2. per-link transmitted bytes <= line rate x busy time (plus one
    ///    nanosecond of serialization-rounding slack per packet);
    /// 3. every partition's event calendar is monotonic (no entry before
    ///    its clock).
    ///
    /// O(events + links); intended to run at checkpoint boundaries, not in
    /// the hot loop.
    ///
    /// When the hybrid fast path is active a fourth law joins the list:
    /// bytes offered to flow-mode messages = completed + aborted +
    /// in-flight on the fast calendar.
    pub fn audit(&self) -> Result<(), AuditReport> {
        let mut result = audit_parts(&self.shared, &self.parts, self.coord.now);
        let fc = &self.coord.fast.counters;
        let in_flight = self.coord.fast.bytes_in_flight();
        if fc.bytes_offered != fc.bytes_completed + fc.bytes_aborted + in_flight {
            let v = AuditViolation::FlowConservation {
                offered: fc.bytes_offered,
                completed: fc.bytes_completed,
                aborted: fc.bytes_aborted,
                in_flight,
            };
            match &mut result {
                Ok(()) => {
                    result = Err(AuditReport {
                        at: self.coord.now,
                        violations: vec![v],
                    });
                }
                Err(report) => report.violations.push(v),
            }
        }
        result
    }
}
