//! The discrete-event engine.
//!
//! A calendar of timestamped events drives packets across their routes.
//! Each directed link is a FIFO: serialization starts when the link frees,
//! and switch egress queues admit packets against a shared buffer pool
//! with dynamic-threshold sharing (see [`crate::config::BufferConfig`]).
//!
//! The engine is single-threaded and fully deterministic: event ties are
//! broken by insertion order, and no randomness exists below the workload
//! layer.

use crate::config::SimConfig;
use crate::conn::{Conn, ConnPhase, DirState, MsgMeta};
use crate::faults::{FaultKind, FaultPlan};
use crate::packet::{ConnId, Dir, FlowKey, Packet, PacketKind};
use crate::tap::PacketTap;
use serde::{Deserialize, Serialize};
use sonet_topology::{HostId, LinkHealth, LinkId, Node, SwitchId, Topology};
use sonet_util::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::sync::Arc;

/// Errors surfaced by the simulator API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The requested time is in the simulated past.
    TimeInPast {
        /// The rejected timestamp.
        requested: SimTime,
        /// The current simulation clock.
        now: SimTime,
    },
    /// Unknown connection handle.
    NoSuchConn(ConnId),
    /// The connection is closed.
    ConnClosed(ConnId),
    /// Source and destination host are the same.
    SelfConnection(HostId),
    /// A message must carry at least one request byte.
    EmptyRequest,
    /// Bad configuration.
    Config(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TimeInPast { requested, now } => {
                write!(
                    f,
                    "requested time {requested} is before simulation clock {now}"
                )
            }
            SimError::NoSuchConn(c) => write!(f, "unknown connection {c}"),
            SimError::ConnClosed(c) => write!(f, "{c} is closed"),
            SimError::SelfConnection(h) => write!(f, "{h} cannot connect to itself"),
            SimError::EmptyRequest => write!(f, "messages must carry at least 1 request byte"),
            SimError::Config(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Per-link transmit/drop counters (the SNMP-style counters of §6.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkCounters {
    /// Bytes successfully serialized onto the link.
    pub tx_bytes: u64,
    /// Packets successfully serialized onto the link.
    pub tx_packets: u64,
    /// Bytes dropped at admission (egress drops).
    pub drop_bytes: u64,
    /// Packets dropped at admission.
    pub drop_packets: u64,
    /// Bytes lost to injected faults (dead link or dead switch endpoint).
    pub fault_drop_bytes: u64,
    /// Packets lost to injected faults.
    pub fault_drop_packets: u64,
}

/// Aggregated buffer occupancy for one switch over one aggregation window
/// (the per-second median/max series of Fig 15a).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BufferWindowStat {
    /// Which switch.
    pub switch: SwitchId,
    /// Window start time.
    pub window_start: SimTime,
    /// Median sampled occupancy (bytes).
    pub median: u64,
    /// Maximum sampled occupancy (bytes).
    pub max: u64,
    /// Mean sampled occupancy (bytes).
    pub mean: f64,
    /// Number of samples in the window.
    pub samples: u32,
    /// Shared pool capacity (bytes), for normalization.
    pub capacity: u64,
}

/// Everything the engine hands back at the end of a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimOutputs {
    /// Per-link counters, indexed by `LinkId`.
    pub link_counters: Vec<LinkCounters>,
    /// Per-interval transmitted bytes for utilization-tracked links.
    pub util_series: HashMap<LinkId, Vec<u64>>,
    /// Interval used for `util_series`.
    pub util_interval: Option<SimDuration>,
    /// Buffer occupancy windows, in time order, for sampled switches.
    pub buffer_stats: Vec<BufferWindowStat>,
    /// Total packets handed to the network (first-hop transmissions
    /// scheduled), the source side of the conservation law the auditor
    /// checks: emitted = delivered + dropped + fault-dropped + stale +
    /// in-flight.
    pub emitted_packets: u64,
    /// Total packets delivered to hosts.
    pub delivered_packets: u64,
    /// Total application messages whose request fully arrived at servers.
    pub completed_requests: u64,
    /// Messages rejected because their connection closed first.
    pub messages_on_closed: u64,
    /// In-flight packets discarded because their connection slot was
    /// recycled mid-flight (only possible after an explicit close).
    pub stale_packets: u64,
    /// Fault events the engine applied.
    pub faults_applied: u64,
    /// Connections successfully re-hashed onto a healthy path after a
    /// fault broke their pinned route.
    pub reroutes: u64,
    /// Connections whose route broke with no healthy alternative (they
    /// keep the dead path and eventually abort).
    pub reroute_failures: u64,
    /// Handshakes abandoned after the SYN retry cap.
    pub failed_handshakes: u64,
    /// Established connections aborted by the consecutive-RTO cap while
    /// their route was broken.
    pub aborted_connections: u64,
    /// End-to-end request latencies (request issue → response fully
    /// received, or → request fully received for one-way messages), when
    /// [`Simulator::record_latencies`] was enabled.
    pub rpc_latencies: Vec<SimDuration>,
    /// Final simulation clock.
    pub ended_at: SimTime,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Ev {
    /// Put `pkt` on hop `hop` of its route.
    Transmit { pkt: Packet, hop: u8 },
    /// `pkt` fully arrived at its destination host.
    Deliver { pkt: Packet },
    /// A packet finished serializing: release buffer/backlog accounting.
    Release { link: u32, bytes: u32 },
    /// Retransmission timer.
    Rto { conn: ConnId, dir: Dir },
    /// Server finished computing the response to message `msg`.
    Service { conn: ConnId, msg: u32 },
    /// Emit the SYN for a connection.
    OpenConn { conn: ConnId },
    /// Re-emit the SYN if the handshake has not completed yet.
    SynRetry { conn: ConnId },
    /// Application queues a message on a connection.
    SendMsg {
        conn: ConnId,
        req: u64,
        meta: MsgMeta,
    },
    /// Application closes a connection.
    Close { conn: ConnId },
    /// Release a closed connection's slot for reuse after quarantine.
    Retire { conn: ConnId },
    /// An injected fault takes effect.
    Fault { kind: FaultKind },
    /// Periodic buffer occupancy sample.
    BufSample,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct BufSampler {
    interval: SimDuration,
    window: SimDuration,
    switches: Vec<SwitchId>,
    window_start: SimTime,
    /// One sample vector per sampled switch.
    samples: Vec<Vec<u64>>,
}

/// The packet-level simulator. See the crate docs for the model.
pub struct Simulator<T: PacketTap> {
    topo: Arc<Topology>,
    cfg: SimConfig,
    now: SimTime,
    events: BinaryHeap<Reverse<Scheduled>>,
    next_seq: u64,
    conns: Vec<Conn>,
    /// Slot indices available for reuse (quarantine elapsed).
    free_conns: Vec<u32>,
    next_port: Vec<u16>,
    // Link state, indexed by LinkId.
    link_free_at: Vec<SimTime>,
    link_backlog: Vec<u64>,
    link_counters: Vec<LinkCounters>,
    link_gbps: Vec<f64>,
    link_prop: Vec<u64>,
    /// Per-link line-rate multiplier (1.0 nominal; lowered by
    /// [`FaultKind::DegradeLink`]).
    link_rate_factor: Vec<f64>,
    /// Live/dead state of links and switches under injected faults.
    health: LinkHealth,
    /// Switch index if the link's transmitter is a switch.
    link_from_switch: Vec<Option<u32>>,
    watched: Vec<bool>,
    util_tracked: Vec<bool>,
    // Switch state, indexed by SwitchId.
    switch_occ: Vec<u64>,
    switch_cap: Vec<u64>,
    switch_alpha: Vec<f64>,
    // Telemetry.
    tap: T,
    util_interval: Option<SimDuration>,
    /// Per-link utilization bins, dense-indexed by link (empty for
    /// untracked links): the transmit path increments `util_series[li]`
    /// directly instead of hashing a `LinkId` per packet. The map-shaped
    /// views in [`SimOutputs`] and [`EngineCheckpoint`] are built once at
    /// `finish`/`checkpoint` time.
    util_series: Vec<Vec<u64>>,
    buf_sampler: Option<BufSampler>,
    buffer_stats: Vec<BufferWindowStat>,
    // Totals.
    emitted_packets: u64,
    delivered_packets: u64,
    completed_requests: u64,
    messages_on_closed: u64,
    stale_packets: u64,
    faults_applied: u64,
    reroutes: u64,
    reroute_failures: u64,
    failed_handshakes: u64,
    aborted_connections: u64,
    record_latencies: bool,
    latencies: Vec<SimDuration>,
    /// Events in the heap that are not periodic buffer samples; lets
    /// [`Simulator::run_to_quiescence`] terminate while sampling is armed.
    real_events: u64,
    /// Events handled since construction (or since the state captured by
    /// the restored checkpoint began); the unit of event-count budgets.
    processed_events: u64,
}

impl<T: PacketTap> Simulator<T> {
    /// Creates a simulator over `topo` with the given transport/buffer
    /// configuration, delivering watched-link packets to `tap`.
    pub fn new(topo: Arc<Topology>, cfg: SimConfig, tap: T) -> Result<Simulator<T>, SimError> {
        cfg.validate().map_err(SimError::Config)?;
        let n_links = topo.links().len();
        let n_switches = topo.switches().len();
        let n_hosts = topo.hosts().len();

        let mut link_from_switch = Vec::with_capacity(n_links);
        let mut link_gbps = Vec::with_capacity(n_links);
        let mut link_prop = Vec::with_capacity(n_links);
        for link in topo.links() {
            link_from_switch.push(match link.from {
                Node::Switch(s) => Some(s.0),
                Node::Host(_) => None,
            });
            link_gbps.push(link.gbps);
            link_prop.push(link.propagation_ns);
        }
        let mut switch_cap = Vec::with_capacity(n_switches);
        let mut switch_alpha = Vec::with_capacity(n_switches);
        for sw in topo.switches() {
            let b = cfg.buffer_for(sw.kind);
            switch_cap.push(b.shared_bytes);
            switch_alpha.push(b.alpha);
        }

        let health = LinkHealth::new(&topo);
        Ok(Simulator {
            topo,
            cfg,
            now: SimTime::ZERO,
            events: BinaryHeap::new(),
            next_seq: 0,
            conns: Vec::new(),
            free_conns: Vec::new(),
            next_port: vec![32768; n_hosts],
            link_free_at: vec![SimTime::ZERO; n_links],
            link_backlog: vec![0; n_links],
            link_counters: vec![LinkCounters::default(); n_links],
            link_gbps,
            link_prop,
            link_rate_factor: vec![1.0; n_links],
            health,
            link_from_switch,
            watched: vec![false; n_links],
            util_tracked: vec![false; n_links],
            switch_occ: vec![0; n_switches],
            switch_cap,
            switch_alpha,
            tap,
            util_interval: None,
            util_series: vec![Vec::new(); n_links],
            buf_sampler: None,
            buffer_stats: Vec::new(),
            emitted_packets: 0,
            delivered_packets: 0,
            completed_requests: 0,
            messages_on_closed: 0,
            stale_packets: 0,
            faults_applied: 0,
            reroutes: 0,
            reroute_failures: 0,
            failed_handshakes: 0,
            aborted_connections: 0,
            record_latencies: false,
            latencies: Vec::new(),
            real_events: 0,
            processed_events: 0,
        })
    }

    /// Current simulation clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Transport configuration in effect.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Starts delivering packets on `link` to the tap.
    pub fn watch_link(&mut self, link: LinkId) {
        self.watched[link.index()] = true;
    }

    /// Mutable access to the tap (e.g. to degrade a telemetry collector
    /// mid-run when a fault plan says so).
    pub fn tap_mut(&mut self) -> &mut T {
        &mut self.tap
    }

    /// Shared access to the tap (e.g. to checkpoint its state).
    pub fn tap(&self) -> &T {
        &self.tap
    }

    /// Events handled so far; run supervisors use this for event-count
    /// budgets.
    pub fn processed_events(&self) -> u64 {
        self.processed_events
    }

    /// Events still on the calendar (including housekeeping samples).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Current link/switch health under the faults applied so far.
    pub fn health(&self) -> &LinkHealth {
        &self.health
    }

    /// Schedules one network fault. Telemetry faults are rejected — they
    /// belong to the capture layer, not the engine.
    pub fn inject_fault(&mut self, at: SimTime, kind: FaultKind) -> Result<(), SimError> {
        if at < self.now {
            return Err(SimError::TimeInPast {
                requested: at,
                now: self.now,
            });
        }
        if kind.is_telemetry() {
            return Err(SimError::Config(
                "telemetry faults are applied by the capture layer, not the engine".into(),
            ));
        }
        let n_links = self.topo.links().len();
        let n_switches = self.topo.switches().len();
        match kind {
            FaultKind::LinkDown(l) | FaultKind::LinkUp(l) if l.index() >= n_links => {
                return Err(SimError::Config(format!("{l} is out of range")));
            }
            FaultKind::SwitchDown(s) | FaultKind::SwitchUp(s) if s.index() >= n_switches => {
                return Err(SimError::Config(format!("{s} is out of range")));
            }
            FaultKind::DegradeLink { link, rate_factor } => {
                if link.index() >= n_links {
                    return Err(SimError::Config(format!("{link} is out of range")));
                }
                if !(rate_factor > 0.0 && rate_factor <= 1.0) {
                    return Err(SimError::Config(format!(
                        "rate factor {rate_factor} outside (0, 1]"
                    )));
                }
            }
            _ => {}
        }
        self.schedule(at, Ev::Fault { kind });
        Ok(())
    }

    /// Schedules every *network* event of `plan` (telemetry events are
    /// skipped; the capture layer replays those against its taps). Events
    /// in the simulated past are rejected, leaving earlier ones scheduled.
    pub fn inject_faults(&mut self, plan: &FaultPlan) -> Result<(), SimError> {
        for ev in plan.network_events() {
            self.inject_fault(ev.at, ev.kind)?;
        }
        Ok(())
    }

    /// Live view of a link's counters (SNMP-style mid-run poll; the full
    /// vector is also returned by [`Simulator::finish`]).
    pub fn link_counters(&self, link: LinkId) -> LinkCounters {
        self.link_counters[link.index()]
    }

    /// Enables end-to-end RPC latency recording (one sample per completed
    /// message; disabled by default to keep long runs lean).
    pub fn record_latencies(&mut self, on: bool) {
        self.record_latencies = on;
    }

    /// Records per-`interval` transmitted bytes for each given link
    /// (powers utilization time series such as Fig 15b).
    pub fn track_utilization(
        &mut self,
        interval: SimDuration,
        links: &[LinkId],
    ) -> Result<(), SimError> {
        if interval.is_zero() {
            return Err(SimError::Config(
                "utilization interval must be positive".into(),
            ));
        }
        if let Some(&l) = links.iter().find(|l| l.index() >= self.topo.links().len()) {
            return Err(SimError::Config(format!("{l} is out of range")));
        }
        self.util_interval = Some(interval);
        for &l in links {
            self.util_tracked[l.index()] = true;
        }
        Ok(())
    }

    /// Samples the shared-buffer occupancy of `switches` every `interval`,
    /// aggregating (median/max/mean) per `window` — the Fig 15a pipeline:
    /// 10-µs samples aggregated per second.
    pub fn sample_buffers(
        &mut self,
        interval: SimDuration,
        window: SimDuration,
        switches: Vec<SwitchId>,
    ) -> Result<(), SimError> {
        if interval.is_zero() || window.is_zero() {
            return Err(SimError::Config("sampler periods must be positive".into()));
        }
        if let Some(&s) = switches
            .iter()
            .find(|s| s.index() >= self.topo.switches().len())
        {
            return Err(SimError::Config(format!("{s} is out of range")));
        }
        let n = switches.len();
        self.buf_sampler = Some(BufSampler {
            interval,
            window,
            switches,
            window_start: self.now,
            samples: vec![Vec::new(); n],
        });
        self.schedule(self.now, Ev::BufSample);
        Ok(())
    }

    fn schedule(&mut self, at: SimTime, ev: Ev) {
        debug_assert!(at >= self.now, "scheduling into the past");
        if !matches!(ev, Ev::BufSample) {
            self.real_events += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Reverse(Scheduled { at, seq, ev }));
    }

    /// Opens a TCP-like connection from `client` to `server:server_port`
    /// at absolute time `at` (SYN emission time). Routes are pinned by the
    /// flow's ECMP hash, as hardware hashing pins real flows.
    pub fn open_connection(
        &mut self,
        at: SimTime,
        client: HostId,
        server: HostId,
        server_port: u16,
    ) -> Result<ConnId, SimError> {
        if at < self.now {
            return Err(SimError::TimeInPast {
                requested: at,
                now: self.now,
            });
        }
        if client == server {
            return Err(SimError::SelfConnection(client));
        }
        let port = self.next_port[client.index()];
        self.next_port[client.index()] = port.checked_add(1).unwrap_or(32768);
        let key = FlowKey {
            client,
            server,
            client_port: port,
            server_port,
        };
        let hash = key.ecmp_hash();
        let id = match self.free_conns.pop() {
            Some(idx) => ConnId {
                idx,
                gen: self.conns[idx as usize].id.gen + 1,
            },
            None => ConnId {
                idx: self.conns.len() as u32,
                gen: 0,
            },
        };
        // Route around current faults where possible; when no healthy
        // path exists, pin the nominal route anyway — the SYN dies on the
        // dead hop and the handshake gives up after its retry budget, which
        // is how a real connect() to an unreachable server behaves.
        let pick_route = |src: HostId, dst: HostId| {
            self.topo
                .route_healthy(src, dst, hash, &self.health)
                .or_else(|_| self.topo.route(src, dst, hash))
                .expect("distinct endpoints were checked above")
        };
        let conn = Conn {
            id,
            key,
            phase: ConnPhase::Opening,
            route_fwd: pick_route(client, server),
            route_rev: pick_route(server, client),
            c2s: DirState::default(),
            s2c: DirState::default(),
            msg_meta: Vec::new(),
            resp_req_issued: Vec::new(),
            pre_open: Vec::new(),
            next_server_msg: 0,
            syn_attempts: 0,
            opened_at: at,
        };
        if (id.idx as usize) < self.conns.len() {
            self.conns[id.idx as usize] = conn;
        } else {
            self.conns.push(conn);
        }
        self.schedule(at, Ev::OpenConn { conn: id });
        Ok(id)
    }

    /// Queues a request/response exchange on `conn` at absolute time `at`:
    /// the client sends `request_bytes`; once the full request reaches the
    /// server it works for `service_time` and then sends `response_bytes`
    /// back (zero for one-way transfers).
    pub fn send_message(
        &mut self,
        conn: ConnId,
        at: SimTime,
        request_bytes: u64,
        response_bytes: u64,
        service_time: SimDuration,
    ) -> Result<(), SimError> {
        if at < self.now {
            return Err(SimError::TimeInPast {
                requested: at,
                now: self.now,
            });
        }
        if request_bytes == 0 {
            return Err(SimError::EmptyRequest);
        }
        let c = self
            .conns
            .get(conn.index())
            .filter(|c| c.id == conn)
            .ok_or(SimError::NoSuchConn(conn))?;
        if c.phase == ConnPhase::Closed {
            return Err(SimError::ConnClosed(conn));
        }
        self.schedule(
            at,
            Ev::SendMsg {
                conn,
                req: request_bytes,
                meta: MsgMeta {
                    response_bytes,
                    service_time,
                    issued_at: at,
                },
            },
        );
        Ok(())
    }

    /// Closes `conn` at absolute time `at` (FIN emission).
    pub fn close_connection(&mut self, conn: ConnId, at: SimTime) -> Result<(), SimError> {
        if at < self.now {
            return Err(SimError::TimeInPast {
                requested: at,
                now: self.now,
            });
        }
        if self.conns.get(conn.index()).map(|c| c.id) != Some(conn) {
            return Err(SimError::NoSuchConn(conn));
        }
        self.schedule(at, Ev::Close { conn });
        Ok(())
    }

    /// Runs the event loop until the clock reaches `until` (all events at
    /// or before `until` are processed; the clock then rests at `until`).
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(Reverse(head)) = self.events.peek() {
            if head.at > until {
                break;
            }
            let Reverse(Scheduled { at, ev, .. }) = self.events.pop().expect("peeked");
            self.now = at;
            if !matches!(ev, Ev::BufSample) {
                self.real_events -= 1;
            }
            self.processed_events += 1;
            self.handle(ev);
        }
        self.now = until;
    }

    /// Drains every remaining event other than the periodic buffer
    /// sampler, which reschedules itself forever and would otherwise keep
    /// the calendar non-empty (use after the last injection when a
    /// natural quiesce is wanted rather than a fixed horizon).
    pub fn run_to_quiescence(&mut self) {
        while self.real_events > 0 {
            let Some(Reverse(Scheduled { at, ev, .. })) = self.events.pop() else {
                break;
            };
            self.now = at;
            if !matches!(ev, Ev::BufSample) {
                self.real_events -= 1;
            }
            self.processed_events += 1;
            self.handle(ev);
        }
    }

    /// Finishes the run: flushes telemetry windows and returns the outputs
    /// together with the tap.
    pub fn finish(mut self) -> (SimOutputs, T) {
        self.flush_buffer_window(true);
        // Re-shape the dense per-link bins into the map the analysis layer
        // indexes by LinkId; only registered links appear, as before.
        let util_series: HashMap<LinkId, Vec<u64>> = self
            .util_series
            .into_iter()
            .enumerate()
            .filter(|(i, _)| self.util_tracked[*i])
            .map(|(i, series)| (LinkId(i as u32), series))
            .collect();
        let outputs = SimOutputs {
            link_counters: self.link_counters,
            util_series,
            util_interval: self.util_interval,
            buffer_stats: self.buffer_stats,
            emitted_packets: self.emitted_packets,
            delivered_packets: self.delivered_packets,
            completed_requests: self.completed_requests,
            messages_on_closed: self.messages_on_closed,
            stale_packets: self.stale_packets,
            faults_applied: self.faults_applied,
            reroutes: self.reroutes,
            reroute_failures: self.reroute_failures,
            failed_handshakes: self.failed_handshakes,
            aborted_connections: self.aborted_connections,
            rpc_latencies: std::mem::take(&mut self.latencies),
            ended_at: self.now,
        };
        (outputs, self.tap)
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Transmit { pkt, hop } => self.on_transmit(pkt, hop),
            Ev::Deliver { pkt } => self.on_deliver(pkt),
            Ev::Release { link, bytes } => {
                self.link_backlog[link as usize] -= bytes as u64;
                if let Some(sw) = self.link_from_switch[link as usize] {
                    self.switch_occ[sw as usize] -= bytes as u64;
                }
            }
            Ev::Rto { conn, dir } => {
                if self.conn_live(conn) {
                    self.on_rto(conn, dir);
                }
            }
            Ev::Service { conn, msg } => {
                if self.conn_live(conn) {
                    self.on_service(conn, msg);
                }
            }
            Ev::OpenConn { conn } => self.on_open(conn),
            Ev::SynRetry { conn } => {
                if self.conn_live(conn) && self.conns[conn.index()].phase == ConnPhase::Opening {
                    self.on_open(conn);
                }
            }
            Ev::SendMsg { conn, req, meta } => {
                if self.conn_live(conn) {
                    self.on_send_msg(conn, req, meta);
                }
            }
            Ev::Close { conn } => {
                if self.conn_live(conn) {
                    self.on_close(conn);
                }
            }
            Ev::Retire { conn } => {
                if self.conn_live(conn) {
                    self.free_conns.push(conn.idx);
                }
            }
            Ev::Fault { kind } => self.on_fault(kind),
            Ev::BufSample => self.on_buf_sample(),
        }
    }

    /// True if `conn` refers to the current occupant of its slot.
    fn conn_live(&self, conn: ConnId) -> bool {
        self.conns.get(conn.index()).is_some_and(|c| c.id == conn)
    }

    fn on_transmit(&mut self, pkt: Packet, hop: u8) {
        if !self.conn_live(pkt.conn) {
            self.stale_packets += 1;
            return;
        }
        let route = self.conns[pkt.conn.index()].route(pkt.dir);
        let link = route[hop as usize];
        let last_hop = hop as usize + 1 == route.len();
        let li = link.index();
        let w = pkt.wire_bytes;

        // A dead link (or dead switch endpoint) eats the packet; the
        // transport's retransmission machinery — not the network — is
        // responsible for recovery, exactly as with a real outage.
        if !self.health.all_up() && !self.health.link_usable(&self.topo, link) {
            self.link_counters[li].fault_drop_bytes += w as u64;
            self.link_counters[li].fault_drop_packets += 1;
            return;
        }

        // Shared-buffer admission at switch egress.
        if let Some(sw) = self.link_from_switch[li] {
            let swi = sw as usize;
            let free = self.switch_cap[swi].saturating_sub(self.switch_occ[swi]);
            let dt_limit = (self.switch_alpha[swi] * free as f64) as u64;
            if self.link_backlog[li] + w as u64 > dt_limit
                || self.switch_occ[swi] + w as u64 > self.switch_cap[swi]
            {
                self.link_counters[li].drop_bytes += w as u64;
                self.link_counters[li].drop_packets += 1;
                return;
            }
            self.switch_occ[swi] += w as u64;
            self.link_backlog[li] += w as u64;
        } else {
            self.link_backlog[li] += w as u64;
        }

        let start = self.now.max(self.link_free_at[li]);
        let gbps = self.link_gbps[li] * self.link_rate_factor[li];
        let end = start + SimDuration::for_bytes_at_gbps(w as u64, gbps);
        self.link_free_at[li] = end;
        self.link_counters[li].tx_bytes += w as u64;
        self.link_counters[li].tx_packets += 1;
        self.schedule(
            end,
            Ev::Release {
                link: li as u32,
                bytes: w,
            },
        );

        if self.watched[li] {
            self.tap.on_packet(end, link, &pkt);
        }
        if self.util_tracked[li] {
            let interval = self.util_interval.expect("tracked links imply interval");
            let idx = end.bin_index(interval) as usize;
            let series = &mut self.util_series[li];
            if series.len() <= idx {
                series.resize(idx + 1, 0);
            }
            series[idx] += w as u64;
        }

        let arrive = end + SimDuration::from_nanos(self.link_prop[li]);
        if last_hop {
            self.schedule(arrive, Ev::Deliver { pkt });
        } else {
            self.schedule(arrive, Ev::Transmit { pkt, hop: hop + 1 });
        }
    }

    fn on_deliver(&mut self, pkt: Packet) {
        if !self.conn_live(pkt.conn) {
            self.stale_packets += 1;
            return;
        }
        // The access link died while the packet was propagating on it:
        // the packet is lost with the link.
        if !self.health.all_up() {
            let route = self.conns[pkt.conn.index()].route(pkt.dir);
            let last = *route.last().expect("routes are non-empty");
            if !self.health.link_usable(&self.topo, last) {
                self.link_counters[last.index()].fault_drop_bytes += pkt.wire_bytes as u64;
                self.link_counters[last.index()].fault_drop_packets += 1;
                return;
            }
        }
        self.delivered_packets += 1;
        match pkt.kind {
            PacketKind::Syn => {
                // Server accepts immediately.
                self.emit(pkt.conn, Dir::ServerToClient, PacketKind::SynAck, 0, 0, 0);
            }
            PacketKind::SynAck => {
                let conn = &mut self.conns[pkt.conn.index()];
                if conn.phase == ConnPhase::Opening {
                    conn.phase = ConnPhase::Open;
                    let queued = std::mem::take(&mut conn.pre_open);
                    for (req, meta) in queued {
                        self.queue_request(pkt.conn, req, meta);
                    }
                }
            }
            PacketKind::Data { last_of_msg } => self.on_data(pkt, last_of_msg),
            PacketKind::Ack | PacketKind::FinAck => self.on_ack(pkt),
            PacketKind::Fin => {
                let conn = &mut self.conns[pkt.conn.index()];
                conn.phase = ConnPhase::Closed;
                let received = conn.dir_mut(pkt.dir).received;
                self.emit(pkt.conn, pkt.dir.flip(), PacketKind::FinAck, received, 0, 0);
            }
        }
    }

    fn on_data(&mut self, pkt: Packet, last_of_msg: bool) {
        let ci = pkt.conn.index();
        let ack_every = self.cfg.ack_every;
        let (send_ack, fresh_boundary) = {
            let rs = self.conns[ci].dir_mut(pkt.dir);
            if pkt.seq == rs.received {
                rs.received += 1;
                rs.unacked_by_us += 1;
                let boundary = last_of_msg;
                let fresh_boundary = boundary && rs.last_msg_completed.is_none_or(|m| pkt.msg > m);
                if fresh_boundary {
                    rs.last_msg_completed = Some(pkt.msg);
                }
                let ack_now = rs.unacked_by_us >= ack_every || boundary;
                if ack_now {
                    rs.unacked_by_us = 0;
                }
                (ack_now, fresh_boundary)
            } else {
                // Out-of-order duplicate (post-retransmission): re-ACK.
                (true, false)
            }
        };
        if send_ack {
            let cum = self.conns[ci].dir_mut(pkt.dir).received;
            self.emit(pkt.conn, pkt.dir.flip(), PacketKind::Ack, cum, 0, 0);
        }
        if fresh_boundary && pkt.dir == Dir::ClientToServer {
            // A request fully arrived at the server.
            self.completed_requests += 1;
            let meta = self.conns[ci].msg_meta[pkt.msg as usize];
            if meta.response_bytes > 0 {
                self.schedule(
                    self.now + meta.service_time,
                    Ev::Service {
                        conn: pkt.conn,
                        msg: pkt.msg,
                    },
                );
            } else if self.record_latencies {
                // One-way message: complete when the request lands.
                self.latencies
                    .push(self.now.saturating_since(meta.issued_at));
            }
        }
        if fresh_boundary && pkt.dir == Dir::ServerToClient && self.record_latencies {
            // The response fully arrived back at the client: RPC done.
            if let Some(&issued) = self.conns[ci].resp_req_issued.get(pkt.msg as usize) {
                self.latencies.push(self.now.saturating_since(issued));
            }
        }
    }

    fn on_ack(&mut self, pkt: Packet) {
        let ci = pkt.conn.index();
        let data_dir = pkt.dir.flip();
        {
            let ds = self.conns[ci].dir_mut(data_dir);
            if pkt.seq > ds.acked {
                let newly = pkt.seq - ds.acked;
                ds.acked = pkt.seq;
                ds.consecutive_rtos = 0;
                for _ in 0..newly {
                    ds.unacked.pop();
                }
            } else {
                return;
            }
        }
        self.pump(pkt.conn, data_dir);
    }

    fn on_rto(&mut self, conn: ConnId, dir: Dir) {
        let ci = conn.index();
        let rto = self.cfg.rto;
        #[derive(PartialEq)]
        enum Action {
            Idle,
            Rearm,
            Retransmit,
        }
        let action = {
            let ds = self.conns[ci].dir_mut(dir);
            ds.rto_armed = false;
            if ds.in_flight() == 0 {
                Action::Idle
            } else if ds.acked > ds.acked_at_arm {
                ds.rto_armed = true;
                ds.acked_at_arm = ds.acked;
                Action::Rearm
            } else {
                Action::Retransmit
            }
        };
        match action {
            Action::Idle => {}
            Action::Rearm => {
                let at = self.now + rto;
                self.schedule(at, Ev::Rto { conn, dir });
            }
            Action::Retransmit => {
                // No progress since arming. If the pinned route broke,
                // first try to re-hash onto surviving equal-cost paths
                // (control-plane convergence, surfaced at transport
                // timescale); if no alternative exists, count the barren
                // retransmissions and eventually abort instead of retrying
                // into a dead link forever. On a healthy route, retransmit
                // indefinitely as plain go-back-N.
                if self.route_is_broken(ci) && !self.try_reroute(ci) {
                    let already_closed = self.conns[ci].phase == ConnPhase::Closed;
                    let ds = self.conns[ci].dir_mut(dir);
                    ds.consecutive_rtos += 1;
                    if ds.consecutive_rtos > self.cfg.max_consecutive_rtos {
                        if !already_closed {
                            self.aborted_connections += 1;
                        }
                        self.abort_conn(conn);
                        return;
                    }
                } else {
                    self.conns[ci].dir_mut(dir).consecutive_rtos = 0;
                }
                // Go-back-N: everything unacked returns to the head of the
                // pending queue and is re-sent under the window.
                let ds = self.conns[ci].dir_mut(dir);
                ds.sent = ds.acked;
                let unacked = std::mem::take(&mut ds.unacked);
                ds.pending.prepend(unacked);
                self.pump(conn, dir);
            }
        }
    }

    fn on_service(&mut self, conn: ConnId, msg: u32) {
        let ci = conn.index();
        let meta = self.conns[ci].msg_meta[msg as usize];
        let resp_id = {
            let c = &mut self.conns[ci];
            let id = c.next_server_msg;
            c.next_server_msg += 1;
            debug_assert_eq!(c.resp_req_issued.len(), id as usize);
            c.resp_req_issued.push(meta.issued_at);
            id
        };
        self.conns[ci]
            .s2c
            .pending
            .push_message(meta.response_bytes, self.cfg.mss, resp_id);
        self.pump(conn, Dir::ServerToClient);
    }

    fn on_open(&mut self, conn: ConnId) {
        let ci = conn.index();
        self.conns[ci].syn_attempts += 1;
        let attempts = self.conns[ci].syn_attempts;
        if attempts > self.cfg.syn_max_attempts {
            // The server is unreachable: give up instead of wedging the
            // workload behind an eternal handshake.
            self.failed_handshakes += 1;
            self.abort_conn(conn);
            return;
        }
        // A fault may have broken the route picked at open time; re-hash
        // before burning another SYN on a dead link. If no healthy path
        // exists the SYN is sent anyway (and counted as a fault drop).
        if self.route_is_broken(ci) {
            self.try_reroute(ci);
        }
        self.emit(conn, Dir::ClientToServer, PacketKind::Syn, 0, 0, 0);
        // Handshake loss recovery: retry until the SYN-ACK flips the
        // phase, backing off exponentially (capped) like a real connect().
        let backoff = self.cfg.rto * (1u64 << (attempts - 1).min(10));
        self.schedule(self.now + backoff, Ev::SynRetry { conn });
    }

    /// Closes a connection abruptly (no FIN): queues are dropped, pending
    /// timers find nothing in flight, and the slot retires after
    /// quarantine. Used when faults make progress impossible.
    fn abort_conn(&mut self, conn: ConnId) {
        let ci = conn.index();
        let c = &mut self.conns[ci];
        let was_closed = c.phase == ConnPhase::Closed;
        c.phase = ConnPhase::Closed;
        c.pre_open.clear();
        c.c2s = DirState::default();
        c.s2c = DirState::default();
        // A conn that closed normally already scheduled its Retire;
        // scheduling a second one would double-free the slot.
        if !was_closed {
            let at = self.now + self.cfg.conn_quarantine;
            self.schedule(at, Ev::Retire { conn });
        }
    }

    /// True when any link of either pinned route of `conns[ci]` is
    /// currently unusable.
    fn route_is_broken(&self, ci: usize) -> bool {
        if self.health.all_up() {
            return false;
        }
        let c = &self.conns[ci];
        c.route_fwd
            .iter()
            .chain(c.route_rev.iter())
            .any(|&l| !self.health.link_usable(&self.topo, l))
    }

    fn on_fault(&mut self, kind: FaultKind) {
        self.faults_applied += 1;
        match kind {
            FaultKind::LinkDown(l) => self.health.set_link_up(l, false),
            FaultKind::LinkUp(l) => self.health.set_link_up(l, true),
            FaultKind::SwitchDown(s) => self.health.set_switch_up(s, false),
            FaultKind::SwitchUp(s) => self.health.set_switch_up(s, true),
            FaultKind::DegradeLink { link, rate_factor } => {
                self.link_rate_factor[link.index()] = rate_factor;
            }
            // Telemetry faults never reach the engine (inject_fault
            // rejects them); keep the match exhaustive without panicking.
            FaultKind::MirrorLoss { .. } | FaultKind::FbflowLoss { .. } => {}
        }
    }

    /// Re-hashes a connection whose pinned route broke onto surviving
    /// equal-cost paths, as switches re-balance ECMP groups when members
    /// die. Called lazily from the transport's loss-recovery paths (RTO,
    /// SYN retry) — packets already committed to the dead path are lost
    /// and counted in [`LinkCounters::fault_drop_packets`], exactly as
    /// with a real outage. Returns `false` (and counts the failure) when
    /// no healthy alternative exists; the connection keeps its dead route
    /// until the RTO cap aborts it or the fault heals.
    fn try_reroute(&mut self, ci: usize) -> bool {
        let key = self.conns[ci].key;
        let hash = key.ecmp_hash();
        let fwd = self
            .topo
            .route_healthy(key.client, key.server, hash, &self.health);
        let rev = self
            .topo
            .route_healthy(key.server, key.client, hash, &self.health);
        match (fwd, rev) {
            (Ok(fwd), Ok(rev)) => {
                // Same locality ⇒ same hop count, so in-flight packets'
                // hop indices stay valid on the replacement route.
                debug_assert_eq!(fwd.len(), self.conns[ci].route_fwd.len());
                debug_assert_eq!(rev.len(), self.conns[ci].route_rev.len());
                self.conns[ci].route_fwd = fwd;
                self.conns[ci].route_rev = rev;
                self.reroutes += 1;
                true
            }
            _ => {
                self.reroute_failures += 1;
                false
            }
        }
    }

    fn on_send_msg(&mut self, conn: ConnId, req: u64, meta: MsgMeta) {
        let ci = conn.index();
        match self.conns[ci].phase {
            ConnPhase::Closed => {
                self.messages_on_closed += 1;
            }
            ConnPhase::Opening => {
                self.conns[ci].pre_open.push((req, meta));
            }
            ConnPhase::Open => {
                self.queue_request(conn, req, meta);
            }
        }
    }

    fn queue_request(&mut self, conn: ConnId, req: u64, meta: MsgMeta) {
        let mss = self.cfg.mss;
        {
            let c = &mut self.conns[conn.index()];
            let msg_id = c.msg_meta.len() as u32;
            c.msg_meta.push(meta);
            c.c2s.pending.push_message(req, mss, msg_id);
        }
        self.pump(conn, Dir::ClientToServer);
    }

    fn on_close(&mut self, conn: ConnId) {
        let ci = conn.index();
        if self.conns[ci].phase != ConnPhase::Closed {
            self.conns[ci].phase = ConnPhase::Closed;
            self.emit(conn, Dir::ClientToServer, PacketKind::Fin, 0, 0, 0);
            // Recycle the slot once in-flight stragglers cannot be confused
            // with a future occupant (generation tags guard regardless).
            let at = self.now + self.cfg.conn_quarantine;
            self.schedule(at, Ev::Retire { conn });
        }
    }

    /// Moves pending segments onto the wire while the window allows.
    fn pump(&mut self, conn: ConnId, dir: Dir) {
        let window = self.cfg.window_segments as u64;
        let rto = self.cfg.rto;
        loop {
            let (seg, seq) = {
                let ds = self.conns[conn.index()].dir_mut(dir);
                if ds.in_flight() >= window {
                    break;
                }
                let Some(seg) = ds.pending.pop() else { break };
                let seq = ds.sent;
                ds.sent += 1;
                ds.unacked.push_seg(seg);
                (seg, seq)
            };
            self.emit(
                conn,
                dir,
                PacketKind::Data {
                    last_of_msg: seg.last_of_msg,
                },
                seq,
                seg.msg,
                seg.payload,
            );
        }
        // Arm the retransmission timer if data is outstanding.
        let now = self.now;
        let ds = self.conns[conn.index()].dir_mut(dir);
        if ds.in_flight() > 0 && !ds.rto_armed {
            ds.rto_armed = true;
            ds.acked_at_arm = ds.acked;
            self.schedule(now + rto, Ev::Rto { conn, dir });
        }
    }

    /// Builds a packet and schedules its first hop now.
    fn emit(&mut self, conn: ConnId, dir: Dir, kind: PacketKind, seq: u64, msg: u32, payload: u32) {
        let key = self.conns[conn.index()].key;
        let wire = if payload > 0 {
            self.cfg.data_wire_bytes(payload)
        } else {
            self.cfg.control_bytes
        };
        let pkt = Packet {
            conn,
            key,
            dir,
            kind,
            seq,
            msg,
            payload,
            wire_bytes: wire,
        };
        self.emitted_packets += 1;
        self.schedule(self.now, Ev::Transmit { pkt, hop: 0 });
    }

    // ------------------------------------------------------------------
    // Buffer sampling
    // ------------------------------------------------------------------

    fn on_buf_sample(&mut self) {
        let Some(sampler) = self.buf_sampler.as_mut() else {
            return;
        };
        // Close the window first if we've crossed its boundary.
        if self.now >= sampler.window_start + sampler.window {
            self.flush_buffer_window(false);
        }
        let sampler = self.buf_sampler.as_mut().expect("sampler persists");
        for (i, sw) in sampler.switches.iter().enumerate() {
            sampler.samples[i].push(self.switch_occ[sw.index()]);
        }
        let next = self.now + sampler.interval;
        self.schedule(next, Ev::BufSample);
    }

    fn flush_buffer_window(&mut self, final_flush: bool) {
        // Detach the sampler while flushing so its sample buffers can be
        // sorted in place and reused across windows — no per-window clone
        // of the switch list or reallocation of the sample vectors.
        let Some(mut sampler) = self.buf_sampler.take() else {
            return;
        };
        let window_start = sampler.window_start;
        for (i, sw) in sampler.switches.iter().enumerate() {
            let samples = &mut sampler.samples[i];
            if samples.is_empty() {
                continue;
            }
            samples.sort_unstable();
            let n = samples.len();
            let median = samples[n / 2];
            let max = *samples.last().expect("non-empty");
            let mean = samples.iter().sum::<u64>() as f64 / n as f64;
            samples.clear();
            self.buffer_stats.push(BufferWindowStat {
                switch: *sw,
                window_start,
                median,
                max,
                mean,
                samples: n as u32,
                capacity: self.switch_cap[sw.index()],
            });
        }
        if !final_flush {
            sampler.window_start += sampler.window;
            // If the clock jumped multiple windows, snap forward.
            while self.now >= sampler.window_start + sampler.window {
                sampler.window_start += sampler.window;
            }
        }
        self.buf_sampler = Some(sampler);
    }
}

// ---------------------------------------------------------------------
// Checkpoint / restore
// ---------------------------------------------------------------------

/// Serialized dynamic state of a [`Simulator`].
///
/// Contains everything the engine mutates — the event calendar (drained in
/// canonical `(time, seq)` order), connection table, link and switch state,
/// telemetry accumulators, and totals — plus the [`SimConfig`] it ran
/// under. Topology-derived tables (link rates, propagation delays, buffer
/// capacities) are rebuilt from the topology passed to
/// [`Simulator::restore`], so a checkpoint stays small and cannot disagree
/// with the plant it is replayed against.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineCheckpoint {
    cfg: SimConfig,
    now: SimTime,
    events: Vec<Scheduled>,
    next_seq: u64,
    conns: Vec<Conn>,
    free_conns: Vec<u32>,
    next_port: Vec<u16>,
    link_free_at: Vec<SimTime>,
    link_backlog: Vec<u64>,
    link_counters: Vec<LinkCounters>,
    link_rate_factor: Vec<f64>,
    health: LinkHealth,
    watched: Vec<bool>,
    util_tracked: Vec<bool>,
    switch_occ: Vec<u64>,
    util_interval: Option<SimDuration>,
    /// `util_series` flattened to link-sorted pairs so the serialized form
    /// is byte-stable across runs.
    util_series: Vec<(LinkId, Vec<u64>)>,
    buf_sampler: Option<BufSampler>,
    buffer_stats: Vec<BufferWindowStat>,
    emitted_packets: u64,
    delivered_packets: u64,
    completed_requests: u64,
    messages_on_closed: u64,
    stale_packets: u64,
    faults_applied: u64,
    reroutes: u64,
    reroute_failures: u64,
    failed_handshakes: u64,
    aborted_connections: u64,
    record_latencies: bool,
    latencies: Vec<SimDuration>,
    processed_events: u64,
}

impl EngineCheckpoint {
    /// Virtual time the checkpoint was taken at.
    pub fn taken_at(&self) -> SimTime {
        self.now
    }
}

impl<T: PacketTap> Simulator<T> {
    /// Captures the engine's full dynamic state. Non-destructive: the
    /// simulator keeps running; the checkpoint is an independent snapshot
    /// that [`Simulator::restore`] turns back into an identical engine.
    pub fn checkpoint(&self) -> EngineCheckpoint {
        let mut events: Vec<Scheduled> = self.events.iter().map(|r| r.0.clone()).collect();
        events.sort_by_key(|s| (s.at, s.seq));
        // Same link-sorted pair layout (and therefore the same serialized
        // bytes) the HashMap-backed engine produced, now read off the
        // dense vector in index order.
        let util_series: Vec<(LinkId, Vec<u64>)> = self
            .util_series
            .iter()
            .enumerate()
            .filter(|(i, _)| self.util_tracked[*i])
            .map(|(i, v)| (LinkId(i as u32), v.clone()))
            .collect();
        EngineCheckpoint {
            cfg: self.cfg.clone(),
            now: self.now,
            events,
            next_seq: self.next_seq,
            conns: self.conns.clone(),
            free_conns: self.free_conns.clone(),
            next_port: self.next_port.clone(),
            link_free_at: self.link_free_at.clone(),
            link_backlog: self.link_backlog.clone(),
            link_counters: self.link_counters.clone(),
            link_rate_factor: self.link_rate_factor.clone(),
            health: self.health.clone(),
            watched: self.watched.clone(),
            util_tracked: self.util_tracked.clone(),
            switch_occ: self.switch_occ.clone(),
            util_interval: self.util_interval,
            util_series,
            buf_sampler: self.buf_sampler.clone(),
            buffer_stats: self.buffer_stats.clone(),
            emitted_packets: self.emitted_packets,
            delivered_packets: self.delivered_packets,
            completed_requests: self.completed_requests,
            messages_on_closed: self.messages_on_closed,
            stale_packets: self.stale_packets,
            faults_applied: self.faults_applied,
            reroutes: self.reroutes,
            reroute_failures: self.reroute_failures,
            failed_handshakes: self.failed_handshakes,
            aborted_connections: self.aborted_connections,
            record_latencies: self.record_latencies,
            latencies: self.latencies.clone(),
            processed_events: self.processed_events,
        }
    }

    /// Rebuilds a simulator from a checkpoint over the same topology.
    ///
    /// The restored engine is observationally identical to the one that
    /// took the checkpoint: continuing both produces byte-identical
    /// outputs. The tap is supplied by the caller (its state, if any, is
    /// checkpointed by the layer that owns it). Fails with
    /// [`SimError::Config`] when the checkpoint's dimensions do not match
    /// `topo` or its calendar is internally inconsistent.
    pub fn restore(
        topo: Arc<Topology>,
        tap: T,
        ckpt: EngineCheckpoint,
    ) -> Result<Simulator<T>, SimError> {
        let mut sim = Simulator::new(topo, ckpt.cfg.clone(), tap)?;
        let n_links = sim.topo.links().len();
        let n_switches = sim.topo.switches().len();
        let n_hosts = sim.topo.hosts().len();
        let bad = |what: &str| Err(SimError::Config(format!("checkpoint mismatch: {what}")));
        if ckpt.link_free_at.len() != n_links
            || ckpt.link_backlog.len() != n_links
            || ckpt.link_counters.len() != n_links
            || ckpt.link_rate_factor.len() != n_links
            || ckpt.watched.len() != n_links
            || ckpt.util_tracked.len() != n_links
        {
            return bad("link state dimensions do not match the topology");
        }
        if ckpt.switch_occ.len() != n_switches {
            return bad("switch state dimensions do not match the topology");
        }
        if ckpt.next_port.len() != n_hosts {
            return bad("host state dimensions do not match the topology");
        }
        if ckpt.health.n_links() != n_links || ckpt.health.n_switches() != n_switches {
            return bad("health mask dimensions do not match the topology");
        }
        for ev in &ckpt.events {
            if ev.at < ckpt.now {
                return bad("calendar entry before the checkpointed clock");
            }
            if ev.seq >= ckpt.next_seq {
                return bad("calendar entry with an unissued sequence number");
            }
        }
        for c in &ckpt.conns {
            if c.route_fwd
                .iter()
                .chain(c.route_rev.iter())
                .any(|l| l.index() >= n_links)
            {
                return bad("connection route references an out-of-range link");
            }
        }
        sim.now = ckpt.now;
        sim.next_seq = ckpt.next_seq;
        sim.real_events = ckpt
            .events
            .iter()
            .filter(|s| !matches!(s.ev, Ev::BufSample))
            .count() as u64;
        sim.events = ckpt.events.into_iter().map(Reverse).collect();
        sim.conns = ckpt.conns;
        sim.free_conns = ckpt.free_conns;
        sim.next_port = ckpt.next_port;
        sim.link_free_at = ckpt.link_free_at;
        sim.link_backlog = ckpt.link_backlog;
        sim.link_counters = ckpt.link_counters;
        sim.link_rate_factor = ckpt.link_rate_factor;
        sim.health = ckpt.health;
        sim.watched = ckpt.watched;
        sim.util_tracked = ckpt.util_tracked;
        sim.switch_occ = ckpt.switch_occ;
        sim.util_interval = ckpt.util_interval;
        for (l, series) in ckpt.util_series {
            if l.index() >= n_links {
                return bad("utilization series references an out-of-range link");
            }
            sim.util_series[l.index()] = series;
        }
        sim.buf_sampler = ckpt.buf_sampler;
        sim.buffer_stats = ckpt.buffer_stats;
        sim.emitted_packets = ckpt.emitted_packets;
        sim.delivered_packets = ckpt.delivered_packets;
        sim.completed_requests = ckpt.completed_requests;
        sim.messages_on_closed = ckpt.messages_on_closed;
        sim.stale_packets = ckpt.stale_packets;
        sim.faults_applied = ckpt.faults_applied;
        sim.reroutes = ckpt.reroutes;
        sim.reroute_failures = ckpt.reroute_failures;
        sim.failed_handshakes = ckpt.failed_handshakes;
        sim.aborted_connections = ckpt.aborted_connections;
        sim.record_latencies = ckpt.record_latencies;
        sim.latencies = ckpt.latencies;
        sim.processed_events = ckpt.processed_events;
        Ok(sim)
    }
}

// ---------------------------------------------------------------------
// Invariant auditor
// ---------------------------------------------------------------------

/// One violated runtime invariant, with the numbers that violated it.
#[derive(Debug, Clone, Serialize)]
pub enum AuditViolation {
    /// Packet conservation broke: every packet the engine ever emitted
    /// must be delivered, dropped at admission, fault-dropped, counted
    /// stale, or still in flight on the calendar.
    PacketConservation {
        /// Packets handed to the network.
        emitted: u64,
        /// Packets delivered to hosts.
        delivered: u64,
        /// Packets dropped at buffer admission.
        dropped: u64,
        /// Packets lost to injected faults.
        fault_dropped: u64,
        /// In-flight packets discarded against recycled connection slots.
        stale: u64,
        /// Transmit/Deliver events still on the calendar.
        in_flight: u64,
    },
    /// A link transmitted more bytes than its line rate allows in the time
    /// it has been busy.
    LinkOverDelivery {
        /// The offending link.
        link: LinkId,
        /// Bytes the link claims to have serialized.
        tx_bytes: u64,
        /// The rate x elapsed bound (with per-packet rounding slack).
        bound_bytes: u64,
    },
    /// A calendar entry is timestamped before the current clock.
    CalendarInPast {
        /// The stale entry's timestamp.
        event_at: SimTime,
        /// The engine clock.
        now: SimTime,
    },
    /// Telemetry accounting broke: packets offered to a tap must equal
    /// captured + overflowed + deliberately dropped. (Emitted by the
    /// capture layer's auditor; the engine itself never raises it.)
    TelemetryAccounting {
        /// Packets offered to the collector.
        offered: u64,
        /// Packets retained.
        captured: u64,
        /// Packets lost to capacity overflow.
        overflow: u64,
        /// Packets lost to an injected telemetry fault.
        fault_dropped: u64,
    },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::PacketConservation {
                emitted,
                delivered,
                dropped,
                fault_dropped,
                stale,
                in_flight,
            } => write!(
                f,
                "packet conservation: emitted {emitted} != delivered {delivered} \
                 + dropped {dropped} + fault-dropped {fault_dropped} + stale {stale} \
                 + in-flight {in_flight}"
            ),
            AuditViolation::LinkOverDelivery {
                link,
                tx_bytes,
                bound_bytes,
            } => write!(
                f,
                "{link} transmitted {tx_bytes} bytes, above its rate x elapsed \
                 bound of {bound_bytes}"
            ),
            AuditViolation::CalendarInPast { event_at, now } => {
                write!(f, "calendar entry at {event_at} is before the clock {now}")
            }
            AuditViolation::TelemetryAccounting {
                offered,
                captured,
                overflow,
                fault_dropped,
            } => write!(
                f,
                "telemetry accounting: offered {offered} != captured {captured} \
                 + overflow {overflow} + fault-dropped {fault_dropped}"
            ),
        }
    }
}

/// Structured report of every invariant violated at one audit point.
///
/// Stringly loud by design: `Display` renders each violation with its
/// numbers, and the report serializes to JSON for machine consumption.
#[derive(Debug, Clone, Serialize)]
pub struct AuditReport {
    /// Virtual time the audit ran at.
    pub at: SimTime,
    /// Every invariant that did not hold.
    pub violations: Vec<AuditViolation>,
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "invariant audit at {} found {} violation(s):",
            self.at,
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for AuditReport {}

impl<T: PacketTap> Simulator<T> {
    /// Checks the engine's conservation laws, failing with a structured
    /// [`AuditReport`] when any are violated:
    ///
    /// 1. packets emitted = delivered + dropped + fault-dropped + stale +
    ///    in-flight (calendar Transmit/Deliver entries);
    /// 2. per-link transmitted bytes <= line rate x busy time (plus one
    ///    nanosecond of serialization-rounding slack per packet);
    /// 3. the event calendar is monotonic (no entry before the clock).
    ///
    /// O(events + links); intended to run at checkpoint boundaries, not in
    /// the hot loop.
    pub fn audit(&self) -> Result<(), AuditReport> {
        let mut violations = Vec::new();

        let mut in_flight = 0u64;
        for r in self.events.iter() {
            let s = &r.0;
            if matches!(s.ev, Ev::Transmit { .. } | Ev::Deliver { .. }) {
                in_flight += 1;
            }
            if s.at < self.now {
                violations.push(AuditViolation::CalendarInPast {
                    event_at: s.at,
                    now: self.now,
                });
            }
        }
        let dropped: u64 = self.link_counters.iter().map(|c| c.drop_packets).sum();
        let fault_dropped: u64 = self
            .link_counters
            .iter()
            .map(|c| c.fault_drop_packets)
            .sum();
        let accounted =
            self.delivered_packets + dropped + fault_dropped + self.stale_packets + in_flight;
        if self.emitted_packets != accounted {
            violations.push(AuditViolation::PacketConservation {
                emitted: self.emitted_packets,
                delivered: self.delivered_packets,
                dropped,
                fault_dropped,
                stale: self.stale_packets,
                in_flight,
            });
        }

        for (li, c) in self.link_counters.iter().enumerate() {
            if c.tx_bytes == 0 {
                continue;
            }
            // The link serializes back to back, so its cumulative bytes fit
            // under nominal-rate x the time it has been committed to
            // (`link_free_at`), plus up to one nanosecond of rounding per
            // packet. Degraded rates only lower throughput (factor <= 1),
            // so the nominal rate stays a sound bound.
            let bytes_per_ns = self.link_gbps[li] * 0.125;
            let busy_ns = self.link_free_at[li].as_nanos();
            let bound = bytes_per_ns * (busy_ns + c.tx_packets + 1) as f64;
            if c.tx_bytes as f64 > bound {
                violations.push(AuditViolation::LinkOverDelivery {
                    link: LinkId(li as u32),
                    tx_bytes: c.tx_bytes,
                    bound_bytes: bound as u64,
                });
            }
        }

        if violations.is_empty() {
            Ok(())
        } else {
            Err(AuditReport {
                at: self.now,
                violations,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tap::NullTap;
    use sonet_topology::{ClusterSpec, TopologySpec};
    use std::sync::Arc;

    fn two_cluster_topo() -> Arc<Topology> {
        Arc::new(
            Topology::build(TopologySpec::single_dc(vec![
                ClusterSpec::frontend(8, 4),
                ClusterSpec::hadoop(4, 4),
            ]))
            .expect("valid"),
        )
    }

    /// Collects every observed packet.
    #[derive(Default)]
    struct Collector {
        pkts: Vec<(SimTime, LinkId, Packet)>,
    }
    impl PacketTap for Collector {
        fn on_packet(&mut self, at: SimTime, link: LinkId, pkt: &Packet) {
            self.pkts.push((at, link, *pkt));
        }
    }

    fn sim_with_collector(topo: &Arc<Topology>) -> Simulator<Collector> {
        Simulator::new(Arc::clone(topo), SimConfig::default(), Collector::default())
            .expect("valid config")
    }

    #[test]
    fn handshake_then_request_response() {
        let topo = two_cluster_topo();
        let mut sim = sim_with_collector(&topo);
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        sim.watch_link(topo.host_uplink(a));
        sim.watch_link(topo.host_downlink(a));

        let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        sim.send_message(
            conn,
            SimTime::ZERO,
            500,
            2000,
            SimDuration::from_micros(100),
        )
        .expect("send");
        sim.run_until(SimTime::from_millis(100));
        let (out, tap) = sim.finish();

        assert!(out.delivered_packets > 0);
        assert_eq!(out.completed_requests, 1);
        // The client's uplink saw a SYN then request data; downlink saw
        // SYN-ACK, ACKs, and response data.
        let kinds: Vec<PacketKind> = tap.pkts.iter().map(|(_, _, p)| p.kind).collect();
        assert!(kinds.contains(&PacketKind::Syn));
        assert!(kinds.contains(&PacketKind::SynAck));
        assert!(kinds.iter().any(|k| k.is_data()));
        assert!(kinds.contains(&PacketKind::Ack));
        // Response totals 2000 payload bytes back to the client.
        let resp_payload: u64 = tap
            .pkts
            .iter()
            .filter(|(_, _, p)| p.dir == Dir::ServerToClient && p.kind.is_data())
            .map(|(_, _, p)| p.payload as u64)
            .sum();
        assert_eq!(resp_payload, 2000);
    }

    #[test]
    fn request_segmentation_matches_mss() {
        let topo = two_cluster_topo();
        let mut sim = sim_with_collector(&topo);
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        sim.watch_link(topo.host_uplink(a));
        let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        // 4000 bytes = 1460 + 1460 + 1080.
        sim.send_message(conn, SimTime::ZERO, 4000, 0, SimDuration::ZERO)
            .expect("send");
        sim.run_until(SimTime::from_millis(50));
        let (_, tap) = sim.finish();
        let data: Vec<u32> = tap
            .pkts
            .iter()
            .filter(|(_, _, p)| p.kind.is_data())
            .map(|(_, _, p)| p.payload)
            .collect();
        assert_eq!(data, vec![1460, 1460, 1080]);
        let last_flags: Vec<bool> = tap
            .pkts
            .iter()
            .filter_map(|(_, _, p)| match p.kind {
                PacketKind::Data { last_of_msg } => Some(last_of_msg),
                _ => None,
            })
            .collect();
        assert_eq!(last_flags, vec![false, false, true]);
    }

    #[test]
    fn per_link_timestamps_are_monotone() {
        let topo = two_cluster_topo();
        let mut sim = sim_with_collector(&topo);
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let up = topo.host_uplink(a);
        sim.watch_link(up);
        let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        for i in 0..20 {
            sim.send_message(
                conn,
                SimTime::from_micros(i * 50),
                1000,
                100,
                SimDuration::from_micros(10),
            )
            .expect("send");
        }
        sim.run_until(SimTime::from_millis(100));
        let (_, tap) = sim.finish();
        let times: Vec<SimTime> = tap
            .pkts
            .iter()
            .filter(|(_, l, _)| *l == up)
            .map(|(t, _, _)| *t)
            .collect();
        assert!(times.len() > 20);
        for w in times.windows(2) {
            assert!(w[0] <= w[1], "per-link tap order violated");
        }
    }

    #[test]
    fn utilization_series_accounts_all_bytes() {
        let topo = two_cluster_topo();
        let mut sim = sim_with_collector(&topo);
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let up = topo.host_uplink(a);
        sim.track_utilization(SimDuration::from_millis(10), &[up])
            .expect("track");
        let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        sim.send_message(conn, SimTime::ZERO, 50_000, 0, SimDuration::ZERO)
            .expect("send");
        sim.run_until(SimTime::from_millis(200));
        let (out, _) = sim.finish();
        let series = &out.util_series[&up];
        let series_total: u64 = series.iter().sum();
        assert_eq!(series_total, out.link_counters[up.index()].tx_bytes);
        assert!(series_total > 50_000, "includes framing and SYN");
    }

    #[test]
    fn tiny_buffers_cause_egress_drops_but_transfer_completes() {
        let topo = two_cluster_topo();
        let mut cfg = SimConfig::default();
        // Pathologically small shared buffer at the ToR to force drops.
        cfg.rsw_buffer.shared_bytes = 8 * 1526;
        cfg.rsw_buffer.alpha = 0.5;
        let mut sim = Simulator::new(Arc::clone(&topo), cfg, NullTap).expect("valid config");
        let dst = topo.racks()[0].hosts[0];
        // Many senders burst into one receiver (incast across the cluster).
        let mut conns = Vec::new();
        for r in 1..8 {
            for h in 0..4 {
                let src = topo.racks()[r].hosts[h];
                let c = sim
                    .open_connection(SimTime::ZERO, src, dst, 80)
                    .expect("open");
                sim.send_message(c, SimTime::from_micros(10), 200_000, 0, SimDuration::ZERO)
                    .expect("send");
                conns.push(c);
            }
        }
        sim.run_to_quiescence();
        let (out, _) = sim.finish();
        let down = topo.host_downlink(dst);
        assert!(
            out.link_counters[down.index()].drop_packets > 0,
            "incast into a tiny shared buffer must drop"
        );
        // Retransmission still completes all 28 requests.
        assert_eq!(out.completed_requests, 28);
    }

    #[test]
    fn buffer_sampler_produces_windows() {
        let topo = two_cluster_topo();
        let mut sim = sim_with_collector(&topo);
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let rsw = topo.racks()[0].rsw;
        sim.sample_buffers(
            SimDuration::from_micros(10),
            SimDuration::from_millis(10),
            vec![rsw],
        )
        .expect("sample");
        let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        sim.send_message(conn, SimTime::ZERO, 1_000_000, 0, SimDuration::ZERO)
            .expect("send");
        sim.run_until(SimTime::from_millis(35));
        let (out, _) = sim.finish();
        assert!(
            out.buffer_stats.len() >= 3,
            "got {}",
            out.buffer_stats.len()
        );
        for w in &out.buffer_stats {
            assert_eq!(w.switch, rsw);
            assert!(w.max >= w.median);
            assert!(w.capacity > 0);
            assert!(w.samples > 0);
        }
        // Windows are in time order.
        for pair in out.buffer_stats.windows(2) {
            assert!(pair[0].window_start <= pair[1].window_start);
        }
    }

    #[test]
    fn api_validation_errors() {
        let topo = two_cluster_topo();
        let mut sim = sim_with_collector(&topo);
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        assert_eq!(
            sim.open_connection(SimTime::ZERO, a, a, 80).unwrap_err(),
            SimError::SelfConnection(a)
        );
        let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        assert_eq!(
            sim.send_message(conn, SimTime::ZERO, 0, 0, SimDuration::ZERO)
                .unwrap_err(),
            SimError::EmptyRequest
        );
        assert!(matches!(
            sim.send_message(
                ConnId { idx: 99, gen: 0 },
                SimTime::ZERO,
                1,
                0,
                SimDuration::ZERO
            ),
            Err(SimError::NoSuchConn(_))
        ));
        sim.run_until(SimTime::from_secs(1));
        assert!(matches!(
            sim.open_connection(SimTime::ZERO, a, b, 80),
            Err(SimError::TimeInPast { .. })
        ));
    }

    #[test]
    fn close_emits_fin_and_blocks_messages() {
        let topo = two_cluster_topo();
        let mut sim = sim_with_collector(&topo);
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        sim.watch_link(topo.host_uplink(a));
        sim.watch_link(topo.host_downlink(a));
        let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        sim.close_connection(conn, SimTime::from_millis(1))
            .expect("close");
        // Message scheduled after the close fires: counted, not sent.
        sim.send_message(conn, SimTime::from_millis(2), 100, 0, SimDuration::ZERO)
            .expect("scheduling is allowed; rejection happens at fire time");
        sim.run_until(SimTime::from_millis(50));
        let (out, tap) = sim.finish();
        assert_eq!(out.messages_on_closed, 1);
        let kinds: Vec<PacketKind> = tap.pkts.iter().map(|(_, _, p)| p.kind).collect();
        assert!(kinds.contains(&PacketKind::Fin));
        assert!(kinds.contains(&PacketKind::FinAck));
    }

    #[test]
    fn window_caps_in_flight_segments() {
        // With a window of 4 segments, at most 4 unacknowledged data
        // packets are on the wire at once: observe the uplink and count
        // data packets between ACK arrivals.
        let topo = two_cluster_topo();
        let mut cfg = SimConfig::default();
        cfg.window_segments = 4;
        let mut sim = Simulator::new(Arc::clone(&topo), cfg, Collector::default()).expect("config");
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        sim.watch_link(topo.host_uplink(a));
        sim.watch_link(topo.host_downlink(a));
        let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        sim.send_message(conn, SimTime::ZERO, 100_000, 0, SimDuration::ZERO)
            .expect("send");
        sim.run_to_quiescence();
        let (_, tap) = sim.finish();
        // Replay the tap chronologically: outstanding = data packets put
        // on the wire minus the cumulative count acknowledged.
        let mut sent: i64 = 0;
        let mut acked: i64 = 0;
        let mut max_outstanding: i64 = 0;
        let mut events: Vec<&(SimTime, LinkId, Packet)> = tap.pkts.iter().collect();
        events.sort_by_key(|(t, _, _)| *t);
        for (_, _, p) in events {
            match p.kind {
                PacketKind::Data { .. } if p.dir == Dir::ClientToServer => {
                    sent += 1;
                    max_outstanding = max_outstanding.max(sent - acked);
                }
                PacketKind::Ack if p.dir == Dir::ServerToClient => {
                    // Cumulative ack: seq = total segments acknowledged.
                    acked = acked.max(p.seq as i64);
                }
                _ => {}
            }
        }
        assert!(
            max_outstanding <= 4,
            "window violated: {max_outstanding} unacked data packets on the wire"
        );
    }

    #[test]
    fn delayed_ack_ratio_is_one_per_two_segments() {
        let topo = two_cluster_topo();
        let mut sim = sim_with_collector(&topo);
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        sim.watch_link(topo.host_downlink(a));
        let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        // One long one-way transfer: 100 full segments (no boundary ACKs
        // except the last).
        sim.send_message(conn, SimTime::ZERO, 1460 * 100, 0, SimDuration::ZERO)
            .expect("send");
        sim.run_to_quiescence();
        let (_, tap) = sim.finish();
        let acks = tap
            .pkts
            .iter()
            .filter(|(_, _, p)| p.kind == PacketKind::Ack && p.dir == Dir::ServerToClient)
            .count();
        // 100 segments at 1 ACK per 2 → ≈50 (+1 for the boundary).
        assert!((48..=52).contains(&acks), "acks {acks}");
    }

    #[test]
    fn dt_admission_caps_single_queue_at_alpha_fraction() {
        // With alpha = 1 a single hot egress queue can occupy at most half
        // the shared pool: backlog <= alpha * (capacity - occupancy)
        // implies backlog <= capacity / 2 when it is the only user.
        let topo = two_cluster_topo();
        let mut cfg = SimConfig::default();
        cfg.rsw_buffer = crate::config::BufferConfig {
            shared_bytes: 64 << 10,
            alpha: 1.0,
        };
        let mut sim = Simulator::new(Arc::clone(&topo), cfg, NullTap).expect("config");
        let dst = topo.racks()[0].hosts[0];
        let rsw = topo.racks()[0].rsw;
        sim.sample_buffers(
            SimDuration::from_micros(2),
            SimDuration::from_millis(100),
            vec![rsw],
        )
        .expect("sample");
        // Hammer one downlink from many senders.
        for r in 1..8 {
            for h in 0..4 {
                let src = topo.racks()[r].hosts[h];
                let c = sim
                    .open_connection(SimTime::ZERO, src, dst, 80)
                    .expect("open");
                sim.send_message(c, SimTime::from_micros(1), 500_000, 0, SimDuration::ZERO)
                    .expect("send");
            }
        }
        sim.run_to_quiescence();
        let (out, _) = sim.finish();
        let max_occ = out
            .buffer_stats
            .iter()
            .map(|w| w.max)
            .max()
            .expect("windows");
        let cap = 64 << 10;
        assert!(
            max_occ <= cap / 2 + 1600,
            "DT should cap a single queue near half the pool: {max_occ} of {cap}"
        );
        assert!(
            max_occ > cap / 4,
            "the hot queue should reach the DT ceiling: {max_occ}"
        );
    }

    #[test]
    fn latency_recording_measures_rpc_round_trips() {
        let topo = two_cluster_topo();
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
        sim.record_latencies(true);
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        // One RPC with a 1-ms service time and one one-way message.
        sim.send_message(conn, SimTime::ZERO, 500, 1000, SimDuration::from_millis(1))
            .expect("send");
        sim.send_message(conn, SimTime::from_millis(5), 500, 0, SimDuration::ZERO)
            .expect("send");
        sim.run_to_quiescence();
        let (out, _) = sim.finish();
        assert_eq!(out.rpc_latencies.len(), 2);
        // The RPC includes the service time; the one-way does not.
        let max = out.rpc_latencies.iter().max().expect("non-empty");
        let min = out.rpc_latencies.iter().min().expect("non-empty");
        assert!(*max >= SimDuration::from_millis(1), "rpc latency {max}");
        assert!(*min < SimDuration::from_millis(1), "one-way latency {min}");
    }

    #[test]
    fn latency_recording_off_by_default() {
        let topo = two_cluster_topo();
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        sim.send_message(conn, SimTime::ZERO, 500, 1000, SimDuration::ZERO)
            .expect("send");
        sim.run_to_quiescence();
        let (out, _) = sim.finish();
        assert!(out.rpc_latencies.is_empty());
    }

    #[test]
    fn connection_slots_are_recycled_after_quarantine() {
        let topo = two_cluster_topo();
        let mut sim = sim_with_collector(&topo);
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let quarantine = sim.config().conn_quarantine;

        let c1 = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        sim.send_message(c1, SimTime::ZERO, 100, 100, SimDuration::ZERO)
            .expect("send");
        sim.close_connection(c1, SimTime::from_millis(5))
            .expect("close");
        sim.run_until(SimTime::from_millis(5) + quarantine + SimDuration::from_millis(1));

        // The freed slot is reused with a bumped generation.
        let c2 = sim.open_connection(sim.now(), a, b, 80).expect("open");
        assert_eq!(c2.idx, c1.idx);
        assert_eq!(c2.gen, c1.gen + 1);

        // The stale handle is rejected, the fresh one works.
        assert_eq!(
            sim.send_message(c1, sim.now(), 1, 0, SimDuration::ZERO)
                .unwrap_err(),
            SimError::NoSuchConn(c1)
        );
        sim.send_message(c2, sim.now(), 100, 100, SimDuration::ZERO)
            .expect("send on reused");
        sim.run_until(sim.now() + SimDuration::from_millis(50));
        let (out, _) = sim.finish();
        assert_eq!(out.completed_requests, 2);
    }

    #[test]
    fn many_ephemeral_connections_bound_the_table() {
        let topo = two_cluster_topo();
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        // Open/close 2000 short connections, one every 500 µs; with a
        // 200-ms quarantine the live set stays in the hundreds.
        let mut t = SimTime::ZERO;
        for _ in 0..2000 {
            let c = sim.open_connection(t, a, b, 80).expect("open");
            sim.send_message(c, t, 200, 200, SimDuration::ZERO)
                .expect("send");
            sim.close_connection(c, t + SimDuration::from_millis(2))
                .expect("close");
            t += SimDuration::from_micros(500);
            sim.run_until(t);
        }
        sim.run_to_quiescence();
        assert!(
            sim.conns.len() < 1000,
            "slot reuse should bound the table: {}",
            sim.conns.len()
        );
        let (out, _) = sim.finish();
        assert_eq!(out.completed_requests, 2000);
    }

    #[test]
    fn dead_post_mid_transfer_reroutes_and_completes() {
        let topo = two_cluster_topo();
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        // The first connection from `a` uses client port 32768; recover the
        // CSW post its ECMP hash pins so the fault provably hits this flow.
        let key = FlowKey {
            client: a,
            server: b,
            client_port: 32768,
            server_port: 80,
        };
        let path = topo.route(a, b, key.ecmp_hash()).expect("route");
        let post = match topo.links()[path[1].index()].to {
            sonet_topology::Node::Switch(s) => s,
            sonet_topology::Node::Host(_) => unreachable!("hop 1 ends at the CSW"),
        };

        let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        sim.send_message(conn, SimTime::ZERO, 5_000_000, 0, SimDuration::ZERO)
            .expect("send");
        sim.inject_fault(SimTime::from_millis(1), FaultKind::SwitchDown(post))
            .expect("fault");
        sim.run_to_quiescence();
        let (out, _) = sim.finish();
        assert_eq!(out.faults_applied, 1);
        assert_eq!(
            out.reroutes, 1,
            "the flow must re-hash onto a surviving post"
        );
        assert_eq!(out.reroute_failures, 0);
        let fault_drops: u64 = out.link_counters.iter().map(|c| c.fault_drop_packets).sum();
        assert!(
            fault_drops > 0,
            "in-flight packets on the dead post must be counted"
        );
        // Retransmission over the new path still completes the transfer.
        assert_eq!(out.completed_requests, 1);
        assert_eq!(out.aborted_connections, 0);
    }

    #[test]
    fn unreachable_server_fails_handshake_instead_of_wedging() {
        let topo = two_cluster_topo();
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let dst_rsw = topo.racks()[1].rsw;
        // The destination's ToR dies before the SYN goes out: there is no
        // redundant path to a rack, so the handshake must give up.
        sim.inject_fault(SimTime::ZERO, FaultKind::SwitchDown(dst_rsw))
            .expect("fault");
        let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        sim.send_message(conn, SimTime::ZERO, 1000, 0, SimDuration::ZERO)
            .expect("send");
        // Quiescence is the point: SYN retries are capped, so this returns.
        sim.run_to_quiescence();
        let (out, _) = sim.finish();
        assert_eq!(out.failed_handshakes, 1);
        assert_eq!(out.completed_requests, 0);
        let fault_drops: u64 = out.link_counters.iter().map(|c| c.fault_drop_packets).sum();
        assert_eq!(
            fault_drops,
            SimConfig::default().syn_max_attempts as u64,
            "every SYN dies on the dead RSW and is counted"
        );
    }

    #[test]
    fn severed_route_aborts_connection_via_rto_cap() {
        let topo = two_cluster_topo();
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
        sim.send_message(conn, SimTime::ZERO, 50_000_000, 0, SimDuration::ZERO)
            .expect("send");
        // Mid-transfer the destination ToR dies and never recovers.
        sim.inject_fault(
            SimTime::from_millis(2),
            FaultKind::SwitchDown(topo.racks()[1].rsw),
        )
        .expect("fault");
        sim.run_to_quiescence();
        let (out, _) = sim.finish();
        assert!(
            out.reroute_failures >= 1,
            "no healthy alternative to a rack"
        );
        assert_eq!(out.reroutes, 0);
        assert_eq!(out.aborted_connections, 1);
        assert_eq!(out.completed_requests, 0, "the transfer cannot finish");
    }

    #[test]
    fn degraded_link_stretches_serialization() {
        let topo = two_cluster_topo();
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let run = |factor: Option<f64>| {
            let mut sim =
                Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
            if let Some(rate_factor) = factor {
                sim.inject_fault(
                    SimTime::ZERO,
                    FaultKind::DegradeLink {
                        link: topo.host_uplink(a),
                        rate_factor,
                    },
                )
                .expect("fault");
            }
            let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
            sim.send_message(conn, SimTime::ZERO, 10_000_000, 0, SimDuration::ZERO)
                .expect("send");
            sim.run_to_quiescence();
            let (out, _) = sim.finish();
            assert_eq!(out.completed_requests, 1);
            out.ended_at
        };
        let nominal = run(None);
        let degraded = run(Some(0.25));
        assert!(
            degraded > nominal,
            "quarter-rate uplink must finish later: {degraded} vs {nominal}"
        );
    }

    #[test]
    fn link_recovery_restores_traffic() {
        let topo = two_cluster_topo();
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let dst_rsw = topo.racks()[1].rsw;
        // ToR down at 1 ms, back at 40 ms — inside the SYN retry budget.
        sim.inject_fault(SimTime::from_millis(1), FaultKind::SwitchDown(dst_rsw))
            .expect("fault");
        sim.inject_fault(SimTime::from_millis(40), FaultKind::SwitchUp(dst_rsw))
            .expect("fault");
        let conn = sim
            .open_connection(SimTime::from_millis(2), a, b, 80)
            .expect("open");
        sim.send_message(conn, SimTime::from_millis(2), 10_000, 0, SimDuration::ZERO)
            .expect("send");
        sim.run_to_quiescence();
        let (out, _) = sim.finish();
        assert_eq!(
            out.completed_requests, 1,
            "transfer completes after recovery"
        );
        assert_eq!(out.failed_handshakes, 0);
        assert_eq!(out.aborted_connections, 0);
    }

    #[test]
    fn fault_injection_validates_arguments() {
        let topo = two_cluster_topo();
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
        assert!(matches!(
            sim.inject_fault(SimTime::ZERO, FaultKind::LinkDown(LinkId(99_999))),
            Err(SimError::Config(_))
        ));
        assert!(matches!(
            sim.inject_fault(SimTime::ZERO, FaultKind::SwitchDown(SwitchId(99_999))),
            Err(SimError::Config(_))
        ));
        assert!(matches!(
            sim.inject_fault(
                SimTime::ZERO,
                FaultKind::DegradeLink {
                    link: LinkId(0),
                    rate_factor: 0.0
                }
            ),
            Err(SimError::Config(_))
        ));
        assert!(matches!(
            sim.inject_fault(SimTime::ZERO, FaultKind::MirrorLoss { fraction: 0.5 }),
            Err(SimError::Config(_))
        ));
        sim.run_until(SimTime::from_secs(1));
        assert!(matches!(
            sim.inject_fault(SimTime::ZERO, FaultKind::LinkDown(LinkId(0))),
            Err(SimError::TimeInPast { .. })
        ));
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let topo = two_cluster_topo();
        let plan = FaultPlan::new()
            .at(
                SimTime::from_millis(1),
                FaultKind::SwitchDown(topo.racks()[0].rsw),
            )
            .at(
                SimTime::from_millis(3),
                FaultKind::SwitchUp(topo.racks()[0].rsw),
            )
            .at(
                SimTime::from_millis(2),
                FaultKind::DegradeLink {
                    link: LinkId(0),
                    rate_factor: 0.5,
                },
            );
        let run = || {
            let mut sim = sim_with_collector(&topo);
            let a = topo.racks()[0].hosts[0];
            let b = topo.racks()[2].hosts[1];
            sim.watch_link(topo.host_uplink(a));
            sim.inject_faults(&plan).expect("plan");
            let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
            for i in 0..50 {
                sim.send_message(
                    conn,
                    SimTime::from_micros(i * 37),
                    700 + i * 13,
                    300,
                    SimDuration::from_micros(20),
                )
                .expect("send");
            }
            sim.run_to_quiescence();
            let (out, tap) = sim.finish();
            let fault_drops: u64 = out.link_counters.iter().map(|c| c.fault_drop_packets).sum();
            (
                out.delivered_packets,
                out.completed_requests,
                out.faults_applied,
                out.reroutes,
                fault_drops,
                tap.pkts.len(),
                tap.pkts.last().map(|(t, _, _)| *t),
            )
        };
        let first = run();
        assert_eq!(first, run());
        assert_eq!(first.2, 3, "all plan events applied");
    }

    #[test]
    fn deterministic_across_runs() {
        let topo = two_cluster_topo();
        let run = || {
            let mut sim = sim_with_collector(&topo);
            let a = topo.racks()[0].hosts[0];
            let b = topo.racks()[2].hosts[1];
            sim.watch_link(topo.host_uplink(a));
            let conn = sim.open_connection(SimTime::ZERO, a, b, 80).expect("open");
            for i in 0..50 {
                sim.send_message(
                    conn,
                    SimTime::from_micros(i * 37),
                    700 + i * 13,
                    300,
                    SimDuration::from_micros(20),
                )
                .expect("send");
            }
            sim.run_until(SimTime::from_millis(200));
            let (out, tap) = sim.finish();
            (
                out.delivered_packets,
                tap.pkts.len(),
                tap.pkts.last().map(|(t, _, _)| *t),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn inter_datacenter_rtt_reflects_backbone_propagation() {
        // Build a two-DC plant and check a cross-DC response takes > 2 ms
        // (two backbone traversals at 1 ms each, there and back).
        let spec = TopologySpec {
            sites: vec![
                sonet_topology::SiteSpec {
                    datacenters: vec![sonet_topology::DatacenterSpec {
                        clusters: vec![ClusterSpec::frontend(4, 2)],
                    }],
                },
                sonet_topology::SiteSpec {
                    datacenters: vec![sonet_topology::DatacenterSpec {
                        clusters: vec![ClusterSpec::cache(2, 2)],
                    }],
                },
            ],
            ..TopologySpec::default()
        };
        let topo = Arc::new(Topology::build(spec).expect("valid"));
        let mut sim = sim_with_collector(&topo);
        let web = topo.hosts_with_role(sonet_topology::HostRole::Web)[0];
        let leader = topo.hosts_with_role(sonet_topology::HostRole::CacheLeader)[0];
        sim.watch_link(topo.host_downlink(web));
        let conn = sim
            .open_connection(SimTime::ZERO, web, leader, 11211)
            .expect("open");
        sim.send_message(conn, SimTime::ZERO, 100, 100, SimDuration::ZERO)
            .expect("send");
        sim.run_until(SimTime::from_millis(100));
        let (_, tap) = sim.finish();
        let resp_at = tap
            .pkts
            .iter()
            .find(|(_, _, p)| p.kind.is_data() && p.dir == Dir::ServerToClient)
            .map(|(t, _, _)| *t)
            .expect("response observed");
        // SYN + SYN-ACK + request + response = 4 one-way backbone crossings.
        assert!(resp_at >= SimTime::from_millis(4), "resp at {resp_at}");
    }

    // -----------------------------------------------------------------
    // Checkpoint / restore / audit
    // -----------------------------------------------------------------

    /// Builds a busy simulator: several cross-rack connections with
    /// staggered messages so the calendar holds a mix of every event kind.
    fn busy_sim(topo: &Arc<Topology>) -> Simulator<NullTap> {
        let mut sim =
            Simulator::new(Arc::clone(topo), SimConfig::default(), NullTap).expect("valid config");
        sim.track_utilization(
            SimDuration::from_micros(500),
            &[LinkId(0), LinkId(1), LinkId(2), LinkId(3)],
        )
        .expect("track");
        for i in 0..6 {
            let a = topo.racks()[i % 3].hosts[i % 4];
            let b = topo.racks()[3].hosts[(i + 1) % 4];
            let conn = sim
                .open_connection(SimTime::from_micros(i as u64 * 50), a, b, 3306)
                .expect("open");
            for m in 0..3 {
                sim.send_message(
                    conn,
                    SimTime::from_micros(i as u64 * 50 + m * 200),
                    400 + m * 100,
                    5_000 + m * 2_000,
                    SimDuration::from_micros(80),
                )
                .expect("send");
            }
        }
        sim
    }

    #[test]
    fn checkpoint_resume_is_byte_identical() {
        let topo = two_cluster_topo();

        // Uninterrupted run.
        let mut straight = busy_sim(&topo);
        straight.run_to_quiescence();
        let (out_straight, _) = straight.finish();

        // Same run, checkpointed mid-flight (traffic still on the wire),
        // serialized through JSON, restored, then run to completion.
        let mut first = busy_sim(&topo);
        first.run_until(SimTime::from_micros(700));
        assert!(first.pending_events() > 0, "checkpoint must be mid-flight");
        let json = serde_json::to_string(&first.checkpoint()).expect("serialize");
        let ckpt: EngineCheckpoint = serde_json::from_str(&json).expect("parse");
        let mut resumed = Simulator::restore(Arc::clone(&topo), NullTap, ckpt).expect("restore");
        resumed.run_to_quiescence();
        let (out_resumed, _) = resumed.finish();

        assert_eq!(
            serde_json::to_string(&out_straight).expect("json"),
            serde_json::to_string(&out_resumed).expect("json"),
            "resumed outputs must be byte-identical to the uninterrupted run"
        );
    }

    #[test]
    fn checkpoint_restore_preserves_counters_and_clock() {
        let topo = two_cluster_topo();
        let mut sim = busy_sim(&topo);
        sim.run_until(SimTime::from_micros(900));
        let ckpt = sim.checkpoint();
        assert_eq!(ckpt.taken_at(), SimTime::from_micros(900));
        let restored = Simulator::restore(Arc::clone(&topo), NullTap, ckpt).expect("restore");
        assert_eq!(restored.now(), sim.now());
        assert_eq!(restored.pending_events(), sim.pending_events());
        assert_eq!(restored.processed_events(), sim.processed_events());
    }

    #[test]
    fn engine_checkpoint_serialization_is_stable() {
        // Regression guard for the dense-Vec utilization storage: the
        // checkpoint must keep serializing exactly as the HashMap-backed
        // engine did — same top-level field order, and `util_series` as
        // link-sorted `(LinkId, bins)` pairs covering every tracked link.
        let topo = two_cluster_topo();
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("valid config");
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[3].hosts[0];
        let mut tracked = vec![topo.host_uplink(a), topo.host_downlink(a)];
        tracked.sort();
        sim.track_utilization(SimDuration::from_micros(500), &tracked)
            .expect("track");
        let conn = sim
            .open_connection(SimTime::ZERO, a, b, 3306)
            .expect("open");
        sim.send_message(
            conn,
            SimTime::ZERO,
            400,
            5_000,
            SimDuration::from_micros(80),
        )
        .expect("send");
        sim.run_until(SimTime::from_micros(800));
        let ckpt = sim.checkpoint();
        let json = serde_json::to_string(&ckpt).expect("serialize");

        let expected_keys = [
            "cfg",
            "now",
            "events",
            "next_seq",
            "conns",
            "free_conns",
            "next_port",
            "link_free_at",
            "link_backlog",
            "link_counters",
            "link_rate_factor",
            "health",
            "watched",
            "util_tracked",
            "switch_occ",
            "util_interval",
            "util_series",
            "buf_sampler",
            "buffer_stats",
            "emitted_packets",
            "delivered_packets",
            "completed_requests",
            "messages_on_closed",
            "stale_packets",
            "faults_applied",
            "reroutes",
            "reroute_failures",
            "failed_handshakes",
            "aborted_connections",
            "record_latencies",
            "latencies",
            "processed_events",
        ];
        let mut cursor = 0usize;
        for key in expected_keys {
            let needle = format!("\"{key}\":");
            let at = json[cursor..]
                .find(&needle)
                .unwrap_or_else(|| panic!("field {key} missing or out of order"));
            cursor += at + needle.len();
        }

        // util_series value shape: exactly the tracked links, ascending.
        let listed: Vec<LinkId> = ckpt.util_series.iter().map(|(l, _)| *l).collect();
        assert_eq!(listed, tracked, "pairs must cover tracked links in order");
        assert!(
            ckpt.util_series.iter().any(|(_, bins)| !bins.is_empty()),
            "a busy tracked link must have recorded utilization bins"
        );

        // And the checkpoint round-trips into an engine whose own
        // checkpoint serializes to the same bytes.
        let parsed: EngineCheckpoint = serde_json::from_str(&json).expect("parse");
        let restored = Simulator::restore(Arc::clone(&topo), NullTap, parsed).expect("restore");
        assert_eq!(
            serde_json::to_string(&restored.checkpoint()).expect("json"),
            json,
            "restore → checkpoint must be the identity on the serialized form"
        );
    }

    #[test]
    fn restore_rejects_wrong_topology() {
        let topo = two_cluster_topo();
        let mut sim = busy_sim(&topo);
        sim.run_until(SimTime::from_micros(500));
        let ckpt = sim.checkpoint();
        let other = Arc::new(
            Topology::build(TopologySpec::single_dc(vec![ClusterSpec::frontend(4, 2)]))
                .expect("valid"),
        );
        match Simulator::restore(other, NullTap, ckpt) {
            Err(SimError::Config(msg)) => assert!(msg.contains("checkpoint mismatch")),
            Err(other) => panic!("expected Config error, got {other:?}"),
            Ok(_) => panic!("expected Config error, got a restored simulator"),
        }
    }

    #[test]
    fn audit_holds_throughout_a_run() {
        let topo = two_cluster_topo();
        let mut sim = busy_sim(&topo);
        for step in 1..=8u64 {
            sim.run_until(SimTime::from_micros(step * 300));
            sim.audit().expect("invariants must hold mid-run");
        }
        sim.run_to_quiescence();
        sim.audit().expect("invariants must hold at quiescence");
    }

    #[test]
    fn audit_detects_conservation_break() {
        let topo = two_cluster_topo();
        let mut sim = busy_sim(&topo);
        sim.run_until(SimTime::from_millis(1));
        sim.delivered_packets += 1; // corrupt a counter behind the engine's back
        let report = sim.audit().expect_err("corruption must be detected");
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, AuditViolation::PacketConservation { .. })));
        let rendered = report.to_string();
        assert!(rendered.contains("packet conservation"), "{rendered}");
    }

    #[test]
    fn audit_detects_link_over_delivery() {
        let topo = two_cluster_topo();
        let mut sim = busy_sim(&topo);
        sim.run_to_quiescence();
        // A link that claims traffic while its clock says it was never busy
        // violates the rate x elapsed bound. Keep packet conservation
        // intact by inflating only the byte counter.
        let li = (0..sim.link_counters.len())
            .find(|&i| sim.link_counters[i].tx_bytes > 0)
            .expect("some link carried traffic");
        sim.link_counters[li].tx_bytes += 10_000_000_000;
        let report = sim.audit().expect_err("over-delivery must be detected");
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, AuditViolation::LinkOverDelivery { .. })));
    }
}
