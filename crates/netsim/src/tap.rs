//! Packet observation.
//!
//! A [`PacketTap`] receives every packet the engine transmits on a
//! *watched* link, timestamped at the end of serialization on that link —
//! the moment a mirror port or an end-host capture would see it. The
//! telemetry crate implements the paper's two collection systems
//! (port mirroring and Fbflow sampling) on top of this trait.

use crate::packet::Packet;
use sonet_topology::LinkId;
use sonet_util::SimTime;

/// Observer of packets on watched links.
pub trait PacketTap {
    /// Called once per packet per watched link, in non-decreasing time
    /// order per link.
    fn on_packet(&mut self, at: SimTime, link: LinkId, pkt: &Packet);
}

/// A tap that ignores everything (for simulations without telemetry).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTap;

impl PacketTap for NullTap {
    fn on_packet(&mut self, _at: SimTime, _link: LinkId, _pkt: &Packet) {}
}

impl<T: PacketTap + ?Sized> PacketTap for &mut T {
    fn on_packet(&mut self, at: SimTime, link: LinkId, pkt: &Packet) {
        (**self).on_packet(at, link, pkt)
    }
}

impl<T: PacketTap + ?Sized> PacketTap for Box<T> {
    fn on_packet(&mut self, at: SimTime, link: LinkId, pkt: &Packet) {
        (**self).on_packet(at, link, pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{ConnId, Dir, FlowKey, PacketKind};
    use sonet_topology::HostId;

    struct Counting(u32);
    impl PacketTap for Counting {
        fn on_packet(&mut self, _at: SimTime, _link: LinkId, _pkt: &Packet) {
            self.0 += 1;
        }
    }

    #[test]
    fn tap_forwarding_through_references_and_boxes() {
        let pkt = Packet {
            conn: ConnId { idx: 0, gen: 0 },
            key: FlowKey {
                client: HostId(0),
                server: HostId(1),
                client_port: 1,
                server_port: 2,
            },
            dir: Dir::ClientToServer,
            kind: PacketKind::Ack,
            seq: 0,
            msg: 0,
            payload: 0,
            wire_bytes: 66,
        };
        let mut c = Counting(0);
        {
            let by_ref: &mut Counting = &mut c;
            by_ref.on_packet(SimTime::ZERO, LinkId(0), &pkt);
        }
        let mut boxed: Box<Counting> = Box::new(c);
        boxed.on_packet(SimTime::ZERO, LinkId(0), &pkt);
        assert_eq!(boxed.0, 2);
        NullTap.on_packet(SimTime::ZERO, LinkId(0), &pkt); // no panic
    }
}
