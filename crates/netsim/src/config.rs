//! Simulator configuration: transport constants and switch buffer sizing.

use serde::{Deserialize, Serialize};
use sonet_topology::SwitchKind;
use sonet_util::SimDuration;

/// Shared-buffer parameters for one switch class.
///
/// Commodity top-of-rack ASICs of the paper's era (Trident-class) expose a
/// shared packet buffer of ~12 MB across all ports with dynamic-threshold
/// (DT) admission: a packet is admitted to an egress queue only while that
/// queue is shorter than `alpha ×` the remaining free pool. §6.3 observes
/// Web racks running at two-thirds of this shared pool despite ~1 % link
/// utilization — reproducing that requires modeling the *shared* pool, not
/// per-port FIFOs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BufferConfig {
    /// Shared pool size in bytes.
    pub shared_bytes: u64,
    /// Dynamic-threshold alpha: max egress backlog as a multiple of the
    /// free pool.
    pub alpha: f64,
}

impl BufferConfig {
    /// Trident-class ToR: 12 MB shared, alpha 1.
    pub fn tor_default() -> BufferConfig {
        BufferConfig {
            shared_bytes: 12 << 20,
            alpha: 1.0,
        }
    }

    /// Deeper-buffered aggregation switch: 96 MB shared.
    pub fn agg_default() -> BufferConfig {
        BufferConfig {
            shared_bytes: 96 << 20,
            alpha: 2.0,
        }
    }
}

/// Engine-wide configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Maximum segment size (application payload per data packet).
    pub mss: u32,
    /// Framing overhead per packet on the wire (Ethernet + IP + TCP).
    pub header_bytes: u32,
    /// Wire size of a zero-payload control packet (SYN/ACK/FIN).
    pub control_bytes: u32,
    /// Per-direction sending window, in segments (ACK clocking bound).
    pub window_segments: u32,
    /// Receiver sends an ACK after this many unacknowledged data segments
    /// (delayed ACK; message boundaries always ACK immediately).
    pub ack_every: u32,
    /// Go-back-N retransmission timeout.
    pub rto: SimDuration,
    /// Give up on a handshake after this many SYNs (exponential backoff
    /// between attempts); the connection is then aborted instead of
    /// retrying forever, so workloads degrade rather than wedge when a
    /// server is unreachable.
    pub syn_max_attempts: u32,
    /// Abort a connection after this many consecutive retransmissions
    /// with no acknowledgement progress *while its route is broken* (a
    /// dead link with no healthy alternative). Timeouts on a healthy
    /// route retransmit forever, as before.
    pub max_consecutive_rtos: u32,
    /// How long a closed connection's slot is quarantined before reuse.
    ///
    /// Must comfortably exceed the worst-case lifetime of in-flight
    /// packets and timers of the previous occupant; generation tags make
    /// stragglers harmless, so this only affects how quickly 5-tuples
    /// could be re-observed.
    pub conn_quarantine: SimDuration,
    /// Buffers for rack switches (RSW).
    pub rsw_buffer: BufferConfig,
    /// Buffers for aggregation switches (CSW/FC/DR/backbone).
    pub agg_buffer: BufferConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mss: 1460,
            // 14 (Eth) + 4 (FCS) + 20 (IP) + 20 (TCP) + 12 (timestamps) = 70;
            // rounded to the 66-byte minimum ACK frame commonly seen in traces
            // plus options. We use 54 + 12 = 66 for control, 66 for data
            // framing too, so a full data packet is 1460 + 66 = 1526 wire
            // bytes and a pure ACK is 66.
            header_bytes: 66,
            control_bytes: 66,
            window_segments: 64,
            ack_every: 2,
            rto: SimDuration::from_millis(50),
            syn_max_attempts: 6,
            max_consecutive_rtos: 8,
            conn_quarantine: SimDuration::from_millis(200),
            rsw_buffer: BufferConfig::tor_default(),
            agg_buffer: BufferConfig::agg_default(),
        }
    }
}

impl SimConfig {
    /// Buffer configuration for a given switch kind.
    pub fn buffer_for(&self, kind: SwitchKind) -> BufferConfig {
        match kind {
            SwitchKind::Rsw => self.rsw_buffer,
            _ => self.agg_buffer,
        }
    }

    /// Wire size of a data packet carrying `payload` bytes.
    pub fn data_wire_bytes(&self, payload: u32) -> u32 {
        debug_assert!(payload > 0 && payload <= self.mss);
        payload + self.header_bytes
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.mss == 0 {
            return Err("mss must be positive".into());
        }
        if self.window_segments == 0 {
            return Err("window must be at least 1 segment".into());
        }
        if self.ack_every == 0 {
            return Err("ack_every must be at least 1".into());
        }
        if self.rto.is_zero() {
            return Err("rto must be positive".into());
        }
        if self.syn_max_attempts == 0 {
            return Err("syn_max_attempts must be at least 1".into());
        }
        if self.max_consecutive_rtos == 0 {
            return Err("max_consecutive_rtos must be at least 1".into());
        }
        if self.rsw_buffer.shared_bytes == 0 || self.agg_buffer.shared_bytes == 0 {
            return Err("switch buffers must be non-empty".into());
        }
        if self.rsw_buffer.alpha <= 0.0 || self.agg_buffer.alpha <= 0.0 {
            return Err("DT alpha must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SimConfig::default()
            .validate()
            .expect("default config valid");
    }

    #[test]
    fn wire_sizes() {
        let c = SimConfig::default();
        assert_eq!(c.data_wire_bytes(1460), 1526);
        assert_eq!(c.data_wire_bytes(100), 166);
        assert_eq!(c.control_bytes, 66);
    }

    #[test]
    fn buffer_for_kind() {
        let c = SimConfig::default();
        assert_eq!(c.buffer_for(SwitchKind::Rsw), c.rsw_buffer);
        assert_eq!(c.buffer_for(SwitchKind::Csw), c.agg_buffer);
        assert_eq!(c.buffer_for(SwitchKind::Backbone), c.agg_buffer);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut c = SimConfig::default();
        c.mss = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::default();
        c.window_segments = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::default();
        c.rto = SimDuration::ZERO;
        assert!(c.validate().is_err());
        let mut c = SimConfig::default();
        c.rsw_buffer.alpha = 0.0;
        assert!(c.validate().is_err());
    }
}
