//! Packets and flow identity.
//!
//! A [`FlowKey`] is the 5-tuple the paper aggregates by (§5.1 "flows
//! (defined by 5-tuple)"); protocol is always TCP in our model, so the key
//! stores the two hosts and two ports. [`Packet`] is the header view a tap
//! observes — there is no payload, only sizes, which is faithful to the
//! paper's packet-*header* traces.

use serde::{Deserialize, Serialize};
use sonet_topology::HostId;
use std::fmt;

/// Handle to a connection opened on the simulator.
///
/// Connection slots are recycled once a connection has been closed and
/// quarantined (ephemeral services like Hadoop open hundreds of
/// connections per second per host, §6.2); the generation tag makes stale
/// handles and in-flight packets from a previous occupant detectable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConnId {
    /// Slot index in the simulator's connection table.
    pub idx: u32,
    /// Incarnation of the slot.
    pub gen: u32,
}

impl ConnId {
    /// Dense index into the simulator's connection table.
    pub const fn index(self) -> usize {
        self.idx as usize
    }
}

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn{}.{}", self.idx, self.gen)
    }
}

/// Direction of a packet within its connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dir {
    /// From the connection opener toward the accepting host.
    ClientToServer,
    /// From the accepting host back to the opener.
    ServerToClient,
}

impl Dir {
    /// The opposite direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::ClientToServer => Dir::ServerToClient,
            Dir::ServerToClient => Dir::ClientToServer,
        }
    }
}

/// TCP 5-tuple (protocol fixed to TCP).
///
/// `src`/`dst` are the *client* and *server* of the connection; a concrete
/// packet's on-the-wire source/destination depend on its [`Dir`] (see
/// [`Packet::wire_src`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey {
    /// Connection-opening host.
    pub client: HostId,
    /// Accepting host.
    pub server: HostId,
    /// Ephemeral port on the client.
    pub client_port: u16,
    /// Service port on the server (identifies the service).
    pub server_port: u16,
}

impl FlowKey {
    /// A stable hash used for ECMP path selection, mimicking switch
    /// hardware hashing of the 5-tuple (FNV-1a over the tuple fields).
    pub fn ecmp_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in [
            self.client.0 as u64,
            self.server.0 as u64,
            self.client_port as u64,
            self.server_port as u64,
        ] {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{}",
            self.client, self.client_port, self.server, self.server_port
        )
    }
}

/// Packet type, as classified from TCP header flags in a real trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// Connection request.
    Syn,
    /// Connection accept.
    SynAck,
    /// Data segment. `last_of_msg` marks a PSH-flagged message boundary.
    Data {
        /// True for the final segment of an application message.
        last_of_msg: bool,
    },
    /// Pure acknowledgement (no payload).
    Ack,
    /// Connection teardown.
    Fin,
    /// Teardown acknowledgement.
    FinAck,
}

impl PacketKind {
    /// True for segments that carry application payload.
    pub fn is_data(self) -> bool {
        matches!(self, PacketKind::Data { .. })
    }
}

/// A packet header as seen by a tap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Connection this packet belongs to.
    pub conn: ConnId,
    /// 5-tuple.
    pub key: FlowKey,
    /// Direction within the connection.
    pub dir: Dir,
    /// Header-derived type.
    pub kind: PacketKind,
    /// Cumulative sequence meaning: for `Data`, the segment index within
    /// the direction; for `Ack`/`FinAck`, the cumulative count of segments
    /// acknowledged.
    pub seq: u64,
    /// Application message index this segment belongs to (Data only).
    pub msg: u32,
    /// Application payload bytes carried.
    pub payload: u32,
    /// Total bytes on the wire (payload + Ethernet/IP/TCP framing).
    pub wire_bytes: u32,
}

impl Packet {
    /// The transmitting host of this packet, given its direction.
    pub fn wire_src(&self) -> HostId {
        match self.dir {
            Dir::ClientToServer => self.key.client,
            Dir::ServerToClient => self.key.server,
        }
    }

    /// The receiving host of this packet.
    pub fn wire_dst(&self) -> HostId {
        match self.dir {
            Dir::ClientToServer => self.key.server,
            Dir::ServerToClient => self.key.client,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> FlowKey {
        FlowKey {
            client: HostId(1),
            server: HostId(2),
            client_port: 40000,
            server_port: 80,
        }
    }

    #[test]
    fn ecmp_hash_is_stable_and_tuple_sensitive() {
        let a = key();
        let mut b = key();
        assert_eq!(a.ecmp_hash(), b.ecmp_hash());
        b.client_port = 40001;
        assert_ne!(a.ecmp_hash(), b.ecmp_hash());
    }

    #[test]
    fn wire_endpoints_follow_direction() {
        let p = Packet {
            conn: ConnId { idx: 0, gen: 0 },
            key: key(),
            dir: Dir::ServerToClient,
            kind: PacketKind::Ack,
            seq: 5,
            msg: 0,
            payload: 0,
            wire_bytes: 66,
        };
        assert_eq!(p.wire_src(), HostId(2));
        assert_eq!(p.wire_dst(), HostId(1));
        assert_eq!(p.dir.flip(), Dir::ClientToServer);
    }

    #[test]
    fn kind_classification() {
        assert!(PacketKind::Data { last_of_msg: true }.is_data());
        assert!(!PacketKind::Ack.is_data());
        assert!(!PacketKind::Syn.is_data());
    }
}
