//! Fault injection: deterministic schedules of link/switch failures and
//! telemetry degradation.
//!
//! A [`FaultPlan`] is data, not behaviour: an ordered list of timestamped
//! [`FaultEvent`]s that the engine ([`crate::Simulator::inject_faults`])
//! and the capture layer replay at simulated time. Two runs with the same
//! seed and the same plan produce byte-identical outputs — faults are part
//! of the scenario, never a source of nondeterminism.
//!
//! Network faults (link/switch down/up, degraded line rate) are applied by
//! the packet engine; telemetry faults (mirror capture loss, Fbflow agent
//! sample drops) are applied by whichever collection layer owns the tap,
//! with every suppressed observation *counted* rather than silently gone —
//! mirroring how production monitoring loses data while its loss counters
//! keep working.

use serde::{Deserialize, Serialize};
use sonet_topology::{LinkId, SwitchId, SwitchKind, Topology};
use sonet_util::{Rng, SimDuration, SimTime};

/// Upper bound on [`FaultKind::FlapLink`] cycles — each cycle expands to
/// two calendar events, so the cap bounds plan-to-calendar blowup.
pub const MAX_FLAP_CYCLES: u32 = 1000;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A directed link stops carrying traffic.
    LinkDown(LinkId),
    /// A previously failed link recovers.
    LinkUp(LinkId),
    /// A switch fails: every link touching it becomes unusable.
    SwitchDown(SwitchId),
    /// A previously failed switch recovers.
    SwitchUp(SwitchId),
    /// A link's line rate is multiplied by `rate_factor` (0 < factor ≤ 1;
    /// 1.0 restores the nominal rate).
    DegradeLink {
        /// The degraded link.
        link: LinkId,
        /// Multiplier on the nominal line rate.
        rate_factor: f64,
    },
    /// A *gray* failure: the link stays up as far as routing is concerned
    /// (ECMP keeps hashing flows onto it, `route_healthy` never avoids
    /// it), but it silently eats this fraction of the packets offered to
    /// it. 0.0 heals the link. The defining property of a gray failure is
    /// that the control plane cannot see it — only transports bleed.
    GrayLink {
        /// The gray link.
        link: LinkId,
        /// Fraction of offered packets silently dropped, in `[0, 1]`.
        drop_fraction: f64,
    },
    /// A flapping link: starting at the event time the link goes down,
    /// comes back `half_period` later, and repeats for `cycles`
    /// down/up trains. The engine expands the flap into plain
    /// `LinkDown`/`LinkUp` events at injection time, so checkpoints and
    /// replicas only ever see the primitive kinds.
    FlapLink {
        /// The flapping link.
        link: LinkId,
        /// Time spent in each down (and each up) state.
        half_period: SimDuration,
        /// Number of down/up cycles (≥ 1).
        cycles: u32,
    },
    /// The port-mirror capture path starts dropping this fraction of
    /// packets (counted as losses; 0.0 restores full fidelity).
    MirrorLoss {
        /// Fraction of mirrored packets lost, in `[0, 1]`.
        fraction: f64,
    },
    /// Fbflow agents start dropping this fraction of their samples
    /// (counted; 0.0 restores full collection).
    FbflowLoss {
        /// Fraction of agent samples lost, in `[0, 1]`.
        fraction: f64,
    },
}

impl FaultKind {
    /// True for faults the packet engine applies (topology/link state).
    pub fn is_network(&self) -> bool {
        !self.is_telemetry()
    }

    /// True for faults the telemetry/capture layer applies.
    pub fn is_telemetry(&self) -> bool {
        matches!(
            self,
            FaultKind::MirrorLoss { .. } | FaultKind::FbflowLoss { .. }
        )
    }
}

/// A fault applied at a simulated instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault takes effect.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, time-ordered schedule of faults.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (the healthy baseline).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Appends a fault, keeping the schedule sorted by time. Events at
    /// equal timestamps keep their insertion order (stable), so a plan is
    /// replayed exactly as written.
    pub fn at(mut self, at: SimTime, kind: FaultKind) -> FaultPlan {
        let pos = self.events.partition_point(|e| e.at <= at);
        self.events.insert(pos, FaultEvent { at, kind });
        self
    }

    /// All events in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The network-fault subset (engine-applied).
    pub fn network_events(&self) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(|e| e.kind.is_network())
    }

    /// The telemetry-fault subset (capture-layer-applied).
    pub fn telemetry_events(&self) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(|e| e.kind.is_telemetry())
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Checks every event against `topo`: ids in range, fractions in
    /// `[0, 1]`, rate factors in `(0, 1]`.
    pub fn validate(&self, topo: &Topology) -> Result<(), String> {
        let n_links = topo.links().len();
        let n_switches = topo.switches().len();
        for ev in &self.events {
            match ev.kind {
                FaultKind::LinkDown(l) | FaultKind::LinkUp(l) => {
                    if l.index() >= n_links {
                        return Err(format!("{l} is out of range ({n_links} links)"));
                    }
                }
                FaultKind::SwitchDown(s) | FaultKind::SwitchUp(s) => {
                    if s.index() >= n_switches {
                        return Err(format!("{s} is out of range ({n_switches} switches)"));
                    }
                }
                FaultKind::DegradeLink { link, rate_factor } => {
                    if link.index() >= n_links {
                        return Err(format!("{link} is out of range ({n_links} links)"));
                    }
                    if !(rate_factor > 0.0 && rate_factor <= 1.0) {
                        return Err(format!("rate factor {rate_factor} outside (0, 1]"));
                    }
                }
                FaultKind::GrayLink {
                    link,
                    drop_fraction,
                } => {
                    if link.index() >= n_links {
                        return Err(format!("{link} is out of range ({n_links} links)"));
                    }
                    if !(0.0..=1.0).contains(&drop_fraction) {
                        return Err(format!("gray drop fraction {drop_fraction} outside [0, 1]"));
                    }
                }
                FaultKind::FlapLink {
                    link,
                    half_period,
                    cycles,
                } => {
                    if link.index() >= n_links {
                        return Err(format!("{link} is out of range ({n_links} links)"));
                    }
                    if half_period.as_nanos() == 0 {
                        return Err("flap half-period must be positive".into());
                    }
                    if cycles == 0 || cycles > MAX_FLAP_CYCLES {
                        return Err(format!(
                            "flap cycles {cycles} outside 1..={MAX_FLAP_CYCLES}"
                        ));
                    }
                }
                FaultKind::MirrorLoss { fraction } | FaultKind::FbflowLoss { fraction } => {
                    if !(0.0..=1.0).contains(&fraction) {
                        return Err(format!("loss fraction {fraction} outside [0, 1]"));
                    }
                }
            }
        }
        Ok(())
    }

    /// A seed-derived schedule over `horizon`: `failures` switch or link
    /// outages (each with a recovery at a random later time), one degraded
    /// link, and one window of partial mirror loss. Same topology + same
    /// seed → the same plan, byte for byte.
    ///
    /// Hosts' access links and the backbone are never failed (the paper's
    /// plant treats those as the unredundant edges of the world); outages
    /// target the redundant CSW/FC layers where ECMP can re-hash around
    /// them.
    pub fn random(topo: &Topology, seed: u64, horizon: SimDuration, failures: usize) -> FaultPlan {
        let mut rng = Rng::new(seed).fork("fault-plan");
        let redundant: Vec<SwitchId> = topo
            .switches()
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.kind, SwitchKind::Csw | SwitchKind::Fc))
            .map(|(i, _)| SwitchId(i as u32))
            .collect();
        let span = horizon.as_nanos().max(1);
        let mut plan = FaultPlan::new();
        for _ in 0..failures {
            let down_at = SimTime::from_nanos(rng.below(span));
            let up_at = SimTime::from_nanos(down_at.as_nanos() + 1 + rng.below(span / 2 + 1));
            if !redundant.is_empty() && rng.chance(0.6) {
                let sw = *rng.pick(&redundant);
                plan = plan
                    .at(down_at, FaultKind::SwitchDown(sw))
                    .at(up_at, FaultKind::SwitchUp(sw));
            } else {
                let link = LinkId(rng.below(topo.links().len() as u64) as u32);
                plan = plan
                    .at(down_at, FaultKind::LinkDown(link))
                    .at(up_at, FaultKind::LinkUp(link));
            }
        }
        // One degraded link for the whole tail of the run.
        let link = LinkId(rng.below(topo.links().len() as u64) as u32);
        let factor = rng.range_f64(0.25, 0.75);
        plan = plan.at(
            SimTime::from_nanos(rng.below(span)),
            FaultKind::DegradeLink {
                link,
                rate_factor: factor,
            },
        );
        // One window of degraded mirror capture.
        let loss_at = SimTime::from_nanos(rng.below(span));
        let heal_at = SimTime::from_nanos(loss_at.as_nanos() + 1 + rng.below(span / 2 + 1));
        plan = plan
            .at(
                loss_at,
                FaultKind::MirrorLoss {
                    fraction: rng.range_f64(0.1, 0.9),
                },
            )
            .at(heal_at, FaultKind::MirrorLoss { fraction: 0.0 });
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonet_topology::{ClusterSpec, TopologySpec};

    fn topo() -> Topology {
        Topology::build(TopologySpec::single_dc(vec![ClusterSpec::frontend(4, 2)])).expect("valid")
    }

    #[test]
    fn plan_keeps_time_order_with_stable_ties() {
        let t = SimTime::from_millis(5);
        let plan = FaultPlan::new()
            .at(SimTime::from_millis(9), FaultKind::LinkUp(LinkId(0)))
            .at(t, FaultKind::LinkDown(LinkId(0)))
            .at(t, FaultKind::SwitchDown(SwitchId(1)))
            .at(SimTime::ZERO, FaultKind::MirrorLoss { fraction: 0.5 });
        let ats: Vec<u64> = plan.events().iter().map(|e| e.at.as_millis()).collect();
        assert_eq!(ats, vec![0, 5, 5, 9]);
        // Equal timestamps preserve insertion order.
        assert_eq!(plan.events()[1].kind, FaultKind::LinkDown(LinkId(0)));
        assert_eq!(plan.events()[2].kind, FaultKind::SwitchDown(SwitchId(1)));
    }

    #[test]
    fn network_and_telemetry_split() {
        let plan = FaultPlan::new()
            .at(SimTime::ZERO, FaultKind::LinkDown(LinkId(3)))
            .at(SimTime::ZERO, FaultKind::MirrorLoss { fraction: 1.0 })
            .at(SimTime::ZERO, FaultKind::FbflowLoss { fraction: 0.25 });
        assert_eq!(plan.network_events().count(), 1);
        assert_eq!(plan.telemetry_events().count(), 2);
    }

    #[test]
    fn validation_catches_bad_ids_and_fractions() {
        let t = topo();
        let ok = FaultPlan::new()
            .at(SimTime::ZERO, FaultKind::SwitchDown(SwitchId(0)))
            .at(
                SimTime::ZERO,
                FaultKind::DegradeLink {
                    link: LinkId(0),
                    rate_factor: 0.5,
                },
            );
        assert!(ok.validate(&t).is_ok());
        let bad_link = FaultPlan::new().at(SimTime::ZERO, FaultKind::LinkDown(LinkId(9999)));
        assert!(bad_link.validate(&t).is_err());
        let bad_switch = FaultPlan::new().at(SimTime::ZERO, FaultKind::SwitchUp(SwitchId(9999)));
        assert!(bad_switch.validate(&t).is_err());
        let bad_factor = FaultPlan::new().at(
            SimTime::ZERO,
            FaultKind::DegradeLink {
                link: LinkId(0),
                rate_factor: 0.0,
            },
        );
        assert!(bad_factor.validate(&t).is_err());
        let bad_fraction =
            FaultPlan::new().at(SimTime::ZERO, FaultKind::MirrorLoss { fraction: 1.5 });
        assert!(bad_fraction.validate(&t).is_err());
    }

    #[test]
    fn validation_covers_gray_and_flap_kinds() {
        let t = topo();
        let ok = FaultPlan::new()
            .at(
                SimTime::ZERO,
                FaultKind::GrayLink {
                    link: LinkId(0),
                    drop_fraction: 0.3,
                },
            )
            .at(
                SimTime::from_millis(1),
                FaultKind::FlapLink {
                    link: LinkId(1),
                    half_period: SimDuration::from_millis(100),
                    cycles: 3,
                },
            );
        assert!(ok.validate(&t).is_ok());
        let bad_gray = FaultPlan::new().at(
            SimTime::ZERO,
            FaultKind::GrayLink {
                link: LinkId(0),
                drop_fraction: 1.5,
            },
        );
        assert!(bad_gray.validate(&t).is_err());
        let bad_flap_period = FaultPlan::new().at(
            SimTime::ZERO,
            FaultKind::FlapLink {
                link: LinkId(0),
                half_period: SimDuration::from_nanos(0),
                cycles: 1,
            },
        );
        assert!(bad_flap_period.validate(&t).is_err());
        let bad_flap_cycles = FaultPlan::new().at(
            SimTime::ZERO,
            FaultKind::FlapLink {
                link: LinkId(0),
                half_period: SimDuration::from_millis(1),
                cycles: 0,
            },
        );
        assert!(bad_flap_cycles.validate(&t).is_err());
    }

    #[test]
    fn random_plans_are_seed_deterministic_and_valid() {
        let t = topo();
        let horizon = SimDuration::from_secs(3);
        let a = FaultPlan::random(&t, 42, horizon, 3);
        let b = FaultPlan::random(&t, 42, horizon, 3);
        assert_eq!(a, b);
        assert!(a.validate(&t).is_ok());
        assert!(a.len() >= 3, "plan has {} events", a.len());
        let c = FaultPlan::random(&t, 43, horizon, 3);
        assert_ne!(a, c, "different seeds should differ");
    }
}
