//! Hierarchical span tracing exported as Chrome `trace_event` JSON.
//!
//! Spans are *complete events* (`"ph":"X"`) with microsecond timestamps
//! relative to a process-wide epoch, tagged with a per-thread `tid`, so
//! the exported file drops straight into Perfetto (ui.perfetto.dev) or
//! `chrome://tracing` and renders one lane per worker thread.
//!
//! The buffer is capped ([`MAX_EVENTS`]); past the cap new spans are
//! counted in [`dropped`] rather than silently discarded — a truncated
//! trace always says so. Wall-clock reads happen only here, behind the
//! mode gate, never on a deterministic code path.

use serde::Serialize;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Trace-buffer capacity, in events. At deep mode a fast capture emits a
/// few thousand window spans; 1M leaves ample headroom for long runs
/// while bounding memory (~100 B/event).
pub const MAX_EVENTS: usize = 1 << 20;

/// Span categories: coarse pipeline phases vs. per-window engine detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Pipeline phase (generate → ingest → analyze → render); recorded
    /// at `summary` and above and aggregated into `RUNINFO.json`.
    Phase,
    /// Per-window engine span; recorded only at `deep`.
    Window,
}

impl Category {
    fn name(self) -> &'static str {
        match self {
            Category::Phase => "phase",
            Category::Window => "window",
        }
    }
}

#[derive(Clone)]
struct Event {
    name: String,
    cat: Category,
    ts_us: u64,
    dur_us: u64,
    tid: u64,
}

struct Buffer {
    events: Mutex<Vec<Event>>,
    dropped: AtomicU64,
}

fn buffer() -> &'static Buffer {
    static BUF: OnceLock<Buffer> = OnceLock::new();
    BUF.get_or_init(|| Buffer {
        events: Mutex::new(Vec::new()),
        dropped: AtomicU64::new(0),
    })
}

/// The process trace epoch: all span timestamps are relative to the
/// first call, so traces start near t=0.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the trace epoch. Wall-clock read — obs side
/// channel only.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Process-unique lane id for the calling thread (Perfetto `tid`).
fn thread_lane() -> u64 {
    static NEXT: AtomicUsize = AtomicUsize::new(1);
    thread_local! {
        static LANE: u64 = NEXT.fetch_add(1, Ordering::Relaxed) as u64;
    }
    LANE.with(|l| *l)
}

fn record(name: &str, cat: Category, ts_us: u64, dur_us: u64) {
    let buf = buffer();
    let mut events = buf.events.lock().expect("trace buffer poisoned");
    if events.len() >= MAX_EVENTS {
        buf.dropped.fetch_add(1, Ordering::Relaxed);
        return;
    }
    events.push(Event {
        name: name.to_owned(),
        cat,
        ts_us,
        dur_us,
        tid: thread_lane(),
    });
}

/// Records a complete span from an explicit start timestamp (taken with
/// [`now_us`]) to now. For call sites that cannot hold a guard across
/// the measured region (e.g. the engine's window plan closure).
pub fn complete(name: &str, cat: Category, start_us: u64) {
    record(name, cat, start_us, now_us().saturating_sub(start_us));
}

/// An RAII span: records a complete event from construction to drop.
/// Construct through [`span`] / [`deep_span`] so disabled modes cost a
/// single atomic load.
pub struct SpanGuard {
    name: &'static str,
    cat: Category,
    start_us: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        record(
            self.name,
            self.cat,
            self.start_us,
            now_us().saturating_sub(self.start_us),
        );
    }
}

/// Opens a phase span (recorded at `summary` and above). Returns `None`
/// when observability is off — bind it (`let _span = …`) and the region
/// is measured only when someone is watching.
pub fn span(name: &'static str) -> Option<SpanGuard> {
    if !crate::on() {
        return None;
    }
    Some(SpanGuard {
        name,
        cat: Category::Phase,
        start_us: now_us(),
    })
}

/// Opens a per-window span (recorded only at `deep`).
pub fn deep_span(name: &'static str) -> Option<SpanGuard> {
    if !crate::deep() {
        return None;
    }
    Some(SpanGuard {
        name,
        cat: Category::Window,
        start_us: now_us(),
    })
}

/// Number of spans dropped after the buffer cap was reached.
pub fn dropped() -> u64 {
    buffer().dropped.load(Ordering::Relaxed)
}

/// Run-attribution metadata merged into the Chrome trace's `otherData`
/// block (fault-plan hash, campaign id, …).
fn export_meta() -> &'static Mutex<BTreeMap<&'static str, String>> {
    static META: OnceLock<Mutex<BTreeMap<&'static str, String>>> = OnceLock::new();
    META.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Attaches a key/value to the Chrome trace export's `otherData` block,
/// so a trace file is attributable on its own (e.g. `fault_plan_hash`,
/// `campaign_id`). Last write per key wins; inert when observability is
/// off.
pub fn set_export_meta(key: &'static str, value: impl Into<String>) {
    if !crate::on() {
        return;
    }
    export_meta()
        .lock()
        .expect("trace meta poisoned")
        .insert(key, value.into());
}

/// Total wall time per phase-span name, in seconds — the `phases` block
/// of `RUNINFO.json`. Window spans are excluded (they nest inside
/// phases and would double-count).
pub fn phase_totals() -> BTreeMap<String, f64> {
    let events = buffer().events.lock().expect("trace buffer poisoned");
    let mut totals: BTreeMap<String, f64> = BTreeMap::new();
    for e in events.iter().filter(|e| e.cat == Category::Phase) {
        *totals.entry(e.name.clone()).or_insert(0.0) += e.dur_us as f64 / 1e6;
    }
    totals
}

/// One Chrome `trace_event` entry: a complete event (`ph:"X"`).
///
/// The vendored serde derive emits field names verbatim (no rename
/// support), so the Chrome-mandated keys are spelled as Rust idents.
#[derive(Serialize)]
struct ChromeEvent {
    name: String,
    cat: &'static str,
    ph: &'static str,
    ts: u64,
    dur: u64,
    pid: u64,
    tid: u64,
}

/// The top-level Chrome trace object (`traceEvents` array form).
#[derive(Serialize)]
#[allow(non_snake_case)]
struct ChromeTrace {
    traceEvents: Vec<ChromeEvent>,
    displayTimeUnit: &'static str,
    otherData: BTreeMap<&'static str, String>,
}

/// Exports the trace buffer as Chrome `trace_event` JSON at `path`,
/// viewable in Perfetto. Returns the number of events written.
pub fn export_chrome(path: &Path) -> std::io::Result<usize> {
    let events = buffer()
        .events
        .lock()
        .expect("trace buffer poisoned")
        .clone();
    let n = events.len();
    let trace = ChromeTrace {
        traceEvents: events
            .into_iter()
            .map(|e| ChromeEvent {
                name: e.name,
                cat: e.cat.name(),
                ph: "X",
                ts: e.ts_us,
                dur: e.dur_us,
                pid: 1,
                tid: e.tid,
            })
            .collect(),
        displayTimeUnit: "ms",
        otherData: {
            let mut other = export_meta().lock().expect("trace meta poisoned").clone();
            other.insert("dropped_spans", dropped().to_string());
            other
        },
    };
    let json = serde_json::to_string(&trace).expect("trace serializes");
    let mut f = std::fs::File::create(path)?;
    f.write_all(json.as_bytes())?;
    f.sync_all()?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_events_round_trip_through_chrome_export() {
        // Record directly (bypassing the mode gate, which other tests in
        // this process own) and check the exported file shape.
        record("unit.phase", Category::Phase, 10, 250);
        record("unit.window", Category::Window, 20, 5);
        let path =
            std::env::temp_dir().join(format!("sonet-obs-trace-{}.json", std::process::id()));
        let n = export_chrome(&path).expect("export");
        assert!(n >= 2);
        let body = std::fs::read_to_string(&path).expect("read back");
        std::fs::remove_file(&path).ok();
        let v: serde_json::Value = serde_json::from_str(&body).expect("valid JSON");
        let events = v.get("traceEvents").expect("traceEvents present");
        let serde::Content::Seq(items) = &events.0 else {
            panic!("traceEvents must be an array");
        };
        assert!(items.len() >= 2);
        for item in items {
            let e = serde_json::Value(item.clone());
            assert_eq!(e.get("ph").expect("ph").0.as_str(), Some("X"));
            assert!(e.get("name").expect("name").0.as_str().is_some());
            assert!(matches!(e.get("ts").expect("ts").0, serde::Content::U64(_)));
            assert!(matches!(
                e.get("dur").expect("dur").0,
                serde::Content::U64(_)
            ));
        }
        assert!(phase_totals().contains_key("unit.phase"));
    }
}
