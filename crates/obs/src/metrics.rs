//! Lock-free metrics: monotonic counters, gauges, and fixed-bucket
//! histograms, sharded per worker thread and merged in canonical order.
//!
//! Hot-path writes are a single relaxed `fetch_add` on a per-thread shard
//! — no locks, no allocation, no wall-clock reads. The registry's mutex
//! is touched only on first registration of a name (cold) and at snapshot
//! time (coordinator only). Because every merge is a commutative sum over
//! shards and the snapshot iterates a name-sorted map, the rendered
//! snapshot is independent of worker scheduling — the property
//! `merged_histogram_independent_of_worker_scheduling` pins below.

use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of counter/histogram shards. Worker threads hash onto shards by
/// a process-unique thread id, so contention is bounded regardless of
/// `--threads` width.
const SHARDS: usize = 16;

/// Geometric ×4 bucket bounds (1 … 4^15 ≈ 1.07e9): the default for event
/// counts, byte sizes, and microsecond latencies.
pub const BOUNDS_POW4: &[u64] = &[
    1,
    4,
    16,
    64,
    256,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
    4_194_304,
    16_777_216,
    67_108_864,
    268_435_456,
    1_073_741_824,
];

/// Linear permille bounds (100 … 1000): for balance/ratio metrics.
pub const BOUNDS_PERMILLE: &[u64] = &[100, 200, 300, 400, 500, 600, 700, 800, 900, 1000];

/// Process-unique id for the calling thread, assigned on first use.
fn thread_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static ID: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id) % SHARDS
}

/// A monotonic counter, sharded across [`SHARDS`] atomics.
pub struct Counter {
    shards: [AtomicU64; SHARDS],
}

impl Counter {
    fn new() -> Counter {
        Counter {
            shards: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Adds `delta` to the calling thread's shard.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.shards[thread_shard()].fetch_add(delta, Ordering::Relaxed);
    }

    /// The merged total across all shards.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }
}

/// A last-writer-wins gauge (single atomic; gauges are set from the
/// coordinator at barriers, never raced from workers).
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge {
            value: AtomicU64::new(0),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram: per-shard bucket counts plus sum/count, with
/// one overflow bucket past the last bound.
pub struct Histogram {
    bounds: Vec<u64>,
    /// `SHARDS` rows of `bounds.len() + 1` bucket counters.
    buckets: Vec<Vec<AtomicU64>>,
    sum: [AtomicU64; SHARDS],
    count: [AtomicU64; SHARDS],
}

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "ascending bounds");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..SHARDS)
                .map(|_| (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect())
                .collect(),
            sum: std::array::from_fn(|_| AtomicU64::new(0)),
            count: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one observation into the calling thread's shard.
    #[inline]
    pub fn observe(&self, value: u64) {
        let shard = thread_shard();
        let b = self.bounds.partition_point(|&bound| bound < value);
        self.buckets[shard][b].fetch_add(1, Ordering::Relaxed);
        self.sum[shard].fetch_add(value, Ordering::Relaxed);
        self.count[shard].fetch_add(1, Ordering::Relaxed);
    }

    /// The merged per-bucket counts (one overflow bucket at the end).
    pub fn bucket_counts(&self) -> Vec<u64> {
        (0..=self.bounds.len())
            .map(|b| {
                self.buckets
                    .iter()
                    .map(|row| row[b].load(Ordering::Relaxed))
                    .sum()
            })
            .collect()
    }

    /// Merged observation count.
    pub fn count(&self) -> u64 {
        self.count.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }

    /// Merged observation sum.
    pub fn sum(&self) -> u64 {
        self.sum.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }
}

enum Entry {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A metrics registry: a name-sorted map of counters, gauges, and
/// histograms. Use [`global`] in instrumented code; instantiate directly
/// only in tests.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered under `name`, creating it on first use.
    ///
    /// Panics if `name` is already registered as a different metric kind
    /// — a programming error worth failing loudly on.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        match entries
            .entry(name.to_owned())
            .or_insert_with(|| Entry::Counter(Arc::new(Counter::new())))
        {
            Entry::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        match entries
            .entry(name.to_owned())
            .or_insert_with(|| Entry::Gauge(Arc::new(Gauge::new())))
        {
            Entry::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// The histogram registered under `name`, creating it with `bounds`
    /// on first use (later callers share the original buckets).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        match entries
            .entry(name.to_owned())
            .or_insert_with(|| Entry::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Entry::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// A point-in-time snapshot of every metric, in canonical (name
    /// sorted) order. Independent of worker scheduling: counters and
    /// histograms merge by commutative sums over shards.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        Snapshot {
            entries: entries
                .iter()
                .map(|(name, entry)| match entry {
                    Entry::Counter(c) => SnapshotEntry {
                        name: name.clone(),
                        kind: "counter",
                        value: c.get(),
                        histogram: None,
                    },
                    Entry::Gauge(g) => SnapshotEntry {
                        name: name.clone(),
                        kind: "gauge",
                        value: g.get(),
                        histogram: None,
                    },
                    Entry::Histogram(h) => SnapshotEntry {
                        name: name.clone(),
                        kind: "histogram",
                        value: h.count(),
                        histogram: Some(HistogramSnapshot {
                            bounds: h.bounds.clone(),
                            counts: h.bucket_counts(),
                            sum: h.sum(),
                            count: h.count(),
                        }),
                    },
                })
                .collect(),
        }
    }
}

/// The process-wide registry used by the instrumentation macros.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A frozen, canonically ordered view of a [`Registry`].
#[derive(Debug, Clone, Serialize, PartialEq, Eq)]
pub struct Snapshot {
    /// All metrics, sorted by name.
    pub entries: Vec<SnapshotEntry>,
}

/// One metric in a [`Snapshot`].
#[derive(Debug, Clone, Serialize, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// Dotted metric name, e.g. `engine.events`.
    pub name: String,
    /// `counter`, `gauge`, or `histogram`.
    pub kind: &'static str,
    /// Counter total, gauge value, or histogram observation count.
    pub value: u64,
    /// Bucket detail, histograms only (`null` for counters and gauges).
    pub histogram: Option<HistogramSnapshot>,
}

/// Merged histogram state in a [`Snapshot`].
#[derive(Debug, Clone, Serialize, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one extra overflow bucket at the end.
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn counter_merges_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("t.counter");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.add(3);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8 * 1000 * 3);
    }

    #[test]
    fn histogram_buckets_values() {
        let reg = Registry::new();
        let h = reg.histogram("t.hist", &[10, 100]);
        for v in [0, 10, 11, 100, 101, 5_000] {
            h.observe(v);
        }
        // ≤10: {0, 10}; ≤100: {11, 100}; overflow: {101, 5000}.
        assert_eq!(h.bucket_counts(), vec![2, 2, 2]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 10 + 11 + 100 + 101 + 5_000);
    }

    #[test]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("t.mismatch");
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reg.gauge("t.mismatch")
        }))
        .is_err());
    }

    /// The satellite-task property: the merged histogram (and the whole
    /// snapshot) is independent of how observations were scheduled onto
    /// worker threads. The same multiset of observations is recorded
    /// serially, split across 2 threads, and split across 8 threads with
    /// a barrier forcing maximal interleaving — all three snapshots must
    /// serialize identically.
    #[test]
    fn merged_histogram_independent_of_worker_scheduling() {
        let observations: Vec<u64> = (0..4096).map(|i| (i * 2654435761u64) % 1_000_000).collect();
        let record = |splits: usize| {
            let reg = Registry::new();
            let h = reg.histogram("sched.hist", BOUNDS_POW4);
            let c = reg.counter("sched.counter");
            let chunk = observations.len().div_ceil(splits);
            let barrier = Barrier::new(splits);
            std::thread::scope(|s| {
                for part in observations.chunks(chunk) {
                    let h = Arc::clone(&h);
                    let c = Arc::clone(&c);
                    let barrier = &barrier;
                    s.spawn(move || {
                        barrier.wait();
                        for &v in part {
                            h.observe(v);
                            c.add(v);
                        }
                    });
                }
            });
            serde_json::to_string(&reg.snapshot()).expect("snapshot serializes")
        };
        let serial = record(1);
        assert_eq!(serial, record(2), "2-way split changed the snapshot");
        assert_eq!(serial, record(8), "8-way split changed the snapshot");
    }
}
