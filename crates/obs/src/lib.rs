//! # sonet-obs
//!
//! The flight recorder: a deterministic-safe observability layer for every
//! run tier of the reproduction — engine, workload, telemetry, supervisor.
//!
//! The paper's contribution is measurement infrastructure pointed at a
//! production network; this crate turns the same ethos on the simulator
//! itself. It provides
//!
//! * a lock-free [`metrics`] registry (monotonic counters, gauges,
//!   fixed-bucket histograms) sharded per worker thread and merged in
//!   canonical name order,
//! * hierarchical span [`trace`]-ing of pipeline phases exported as Chrome
//!   `trace_event` JSON (viewable in Perfetto),
//! * a [`runinfo`] module that writes an atomic `RUNINFO.json` manifest
//!   next to checkpoints, and
//! * a [`report`]-er that serializes human-facing stderr lines and the
//!   throttled heartbeat.
//!
//! ## The determinism firewall
//!
//! The hard design constraint: **no observability state may influence a
//! deterministic artifact.** All wall-clock reads and all metric state
//! live strictly on this side channel; instrumented code only *writes*
//! into it and never branches on anything read back out. Every tap
//! stream, checkpoint, and rendered report must stay byte-identical with
//! observability off, on, or at any worker width — `tests/equivalence.rs`
//! in the workspace root enforces exactly that.
//!
//! Two gates keep the hot paths honest:
//!
//! 1. **Compile time** — with the `enabled` feature off, [`ENABLED`] is
//!    `false` and every macro body is dead code the optimizer deletes.
//! 2. **Run time** — [`ObsMode::Off`] (the default) short-circuits each
//!    macro to a single relaxed atomic load.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod report;
pub mod runinfo;
pub mod trace;

use std::sync::atomic::{AtomicU8, Ordering};

/// Compile-time master switch, mirroring the `enabled` cargo feature.
///
/// Exposed as a `const` (rather than `#[cfg]` inside macro bodies) so the
/// feature is evaluated against *this* crate's feature set, not the
/// expanding crate's — macro bodies read `$crate::ENABLED` and the whole
/// instrumentation arm becomes provably dead code when the feature is off.
#[cfg(feature = "enabled")]
pub const ENABLED: bool = true;
/// Compile-time master switch (disabled build).
#[cfg(not(feature = "enabled"))]
pub const ENABLED: bool = false;

/// Runtime observability level, selected with `--obs[=off|summary|deep]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum ObsMode {
    /// No metric or span collection; instrumentation is a single relaxed
    /// atomic load per site. The default.
    Off = 0,
    /// Counters, gauges, histograms, phase-level spans, heartbeat, and a
    /// `RUNINFO.json` manifest. Cheap enough to leave on for real runs
    /// (bench gate: ≤ 2% events/sec overhead).
    Summary = 1,
    /// Everything in `Summary` plus per-window engine spans — the full
    /// Perfetto timeline. Costs trace-buffer memory, not determinism.
    Deep = 2,
}

impl ObsMode {
    /// Parses a `--obs` value. `--obs` with no value means `summary`.
    pub fn parse(s: &str) -> Option<ObsMode> {
        match s {
            "off" => Some(ObsMode::Off),
            "summary" | "on" => Some(ObsMode::Summary),
            "deep" => Some(ObsMode::Deep),
            _ => None,
        }
    }

    /// The canonical lowercase name (`off` / `summary` / `deep`).
    pub fn name(self) -> &'static str {
        match self {
            ObsMode::Off => "off",
            ObsMode::Summary => "summary",
            ObsMode::Deep => "deep",
        }
    }
}

/// The process-wide observability mode. Plain `u8` of [`ObsMode`].
static MODE: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide observability mode.
pub fn set_mode(mode: ObsMode) {
    MODE.store(mode as u8, Ordering::Relaxed);
}

/// The current observability mode.
pub fn mode() -> ObsMode {
    match MODE.load(Ordering::Relaxed) {
        1 => ObsMode::Summary,
        2 => ObsMode::Deep,
        _ => ObsMode::Off,
    }
}

/// True when instrumentation should record at all (compiled in and mode
/// is not `Off`). The single branch every macro site pays.
#[inline]
pub fn on() -> bool {
    ENABLED && MODE.load(Ordering::Relaxed) != 0
}

/// True when the expensive tier (per-window spans) should record.
#[inline]
pub fn deep() -> bool {
    ENABLED && MODE.load(Ordering::Relaxed) >= 2
}

/// Adds `delta` to a named monotonic counter in the global registry.
///
/// The handle is resolved once per call site and cached in a `static`,
/// so the steady-state cost is one atomic load (the mode check) plus one
/// relaxed `fetch_add` on a per-thread shard.
#[macro_export]
macro_rules! counter_add {
    ($name:expr, $delta:expr) => {{
        if $crate::ENABLED {
            if $crate::on() {
                static __SONET_OBS_C: ::std::sync::OnceLock<
                    ::std::sync::Arc<$crate::metrics::Counter>,
                > = ::std::sync::OnceLock::new();
                __SONET_OBS_C
                    .get_or_init(|| $crate::metrics::global().counter($name))
                    .add($delta as u64);
            }
        }
    }};
}

/// Sets a named gauge in the global registry to `value`.
#[macro_export]
macro_rules! gauge_set {
    ($name:expr, $value:expr) => {{
        if $crate::ENABLED {
            if $crate::on() {
                static __SONET_OBS_G: ::std::sync::OnceLock<
                    ::std::sync::Arc<$crate::metrics::Gauge>,
                > = ::std::sync::OnceLock::new();
                __SONET_OBS_G
                    .get_or_init(|| $crate::metrics::global().gauge($name))
                    .set($value as u64);
            }
        }
    }};
}

/// Records `value` into a named fixed-bucket histogram in the global
/// registry. `$bounds` (ascending `&[u64]` upper bounds) is used on first
/// registration only; later sites with the same name share the buckets.
#[macro_export]
macro_rules! hist_observe {
    ($name:expr, $value:expr, $bounds:expr) => {{
        if $crate::ENABLED {
            if $crate::on() {
                static __SONET_OBS_H: ::std::sync::OnceLock<
                    ::std::sync::Arc<$crate::metrics::Histogram>,
                > = ::std::sync::OnceLock::new();
                __SONET_OBS_H
                    .get_or_init(|| $crate::metrics::global().histogram($name, $bounds))
                    .observe($value as u64);
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_roundtrip() {
        assert_eq!(ObsMode::parse("off"), Some(ObsMode::Off));
        assert_eq!(ObsMode::parse("summary"), Some(ObsMode::Summary));
        assert_eq!(ObsMode::parse("deep"), Some(ObsMode::Deep));
        assert_eq!(ObsMode::parse("bogus"), None);
        for m in [ObsMode::Off, ObsMode::Summary, ObsMode::Deep] {
            assert_eq!(ObsMode::parse(m.name()), Some(m));
        }
    }

    #[test]
    fn macros_are_inert_when_off() {
        set_mode(ObsMode::Off);
        // These must not register anything while the mode is Off.
        counter_add!("test.inert.counter", 1);
        gauge_set!("test.inert.gauge", 1);
        hist_observe!("test.inert.hist", 1, metrics::BOUNDS_POW4);
        let snap = metrics::global().snapshot();
        assert!(
            snap.entries
                .iter()
                .all(|e| !e.name.starts_with("test.inert")),
            "off-mode macro sites must not touch the registry"
        );
    }
}
