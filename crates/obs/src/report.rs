//! The stderr reporter: serialized progress lines and the throttled
//! heartbeat.
//!
//! Everything human-facing the simulator prints while running goes
//! through here, so concurrent scenarios under `--threads` emit whole
//! lines instead of interleaved fragments. The reporter writes only to
//! stderr — stdout carries rendered reports and stays a deterministic
//! artifact.

use std::io::Write;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

fn stderr_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Prints one progress line to stderr, atomically with respect to every
/// other reporter caller. Always active — this replaces ad-hoc
/// `eprintln!`, it is not gated on the obs mode.
pub fn line(msg: &str) {
    let _guard = stderr_lock().lock().expect("reporter lock poisoned");
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{msg}");
}

/// Prints one warning line to stderr (prefixed `warning:`), atomically.
pub fn warn(msg: &str) {
    line(&format!("warning: {msg}"));
}

/// Current resident set size in bytes, from `/proc/self/status` `VmRSS`.
/// Best-effort: `None` off Linux or if the field is missing.
pub fn rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for l in status.lines() {
        if let Some(rest) = l.strip_prefix("VmRSS:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// A throttled single-line stderr heartbeat:
/// `[hb label] t=12.5s events=1034122 ev/s=82.7k mem=213MiB`.
///
/// Ticks are free until the interval elapses; at `ObsMode::Off` they are
/// a single atomic load. Wall-clock reads stay inside this struct — the
/// caller passes only its deterministic progress counter.
pub struct Heartbeat {
    label: &'static str,
    started: Instant,
    last: Instant,
    last_events: u64,
    interval: Duration,
}

impl Heartbeat {
    /// A heartbeat named `label`, printing at most every 2 seconds.
    pub fn new(label: &'static str) -> Heartbeat {
        let now = Instant::now();
        Heartbeat {
            label,
            started: now,
            last: now,
            last_events: 0,
            interval: Duration::from_secs(2),
        }
    }

    /// Records progress (`events` is cumulative) and prints a line if the
    /// throttle interval has elapsed. No-op when obs is off.
    pub fn tick(&mut self, events: u64) {
        if !crate::on() {
            return;
        }
        let now = Instant::now();
        let since = now.duration_since(self.last);
        if since < self.interval {
            return;
        }
        let rate = (events.saturating_sub(self.last_events)) as f64 / since.as_secs_f64();
        let mem = match rss_bytes() {
            Some(b) => format!("{}MiB", b / (1024 * 1024)),
            None => "?".to_owned(),
        };
        line(&format!(
            "[hb {}] t={:.1}s events={} ev/s={} mem={}",
            self.label,
            now.duration_since(self.started).as_secs_f64(),
            events,
            human_rate(rate),
            mem,
        ));
        self.last = now;
        self.last_events = events;
    }
}

fn human_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.1}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_rates() {
        assert_eq!(human_rate(12.0), "12");
        assert_eq!(human_rate(82_700.0), "82.7k");
        assert_eq!(human_rate(2_500_000.0), "2.5M");
    }

    #[test]
    fn rss_is_plausible_on_linux() {
        if let Some(b) = rss_bytes() {
            assert!(b > 1024 * 1024, "a test process uses more than 1 MiB");
        }
    }
}
