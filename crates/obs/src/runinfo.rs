//! The `RUNINFO.json` run manifest: everything needed to identify,
//! reproduce, and profile a run, written atomically next to checkpoints.
//!
//! The manifest is an observability artifact, not a deterministic one —
//! it records wall/CPU time and metric finals, so its bytes vary run to
//! run. Its *schema* is pinned by `schemas/runinfo.schema.json` in the
//! workspace root and validated by `tests/observability.rs` and the CI
//! obs smoke job.

use crate::metrics::Snapshot;
use serde::Serialize;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// Schema version of the manifest. Bump on breaking shape changes and
/// update `schemas/runinfo.schema.json` in the same commit.
pub const SCHEMA: u32 = 1;

/// The run manifest. Build with [`RunInfo::start`], fill in progress,
/// and persist with [`RunInfo::write_atomic`].
#[derive(Debug, Clone, Serialize)]
pub struct RunInfo {
    /// Manifest schema version ([`SCHEMA`]).
    pub schema: u32,
    /// The driving command (e.g. `capture`, `fleet`, `all`).
    pub command: String,
    /// Scenario seed.
    pub seed: u64,
    /// FNV-1a 64 hash (hex) of the canonical config JSON.
    pub config_hash: String,
    /// Worker threads the run was started with (0 = auto).
    pub threads: usize,
    /// Observability mode name (`off`/`summary`/`deep`).
    pub obs_mode: String,
    /// Git revision of the working tree, best-effort.
    pub git_rev: Option<String>,
    /// FNV-1a 64 hash (hex, `f`-prefixed) of the active fault plan's
    /// canonical JSON, when the run injected faults.
    pub fault_plan_hash: Option<String>,
    /// Chaos-campaign identity (`c`-prefixed config hash) when the run
    /// was part of a campaign.
    pub campaign_id: Option<String>,
    /// `completed`, `stopped: <reason>`, or `failed: <reason>`.
    pub status: String,
    /// Wall-clock seconds from [`RunInfo::start`] to the final write.
    pub wall_secs: f64,
    /// Process CPU seconds (utime+stime, self), best-effort.
    pub cpu_secs: Option<f64>,
    /// Peak resident set size in bytes (`VmHWM`), best-effort.
    pub peak_rss_bytes: Option<u64>,
    /// Wall seconds per pipeline phase, from the span tracer.
    pub phases: BTreeMap<String, f64>,
    /// Free-form annotations: audit violations, degradation summary,
    /// stop reasons.
    pub notes: Vec<String>,
    /// Final metric values, canonically ordered.
    pub metrics: Snapshot,
    /// Microseconds since the process trace epoch when the manifest was
    /// started (internal bookkeeping for `wall_secs`).
    pub started_us: u64,
}

impl RunInfo {
    /// Begins a manifest for `command`. `config_json` is the canonical
    /// serialized config, hashed (never stored) so artifacts from
    /// different configs cannot be confused.
    pub fn start(command: &str, seed: u64, config_json: &str, threads: usize) -> RunInfo {
        RunInfo {
            schema: SCHEMA,
            command: command.to_owned(),
            seed,
            config_hash: format!("{:016x}", fnv1a64(config_json.as_bytes())),
            threads,
            obs_mode: crate::mode().name().to_owned(),
            git_rev: git_rev(),
            fault_plan_hash: None,
            campaign_id: None,
            status: "running".to_owned(),
            wall_secs: 0.0,
            cpu_secs: None,
            peak_rss_bytes: None,
            phases: BTreeMap::new(),
            notes: Vec::new(),
            metrics: Snapshot {
                entries: Vec::new(),
            },
            started_us: crate::trace::now_us(),
        }
    }

    /// Adds a free-form note (audit violation, degradation line, …).
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Freezes the manifest: stamps status, wall/CPU time, peak RSS,
    /// phase totals, and the current global metric snapshot.
    pub fn finish(&mut self, status: impl Into<String>) {
        self.status = status.into();
        self.wall_secs = crate::trace::now_us().saturating_sub(self.started_us) as f64 / 1e6;
        self.cpu_secs = cpu_secs();
        self.peak_rss_bytes = peak_rss_bytes();
        self.phases = crate::trace::phase_totals();
        self.metrics = crate::metrics::global().snapshot();
    }

    /// Writes the manifest atomically (tmp + fsync + rename + dir sync),
    /// mirroring the checkpoint write discipline so a crash never leaves
    /// a torn `RUNINFO.json`.
    pub fn write_atomic(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self).expect("runinfo serializes");
        let tmp = path.with_extension("json.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(json.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }
}

/// FNV-1a 64-bit hash.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The current git revision, read straight from `.git` (no subprocess):
/// walks up from the current directory to find `.git/HEAD`, then chases
/// one level of `ref:` indirection. Best-effort.
fn git_rev() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let head = dir.join(".git").join("HEAD");
        if let Ok(contents) = std::fs::read_to_string(&head) {
            let contents = contents.trim();
            if let Some(r) = contents.strip_prefix("ref: ") {
                let rev = std::fs::read_to_string(dir.join(".git").join(r.trim())).ok()?;
                return Some(rev.trim().to_owned());
            }
            return Some(contents.to_owned());
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Process CPU seconds (utime+stime) from `/proc/self/stat`, assuming
/// the near-universal `CLK_TCK = 100`. Best-effort.
fn cpu_secs() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Fields 14 and 15 (1-based) are utime/stime, counted after the
    // parenthesized comm field (which may itself contain spaces).
    let after_comm = &stat[stat.rfind(')')? + 2..];
    let fields: Vec<&str> = after_comm.split_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some((utime + stime) as f64 / 100.0)
}

/// Peak resident set size in bytes, from `/proc/self/status` `VmHWM`.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for l in status.lines() {
        if let Some(rest) = l.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_known_vector() {
        // FNV-1a 64 of the empty string and of "a" are published vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn manifest_writes_and_parses() {
        let mut info = RunInfo::start("unit", 42, "{\"cfg\":1}", 4);
        info.note("unit test note");
        info.finish("completed");
        assert!(info.wall_secs >= 0.0);
        let path =
            std::env::temp_dir().join(format!("sonet-obs-runinfo-{}.json", std::process::id()));
        info.write_atomic(&path).expect("write");
        let body = std::fs::read_to_string(&path).expect("read back");
        std::fs::remove_file(&path).ok();
        let v: serde_json::Value = serde_json::from_str(&body).expect("valid JSON");
        assert_eq!(v.get("command").expect("command").0.as_str(), Some("unit"));
        assert_eq!(
            v.get("status").expect("status").0.as_str(),
            Some("completed")
        );
        assert!(
            v.get("config_hash")
                .expect("hash")
                .0
                .as_str()
                .unwrap()
                .len()
                == 16
        );
        assert!(v.get("metrics").is_some());
    }
}
