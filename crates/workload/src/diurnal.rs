//! Diurnal load modulation.
//!
//! §4.1: "Demand follows typical diurnal and day-of-the-week patterns,
//! although the magnitude of change is on the order of 2× as opposed to
//! the order-of-magnitude variation reported elsewhere."

use serde::{Deserialize, Serialize};
use sonet_util::{SimDuration, SimTime};

/// A sinusoidal day/night rate multiplier.
///
/// The multiplier oscillates between `1 - amplitude` and `1 + amplitude`
/// around 1.0 over one `period`. With the default amplitude of `1/3`, the
/// peak-to-trough ratio is `(1+1/3)/(1-1/3) = 2×`, matching §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalPattern {
    /// Swing around the mean; must be in `[0, 1)`.
    pub amplitude: f64,
    /// Length of one cycle (a simulated day).
    pub period: SimDuration,
    /// Fraction of a period by which the peak is shifted.
    pub phase: f64,
}

impl DiurnalPattern {
    /// Flat (no modulation) — appropriate for minutes-long traces where
    /// §4.2 observes "over short enough periods of time, the graph looks
    /// essentially flat".
    pub fn flat() -> DiurnalPattern {
        DiurnalPattern {
            amplitude: 0.0,
            period: SimDuration::from_secs(86_400),
            phase: 0.0,
        }
    }

    /// The paper's 2× day/night swing over a 24-hour period.
    pub fn paper_default() -> DiurnalPattern {
        DiurnalPattern {
            amplitude: 1.0 / 3.0,
            period: SimDuration::from_secs(86_400),
            phase: 0.0,
        }
    }

    /// A compressed day for experiments that cannot simulate 24 hours of
    /// packets (see DESIGN.md §3 "Compressed day").
    pub fn compressed(period: SimDuration) -> DiurnalPattern {
        DiurnalPattern {
            amplitude: 1.0 / 3.0,
            period,
            phase: 0.0,
        }
    }

    /// The rate multiplier at time `t`.
    pub fn multiplier(&self, t: SimTime) -> f64 {
        debug_assert!((0.0..1.0).contains(&self.amplitude));
        if self.amplitude == 0.0 {
            return 1.0;
        }
        let frac = (t.as_nanos() % self.period.as_nanos()) as f64 / self.period.as_nanos() as f64;
        1.0 + self.amplitude * (std::f64::consts::TAU * (frac + self.phase)).sin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_constant_one() {
        let d = DiurnalPattern::flat();
        for s in [0u64, 100, 86_400, 1_000_000] {
            assert_eq!(d.multiplier(SimTime::from_secs(s)), 1.0);
        }
    }

    #[test]
    fn paper_default_swings_two_x() {
        let d = DiurnalPattern::paper_default();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for s in (0..86_400).step_by(600) {
            let m = d.multiplier(SimTime::from_secs(s));
            lo = lo.min(m);
            hi = hi.max(m);
        }
        assert!((hi / lo - 2.0).abs() < 0.05, "swing {}", hi / lo);
    }

    #[test]
    fn pattern_is_periodic() {
        let d = DiurnalPattern::paper_default();
        let a = d.multiplier(SimTime::from_secs(3_600));
        let b = d.multiplier(SimTime::from_secs(3_600 + 86_400));
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn compressed_period_respected() {
        let d = DiurnalPattern::compressed(SimDuration::from_secs(60));
        let a = d.multiplier(SimTime::from_secs(15));
        let b = d.multiplier(SimTime::from_secs(45));
        // Quarter vs three-quarter period: peak vs trough.
        assert!(a > 1.2 && b < 0.8, "a={a} b={b}");
    }
}
