//! Fleet tier: a flow-level model of the whole plant.
//!
//! The paper's 24-hour, fleet-wide results (Tables 2–3, Fig 5) come from
//! Fbflow samples over hundreds of thousands of hosts — far beyond what a
//! packet simulator can cover. [`FleetModel`] generates the Fbflow sample
//! stream directly at flow granularity: each host emits records whose
//! destination role and locality follow its role's demand table, with
//! per-cluster-type volumes weighted by Table 3's traffic shares and a
//! diurnal volume envelope.
//!
//! **Scope note**: the fleet tier's role/locality tables are *inputs*
//! derived from the paper, so Tables 2–3 regenerated from this tier
//! validate the collection/analysis pipeline (sampling, tagging,
//! aggregation) rather than re-deriving the numbers from first principles.
//! The *structure* of Fig 5 (block-bipartite Frontend, diagonal-heavy
//! Hadoop, 7-decade cluster-pair spread) does emerge from placement rather
//! than being encoded directly. The packet tier, by contrast, produces its
//! results mechanistically. See DESIGN.md §3.

use crate::diurnal::DiurnalPattern;
use serde::{Deserialize, Serialize};
use sonet_telemetry::FlowRecord;
use sonet_topology::{HostId, HostRole, Locality, Topology};
use sonet_util::{Rng, SimDuration, SimTime};
use std::collections::HashMap;
use std::sync::Arc;

/// Fleet-tier generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Span covered by the generated samples (paper: 24 hours).
    pub duration: SimDuration,
    /// Flow records emitted per host over the span.
    pub samples_per_host: u32,
    /// Total represented fleet volume in bytes over the span.
    pub total_bytes: f64,
    /// Diurnal volume envelope.
    pub diurnal: DiurnalPattern,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            duration: SimDuration::from_secs(86_400),
            samples_per_host: 400,
            total_bytes: 1e13, // 10 TB/day representative span
            diurnal: DiurnalPattern::paper_default(),
        }
    }
}

/// One entry of a role's demand table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandEntry {
    /// Destination role.
    pub dst_role: HostRole,
    /// Desired locality of the destination.
    pub locality: Locality,
    /// Relative byte weight.
    pub weight: f64,
}

/// Demand tables per source role, encoding Tables 2–3 jointly.
///
/// The per-role rows are chosen so that (a) each role's destination-role
/// marginal matches its Table 2 row and (b) each cluster type's locality
/// marginal matches its Table 3 column. The Cache column of Table 3 as
/// printed sums to 70 %; we follow the text ("spreading the plurality of
/// its traffic across the datacenter") and read the intra-DC entry as
/// 70.7 % so the column totals 100 % (noted in EXPERIMENTS.md).
pub fn demand_tables() -> HashMap<HostRole, Vec<DemandEntry>> {
    use HostRole::*;
    use Locality::*;
    let mut t = HashMap::new();
    let e = |dst_role, locality, weight| DemandEntry {
        dst_role,
        locality,
        weight,
    };

    // Web (FE locality 2.7 / 81.3 / 7.3 / 8.6; Table 2: Cache 63.1,
    // MF 15.2, SLB 5.6, Rest 16.1).
    t.insert(
        Web,
        vec![
            e(Web, IntraRack, 2.7),
            e(CacheFollower, IntraCluster, 63.1),
            e(Multifeed, IntraCluster, 12.4),
            e(Multifeed, IntraDatacenter, 2.8),
            e(Slb, IntraCluster, 5.6),
            e(Misc, IntraDatacenter, 4.5),
            e(Misc, InterDatacenter, 8.6),
        ],
    );
    // Cache follower (Table 2: Web 88.7, Cache 5.8, Rest 5.5).
    t.insert(
        CacheFollower,
        vec![
            e(Web, IntraCluster, 88.7),
            e(CacheLeader, IntraDatacenter, 3.5),
            e(CacheLeader, InterDatacenter, 2.3),
            e(Misc, IntraDatacenter, 2.0),
            e(Misc, InterDatacenter, 3.5),
        ],
    );
    // Cache leader (Table 2: Cache 86.6, MF 5.9, Rest 7.5; locality
    // 0.2 / 13.0 / 70.7 / 16.1).
    t.insert(
        CacheLeader,
        vec![
            e(CacheLeader, IntraRack, 0.2),
            e(CacheLeader, IntraCluster, 13.0),
            e(CacheFollower, IntraDatacenter, 62.4),
            e(CacheFollower, InterDatacenter, 11.0),
            e(Multifeed, IntraDatacenter, 4.0),
            e(Multifeed, InterDatacenter, 1.9),
            e(Db, IntraDatacenter, 4.3),
            e(Db, InterDatacenter, 3.2),
        ],
    );
    // Hadoop (Table 2: Hadoop 99.8, Rest 0.2; locality 13.3 / 80.9 /
    // 3.3 / 2.5).
    t.insert(
        Hadoop,
        vec![
            e(Hadoop, IntraRack, 13.3),
            e(Hadoop, IntraCluster, 80.9),
            e(Hadoop, IntraDatacenter, 3.1),
            e(Hadoop, InterDatacenter, 2.5),
            e(Misc, IntraDatacenter, 0.2),
        ],
    );
    // Database (locality 0 / 30.7 / 34.5 / 34.8; "the most uniform").
    t.insert(
        Db,
        vec![
            e(Db, IntraCluster, 30.7),
            e(Db, IntraDatacenter, 15.0),
            e(Misc, IntraDatacenter, 19.5),
            e(Db, InterDatacenter, 20.0),
            e(Misc, InterDatacenter, 14.8),
        ],
    );
    // Service / misc (locality 12.1 / 56.3 / 15.7 / 15.9).
    t.insert(
        Misc,
        vec![
            e(Misc, IntraRack, 12.1),
            e(Misc, IntraCluster, 50.0),
            e(Multifeed, IntraCluster, 6.3),
            e(Misc, IntraDatacenter, 15.7),
            e(Misc, InterDatacenter, 15.9),
        ],
    );
    // Multifeed (no dedicated paper row; aggregator reads dominated by
    // leaf/storage fan-out).
    t.insert(
        Multifeed,
        vec![
            e(Misc, IntraDatacenter, 40.0),
            e(Misc, IntraCluster, 25.0),
            e(Multifeed, IntraCluster, 15.0),
            e(Misc, InterDatacenter, 10.0),
            e(Web, IntraCluster, 10.0),
        ],
    );
    // SLB: page requests into the web tier.
    t.insert(
        Slb,
        vec![e(Web, IntraCluster, 90.0), e(Misc, IntraDatacenter, 10.0)],
    );
    t
}

/// Per-cluster-type share of total fleet traffic (Table 3, bottom row;
/// the 21.4 % generated by unmodeled cluster types is renormalized away).
pub fn cluster_type_shares() -> [(sonet_topology::ClusterType, f64); 5] {
    use sonet_topology::ClusterType::*;
    [
        (Hadoop, 23.7),
        (Frontend, 21.5),
        (Service, 18.0),
        (Cache, 10.2),
        (Database, 5.2),
    ]
}

/// The fleet-tier generator.
pub struct FleetModel {
    topo: Arc<Topology>,
    cfg: FleetConfig,
    rng: Rng,
    demand: HashMap<HostRole, Vec<DemandEntry>>,
    /// Bytes per sample for each host (role/cluster-type weighted).
    host_sample_bytes: Vec<f64>,
    /// Fallback counter: records whose desired locality had no candidate.
    relaxed: u64,
    /// Next host to emit samples for (generation is resumable host by
    /// host; see [`FleetModel::generate_chunk`]).
    next_host: u32,
}

/// Serialized dynamic state of a [`FleetModel`].
///
/// The demand tables and per-host byte budgets are pure functions of
/// `(topology, config)` and are rebuilt by [`FleetModel::new`]; the state
/// carries only the generation cursor, the RNG stream, and the
/// relaxed-pick counter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetModelState {
    next_host: u32,
    rng: Rng,
    relaxed: u64,
}

impl FleetModel {
    /// Builds the model over `topo`.
    pub fn new(topo: Arc<Topology>, cfg: FleetConfig, seed: u64) -> FleetModel {
        let shares: HashMap<sonet_topology::ClusterType, f64> =
            cluster_type_shares().into_iter().collect();
        // Hosts per cluster type.
        let mut type_hosts: HashMap<sonet_topology::ClusterType, u64> = HashMap::new();
        for h in topo.hosts() {
            *type_hosts.entry(topo.cluster(h.cluster).ctype).or_insert(0) += 1;
        }
        let total_share: f64 = shares
            .iter()
            .filter(|(t, _)| type_hosts.contains_key(t))
            .map(|(_, s)| *s)
            .sum();
        let mut host_sample_bytes = Vec::with_capacity(topo.hosts().len());
        for h in topo.hosts() {
            let ctype = topo.cluster(h.cluster).ctype;
            let share = shares.get(&ctype).copied().unwrap_or(0.0) / total_share.max(1e-9);
            let hosts = *type_hosts.get(&ctype).unwrap_or(&1) as f64;
            let host_total = cfg.total_bytes * share / hosts;
            host_sample_bytes.push(host_total / cfg.samples_per_host.max(1) as f64);
        }
        FleetModel {
            topo,
            cfg,
            rng: Rng::new(seed).fork("fleet"),
            demand: demand_tables(),
            host_sample_bytes,
            relaxed: 0,
            next_host: 0,
        }
    }

    /// Records whose desired locality was infeasible and got relaxed.
    pub fn relaxed_picks(&self) -> u64 {
        self.relaxed
    }

    /// Hosts whose samples have been emitted so far.
    pub fn hosts_done(&self) -> u32 {
        self.next_host
    }

    /// True once every host's samples have been emitted.
    pub fn exhausted(&self) -> bool {
        self.next_host as usize >= self.topo.hosts().len()
    }

    /// Captures the generator's dynamic state for checkpointing.
    pub fn state(&self) -> FleetModelState {
        FleetModelState {
            next_host: self.next_host,
            rng: self.rng.clone(),
            relaxed: self.relaxed,
        }
    }

    /// Restores dynamic state captured by [`FleetModel::state`] into a
    /// model built with identical `(topology, config, seed)`. Fails when
    /// the cursor lies outside this topology — the telltale of a state
    /// replayed against the wrong plant.
    pub fn restore_state(&mut self, state: FleetModelState) -> Result<(), String> {
        if state.next_host as usize > self.topo.hosts().len() {
            return Err(format!(
                "fleet state cursor {} exceeds the {} hosts of this topology",
                state.next_host,
                self.topo.hosts().len()
            ));
        }
        self.next_host = state.next_host;
        self.rng = state.rng;
        self.relaxed = state.relaxed;
        Ok(())
    }

    /// Generates the full sample stream (capture agent = the sender, so
    /// bytes are counted once).
    pub fn generate(&mut self) -> Vec<FlowRecord> {
        let n_hosts = self.topo.hosts().len();
        let mut out = Vec::with_capacity(
            n_hosts.saturating_sub(self.next_host as usize) * self.cfg.samples_per_host as usize,
        );
        while !self.exhausted() {
            out.extend(self.generate_chunk(u32::MAX));
        }
        out.sort_by_key(|r| r.at);
        out
    }

    /// Emits the samples of up to `max_hosts` further hosts, advancing the
    /// cursor. Returns records in emission (host) order, **not** time
    /// order: a supervised run concatenates chunks across checkpoints and
    /// applies the same stable time sort `generate` uses at the end, which
    /// makes a resumed run's stream identical to an uninterrupted one.
    pub fn generate_chunk(&mut self, max_hosts: u32) -> Vec<FlowRecord> {
        let n_hosts = self.topo.hosts().len();
        let stop = (self.next_host as usize).saturating_add(max_hosts as usize);
        let stop = stop.min(n_hosts);
        let mut out = Vec::with_capacity(
            (stop - self.next_host as usize) * self.cfg.samples_per_host as usize,
        );
        while (self.next_host as usize) < stop {
            let src = HostId(self.next_host);
            for _ in 0..self.cfg.samples_per_host {
                if let Some(rec) = self.one_sample(src) {
                    out.push(rec);
                }
            }
            self.next_host += 1;
        }
        out
    }

    fn one_sample(&mut self, src: HostId) -> Option<FlowRecord> {
        let role = self.topo.host(src).role;
        let table = self.demand.get(&role)?.clone();
        let weights: Vec<f64> = table.iter().map(|d| d.weight).collect();
        let pick = self.rng.pick_weighted(&weights);
        let entry = table[pick];
        let dst = self.pick_host(src, entry.dst_role, entry.locality)?;
        let at = self.diurnal_time();
        // Heavy-tailed per-sample volume around the host's budget: flow
        // volumes in real Fbflow data span many decades, which is what
        // stretches Fig 5's cluster-pair spread past 7 orders of magnitude.
        let jitter = {
            let z = self.rng.standard_normal();
            (1.5 * z).exp()
        };
        let bytes = (self.host_sample_bytes[src.index()] * jitter).max(1.0) as u64;
        Some(FlowRecord {
            at,
            capture_host: src,
            src,
            dst,
            src_port: 32768 + (self.rng.below(16_384) as u16),
            dst_port: crate::workload::port_for(entry.dst_role),
            bytes,
            packets: (bytes / 700).max(1), // representative mean packet size
        })
    }

    /// A timestamp in `[0, duration)` with density following the diurnal
    /// envelope (rejection sampling).
    fn diurnal_time(&mut self) -> SimTime {
        let span = self.cfg.duration.as_nanos();
        loop {
            let t = SimTime::from_nanos(self.rng.below(span.max(1)));
            let m = self.cfg.diurnal.multiplier(t);
            // Multiplier is within [1-a, 1+a]; accept proportionally.
            if self.rng.f64() * (1.0 + 1.0) < m {
                return t;
            }
        }
    }

    /// Picks a host of `role` at `locality` relative to `src`, relaxing
    /// toward broader localities when the plant has no candidate.
    fn pick_host(&mut self, src: HostId, role: HostRole, locality: Locality) -> Option<HostId> {
        let order: [Locality; 4] = match locality {
            Locality::IntraRack => [
                Locality::IntraRack,
                Locality::IntraCluster,
                Locality::IntraDatacenter,
                Locality::InterDatacenter,
            ],
            Locality::IntraCluster => [
                Locality::IntraCluster,
                Locality::IntraDatacenter,
                Locality::InterDatacenter,
                Locality::IntraRack,
            ],
            Locality::IntraDatacenter => [
                Locality::IntraDatacenter,
                Locality::InterDatacenter,
                Locality::IntraCluster,
                Locality::IntraRack,
            ],
            Locality::InterDatacenter => [
                Locality::InterDatacenter,
                Locality::IntraDatacenter,
                Locality::IntraCluster,
                Locality::IntraRack,
            ],
        };
        for (i, &loc) in order.iter().enumerate() {
            if let Some(h) = self.try_pick(src, role, loc) {
                if i > 0 {
                    self.relaxed += 1;
                }
                return Some(h);
            }
        }
        None
    }

    fn try_pick(&mut self, src: HostId, role: HostRole, locality: Locality) -> Option<HostId> {
        let info = *self.topo.host(src);
        let topo = Arc::clone(&self.topo);
        match locality {
            Locality::IntraRack => {
                let hosts: Vec<HostId> = topo
                    .rack(info.rack)
                    .hosts
                    .iter()
                    .copied()
                    .filter(|&h| h != src && topo.host(h).role == role)
                    .collect();
                (!hosts.is_empty()).then(|| *self.rng.pick(&hosts))
            }
            Locality::IntraCluster => {
                let hosts: Vec<HostId> = topo
                    .hosts_with_role_in_cluster(info.cluster, role)
                    .iter()
                    .copied()
                    .filter(|&h| h != src && topo.host(h).rack != info.rack)
                    .collect();
                (!hosts.is_empty()).then(|| *self.rng.pick(&hosts))
            }
            Locality::IntraDatacenter => {
                let hosts: Vec<HostId> = topo
                    .hosts_with_role(role)
                    .iter()
                    .copied()
                    .filter(|&h| {
                        let hh = topo.host(h);
                        hh.datacenter == info.datacenter && hh.cluster != info.cluster
                    })
                    .collect();
                (!hosts.is_empty()).then(|| *self.rng.pick(&hosts))
            }
            Locality::InterDatacenter => {
                let hosts: Vec<HostId> = topo
                    .hosts_with_role(role)
                    .iter()
                    .copied()
                    .filter(|&h| topo.host(h).datacenter != info.datacenter)
                    .collect();
                (!hosts.is_empty()).then(|| *self.rng.pick(&hosts))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonet_telemetry::Tagger;
    use sonet_topology::{ClusterSpec, ClusterType, DatacenterSpec, SiteSpec, TopologySpec};

    /// A two-DC fleet with every cluster type represented.
    fn fleet_topo() -> Arc<Topology> {
        let dc = |seed: u32| DatacenterSpec {
            clusters: vec![
                ClusterSpec::frontend(16 + seed, 6),
                ClusterSpec::hadoop(12, 6),
                ClusterSpec::cache(6, 6),
                ClusterSpec::database(4, 6),
                ClusterSpec::service(8, 6),
            ],
        };
        Arc::new(
            Topology::build(TopologySpec {
                sites: vec![
                    SiteSpec {
                        datacenters: vec![dc(0)],
                    },
                    SiteSpec {
                        datacenters: vec![dc(2)],
                    },
                ],
                ..TopologySpec::default()
            })
            .expect("valid"),
        )
    }

    #[test]
    fn demand_tables_cover_all_roles_and_normalize() {
        let t = demand_tables();
        for role in HostRole::ALL {
            let rows = t.get(&role).unwrap_or_else(|| panic!("missing {role}"));
            let sum: f64 = rows.iter().map(|r| r.weight).sum();
            assert!(sum > 0.0, "{role} empty");
            // Most tables target 100 but only relative weight matters.
            assert!((50.0..150.0).contains(&sum), "{role} sums to {sum}");
        }
    }

    #[test]
    fn hadoop_fleet_locality_tracks_table_3() {
        let topo = fleet_topo();
        let mut model = FleetModel::new(
            Arc::clone(&topo),
            FleetConfig {
                samples_per_host: 60,
                ..FleetConfig::default()
            },
            11,
        );
        let samples = model.generate();
        let tagger = Tagger::new(&topo);
        let table = tagger.ingest(samples);
        let hadoop = table.filtered(|r| r.src_cluster_type == ClusterType::Hadoop);
        let total = hadoop.total_bytes() as f64;
        let by_loc = hadoop.bytes_by(|r| r.locality);
        let frac = |l: Locality| *by_loc.get(&l).unwrap_or(&0) as f64 / total * 100.0;
        assert!(
            (frac(Locality::IntraRack) - 13.3).abs() < 4.0,
            "rack {}",
            frac(Locality::IntraRack)
        );
        assert!(
            (frac(Locality::IntraCluster) - 80.9).abs() < 5.0,
            "cluster {}",
            frac(Locality::IntraCluster)
        );
        assert!(frac(Locality::InterDatacenter) < 8.0);
    }

    #[test]
    fn web_outbound_role_mix_tracks_table_2() {
        let topo = fleet_topo();
        let mut model = FleetModel::new(
            Arc::clone(&topo),
            FleetConfig {
                samples_per_host: 80,
                ..FleetConfig::default()
            },
            13,
        );
        let samples = model.generate();
        let tagger = Tagger::new(&topo);
        let table = tagger.ingest(samples);
        let web = table.filtered(|r| r.src_role == HostRole::Web);
        let total = web.total_bytes() as f64;
        let by_role = web.bytes_by(|r| r.dst_role);
        let frac = |r: HostRole| *by_role.get(&r).unwrap_or(&0) as f64 / total * 100.0;
        assert!(
            (frac(HostRole::CacheFollower) - 63.1).abs() < 6.0,
            "cache {}",
            frac(HostRole::CacheFollower)
        );
        assert!(
            (frac(HostRole::Multifeed) - 15.2).abs() < 5.0,
            "mf {}",
            frac(HostRole::Multifeed)
        );
        assert!(
            (frac(HostRole::Slb) - 5.6).abs() < 3.0,
            "slb {}",
            frac(HostRole::Slb)
        );
    }

    #[test]
    fn volume_shares_follow_table_3_bottom_row() {
        let topo = fleet_topo();
        let mut model = FleetModel::new(Arc::clone(&topo), FleetConfig::default(), 17);
        let samples = model.generate();
        let tagger = Tagger::new(&topo);
        let table = tagger.ingest(samples);
        let total = table.total_bytes() as f64;
        let by_type = table.bytes_by(|r| r.src_cluster_type);
        // Hadoop/FE ≈ 23.7/21.5 after renormalization.
        let hadoop = *by_type.get(&ClusterType::Hadoop).unwrap_or(&0) as f64 / total;
        let fe = *by_type.get(&ClusterType::Frontend).unwrap_or(&0) as f64 / total;
        let expected_ratio = 23.7 / 21.5;
        assert!(
            (hadoop / fe - expected_ratio).abs() < 0.2,
            "hadoop/fe ratio {} vs {expected_ratio}",
            hadoop / fe
        );
    }

    #[test]
    fn timestamps_cover_the_day_diurnally() {
        let topo = fleet_topo();
        let mut model = FleetModel::new(
            Arc::clone(&topo),
            FleetConfig {
                samples_per_host: 30,
                ..FleetConfig::default()
            },
            19,
        );
        let samples = model.generate();
        let day = 86_400u64;
        assert!(samples.iter().all(|s| s.at.as_secs() < day));
        // Peak quarter (around t=T/4) should carry more than trough
        // quarter (around t=3T/4).
        let q = |lo: u64, hi: u64| {
            samples
                .iter()
                .filter(|s| (lo..hi).contains(&s.at.as_secs()))
                .count() as f64
        };
        let peak = q(day / 8, 3 * day / 8);
        let trough = q(5 * day / 8, 7 * day / 8);
        assert!(peak > trough * 1.3, "peak {peak} trough {trough}");
    }
}
