//! Fleet tier: a flow-level model of the whole plant.
//!
//! The paper's 24-hour, fleet-wide results (Tables 2–3, Fig 5) come from
//! Fbflow samples over hundreds of thousands of hosts — far beyond what a
//! packet simulator can cover. [`FleetModel`] generates the Fbflow sample
//! stream directly at flow granularity: each host emits records whose
//! destination role and locality follow its role's demand table, with
//! per-cluster-type volumes weighted by Table 3's traffic shares and a
//! diurnal volume envelope.
//!
//! **Scope note**: the fleet tier's role/locality tables are *inputs*
//! derived from the paper, so Tables 2–3 regenerated from this tier
//! validate the collection/analysis pipeline (sampling, tagging,
//! aggregation) rather than re-deriving the numbers from first principles.
//! The *structure* of Fig 5 (block-bipartite Frontend, diagonal-heavy
//! Hadoop, 7-decade cluster-pair spread) does emerge from placement rather
//! than being encoded directly. The packet tier, by contrast, produces its
//! results mechanistically. See DESIGN.md §3.

use crate::diurnal::DiurnalPattern;
use serde::{Deserialize, Serialize};
use sonet_telemetry::FlowRecord;
use sonet_topology::{HostId, HostRole, Locality, Topology};
use sonet_util::{par, Rng, SimDuration, SimTime};
use std::collections::HashMap;
use std::sync::Arc;

/// Fleet-tier generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Span covered by the generated samples (paper: 24 hours).
    pub duration: SimDuration,
    /// Flow records emitted per host over the span.
    pub samples_per_host: u32,
    /// Total represented fleet volume in bytes over the span.
    pub total_bytes: f64,
    /// Diurnal volume envelope.
    pub diurnal: DiurnalPattern,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            duration: SimDuration::from_secs(86_400),
            samples_per_host: 400,
            total_bytes: 1e13, // 10 TB/day representative span
            diurnal: DiurnalPattern::paper_default(),
        }
    }
}

/// One entry of a role's demand table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandEntry {
    /// Destination role.
    pub dst_role: HostRole,
    /// Desired locality of the destination.
    pub locality: Locality,
    /// Relative byte weight.
    pub weight: f64,
}

/// Demand tables per source role, encoding Tables 2–3 jointly.
///
/// The per-role rows are chosen so that (a) each role's destination-role
/// marginal matches its Table 2 row and (b) each cluster type's locality
/// marginal matches its Table 3 column. The Cache column of Table 3 as
/// printed sums to 70 %; we follow the text ("spreading the plurality of
/// its traffic across the datacenter") and read the intra-DC entry as
/// 70.7 % so the column totals 100 % (noted in EXPERIMENTS.md).
pub fn demand_tables() -> HashMap<HostRole, Vec<DemandEntry>> {
    use HostRole::*;
    use Locality::*;
    let mut t = HashMap::new();
    let e = |dst_role, locality, weight| DemandEntry {
        dst_role,
        locality,
        weight,
    };

    // Web (FE locality 2.7 / 81.3 / 7.3 / 8.6; Table 2: Cache 63.1,
    // MF 15.2, SLB 5.6, Rest 16.1).
    t.insert(
        Web,
        vec![
            e(Web, IntraRack, 2.7),
            e(CacheFollower, IntraCluster, 63.1),
            e(Multifeed, IntraCluster, 12.4),
            e(Multifeed, IntraDatacenter, 2.8),
            e(Slb, IntraCluster, 5.6),
            e(Misc, IntraDatacenter, 4.5),
            e(Misc, InterDatacenter, 8.6),
        ],
    );
    // Cache follower (Table 2: Web 88.7, Cache 5.8, Rest 5.5).
    t.insert(
        CacheFollower,
        vec![
            e(Web, IntraCluster, 88.7),
            e(CacheLeader, IntraDatacenter, 3.5),
            e(CacheLeader, InterDatacenter, 2.3),
            e(Misc, IntraDatacenter, 2.0),
            e(Misc, InterDatacenter, 3.5),
        ],
    );
    // Cache leader (Table 2: Cache 86.6, MF 5.9, Rest 7.5; locality
    // 0.2 / 13.0 / 70.7 / 16.1).
    t.insert(
        CacheLeader,
        vec![
            e(CacheLeader, IntraRack, 0.2),
            e(CacheLeader, IntraCluster, 13.0),
            e(CacheFollower, IntraDatacenter, 62.4),
            e(CacheFollower, InterDatacenter, 11.0),
            e(Multifeed, IntraDatacenter, 4.0),
            e(Multifeed, InterDatacenter, 1.9),
            e(Db, IntraDatacenter, 4.3),
            e(Db, InterDatacenter, 3.2),
        ],
    );
    // Hadoop (Table 2: Hadoop 99.8, Rest 0.2; locality 13.3 / 80.9 /
    // 3.3 / 2.5).
    t.insert(
        Hadoop,
        vec![
            e(Hadoop, IntraRack, 13.3),
            e(Hadoop, IntraCluster, 80.9),
            e(Hadoop, IntraDatacenter, 3.1),
            e(Hadoop, InterDatacenter, 2.5),
            e(Misc, IntraDatacenter, 0.2),
        ],
    );
    // Database (locality 0 / 30.7 / 34.5 / 34.8; "the most uniform").
    t.insert(
        Db,
        vec![
            e(Db, IntraCluster, 30.7),
            e(Db, IntraDatacenter, 15.0),
            e(Misc, IntraDatacenter, 19.5),
            e(Db, InterDatacenter, 20.0),
            e(Misc, InterDatacenter, 14.8),
        ],
    );
    // Service / misc (locality 12.1 / 56.3 / 15.7 / 15.9).
    t.insert(
        Misc,
        vec![
            e(Misc, IntraRack, 12.1),
            e(Misc, IntraCluster, 50.0),
            e(Multifeed, IntraCluster, 6.3),
            e(Misc, IntraDatacenter, 15.7),
            e(Misc, InterDatacenter, 15.9),
        ],
    );
    // Multifeed (no dedicated paper row; aggregator reads dominated by
    // leaf/storage fan-out).
    t.insert(
        Multifeed,
        vec![
            e(Misc, IntraDatacenter, 40.0),
            e(Misc, IntraCluster, 25.0),
            e(Multifeed, IntraCluster, 15.0),
            e(Misc, InterDatacenter, 10.0),
            e(Web, IntraCluster, 10.0),
        ],
    );
    // SLB: page requests into the web tier.
    t.insert(
        Slb,
        vec![e(Web, IntraCluster, 90.0), e(Misc, IntraDatacenter, 10.0)],
    );
    t
}

/// Per-cluster-type share of total fleet traffic (Table 3, bottom row;
/// the 21.4 % generated by unmodeled cluster types is renormalized away).
pub fn cluster_type_shares() -> [(sonet_topology::ClusterType, f64); 5] {
    use sonet_topology::ClusterType::*;
    [
        (Hadoop, 23.7),
        (Frontend, 21.5),
        (Service, 18.0),
        (Cache, 10.2),
        (Database, 5.2),
    ]
}

/// A role's demand table with its weight prefix precomputed, so a sample
/// costs one uniform draw and a short scan instead of rebuilding the
/// weight vector per record.
#[derive(Debug, Clone)]
struct PreparedDemand {
    entries: Vec<DemandEntry>,
    total_weight: f64,
}

/// A contiguous segment of a [`RoleIndex`] host array.
#[derive(Debug, Clone, Copy, Default)]
struct Seg {
    start: u32,
    len: u32,
}

impl Seg {
    fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Per-role candidate index: every host of the role sorted by
/// `(datacenter, cluster, rack, id)`, plus segment tables at each
/// containment level. Because the sort key is hierarchical, "hosts of
/// role R in datacenter D but outside cluster C" is one contiguous range
/// minus one contiguous sub-range — a uniform pick over it is O(1) with a
/// single index-skip, no filtering or allocation per sample.
#[derive(Debug, Clone)]
struct RoleIndex {
    hosts: Vec<HostId>,
    rack: Vec<Seg>,
    cluster: Vec<Seg>,
    dc: Vec<Seg>,
}

impl RoleIndex {
    fn build(topo: &Topology, role: HostRole) -> RoleIndex {
        let mut hosts: Vec<HostId> = topo.hosts_with_role(role).to_vec();
        hosts.sort_by_key(|&h| {
            let info = topo.host(h);
            (
                info.datacenter.index(),
                info.cluster.index(),
                info.rack.index(),
                h.index(),
            )
        });
        let mut rack = vec![Seg::default(); topo.racks().len()];
        let mut cluster = vec![Seg::default(); topo.clusters().len()];
        let mut dc = vec![Seg::default(); topo.datacenters().len()];
        for (pos, &h) in hosts.iter().enumerate() {
            let info = topo.host(h);
            for seg in [
                &mut rack[info.rack.index()],
                &mut cluster[info.cluster.index()],
                &mut dc[info.datacenter.index()],
            ] {
                if seg.is_empty() {
                    seg.start = pos as u32;
                }
                seg.len += 1;
            }
        }
        RoleIndex {
            hosts,
            rack,
            cluster,
            dc,
        }
    }

    /// Uniform pick from segment `seg` minus the (possibly empty)
    /// sub-segment `hole` contained in it.
    fn pick_minus(&self, rng: &mut Rng, seg: Seg, hole: Seg) -> Option<HostId> {
        let count = seg.len - hole.len;
        if count == 0 {
            return None;
        }
        let mut i = rng.below(count as u64) as u32;
        if !hole.is_empty() && i >= hole.start - seg.start {
            i += hole.len;
        }
        Some(self.hosts[(seg.start + i) as usize])
    }

    /// Uniform pick from segment `seg` excluding the single host
    /// `skip` (which may or may not be in the segment).
    fn pick_skipping(&self, rng: &mut Rng, seg: Seg, skip: HostId) -> Option<HostId> {
        let range = seg.start as usize..(seg.start + seg.len) as usize;
        // Within one rack the hierarchical key degenerates to the host
        // id, so the segment is id-sorted and the skip position binary-
        // searchable.
        let skip_pos = self.hosts[range.clone()].binary_search(&skip).ok();
        let count = seg.len as u64 - u64::from(skip_pos.is_some());
        if count == 0 {
            return None;
        }
        let mut i = rng.below(count) as usize;
        if let Some(p) = skip_pos {
            if i >= p {
                i += 1;
            }
        }
        Some(self.hosts[range.start + i])
    }
}

/// The fleet-tier generator.
pub struct FleetModel {
    topo: Arc<Topology>,
    cfg: FleetConfig,
    /// Seed material for per-host streams. Never advances: host `h`
    /// always draws from `base.fork_idx("host", h)`, so its records are
    /// a pure function of `(topology, config, seed, h)` — independent of
    /// chunk boundaries, thread count, and every other host.
    base: Rng,
    demand: HashMap<HostRole, PreparedDemand>,
    picks: HashMap<HostRole, RoleIndex>,
    /// Bytes per sample for each host (role/cluster-type weighted).
    host_sample_bytes: Vec<f64>,
    /// Fallback counter: records whose desired locality had no candidate.
    relaxed: u64,
    /// Next host to emit samples for (generation is resumable host by
    /// host; see [`FleetModel::generate_chunk`]).
    next_host: u32,
    /// Worker-count override; `None` defers to the process default
    /// ([`par::resolve_threads`]). Never serialized: the thread count
    /// must not affect output, so a resumed run may use a different one.
    threads: Option<usize>,
}

/// Serialized dynamic state of a [`FleetModel`].
///
/// The demand tables, candidate indexes, and per-host byte budgets are
/// pure functions of `(topology, config)` and are rebuilt by
/// [`FleetModel::new`]; with per-host RNG streams there is no shared
/// generator to save either, so the state is just the generation cursor
/// and the relaxed-pick counter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetModelState {
    next_host: u32,
    relaxed: u64,
}

impl FleetModel {
    /// Builds the model over `topo`.
    pub fn new(topo: Arc<Topology>, cfg: FleetConfig, seed: u64) -> FleetModel {
        let shares: HashMap<sonet_topology::ClusterType, f64> =
            cluster_type_shares().into_iter().collect();
        // Hosts per cluster type.
        let mut type_hosts: HashMap<sonet_topology::ClusterType, u64> = HashMap::new();
        for h in topo.hosts() {
            *type_hosts.entry(topo.cluster(h.cluster).ctype).or_insert(0) += 1;
        }
        let total_share: f64 = shares
            .iter()
            .filter(|(t, _)| type_hosts.contains_key(t))
            .map(|(_, s)| *s)
            .sum();
        let mut host_sample_bytes = Vec::with_capacity(topo.hosts().len());
        for h in topo.hosts() {
            let ctype = topo.cluster(h.cluster).ctype;
            let share = shares.get(&ctype).copied().unwrap_or(0.0) / total_share.max(1e-9);
            let hosts = *type_hosts.get(&ctype).unwrap_or(&1) as f64;
            let host_total = cfg.total_bytes * share / hosts;
            host_sample_bytes.push(host_total / cfg.samples_per_host.max(1) as f64);
        }
        let demand = demand_tables()
            .into_iter()
            .map(|(role, entries)| {
                let total_weight = entries.iter().map(|d| d.weight).sum();
                (
                    role,
                    PreparedDemand {
                        entries,
                        total_weight,
                    },
                )
            })
            .collect();
        let picks = HostRole::ALL
            .iter()
            .map(|&role| (role, RoleIndex::build(&topo, role)))
            .collect();
        FleetModel {
            topo,
            cfg,
            base: Rng::new(seed).fork("fleet"),
            demand,
            picks,
            host_sample_bytes,
            relaxed: 0,
            next_host: 0,
            threads: None,
        }
    }

    /// Sets the worker count used by [`FleetModel::generate_chunk`].
    /// `None` (the default) defers to the process-wide setting; the
    /// choice never affects the generated stream, only wall-clock time.
    pub fn set_parallelism(&mut self, threads: Option<usize>) {
        self.threads = threads;
    }

    /// Records whose desired locality was infeasible and got relaxed.
    pub fn relaxed_picks(&self) -> u64 {
        self.relaxed
    }

    /// Hosts whose samples have been emitted so far.
    pub fn hosts_done(&self) -> u32 {
        self.next_host
    }

    /// True once every host's samples have been emitted.
    pub fn exhausted(&self) -> bool {
        self.next_host as usize >= self.topo.hosts().len()
    }

    /// Captures the generator's dynamic state for checkpointing.
    pub fn state(&self) -> FleetModelState {
        FleetModelState {
            next_host: self.next_host,
            relaxed: self.relaxed,
        }
    }

    /// Restores dynamic state captured by [`FleetModel::state`] into a
    /// model built with identical `(topology, config, seed)`. Fails when
    /// the cursor lies outside this topology — the telltale of a state
    /// replayed against the wrong plant.
    pub fn restore_state(&mut self, state: FleetModelState) -> Result<(), String> {
        if state.next_host as usize > self.topo.hosts().len() {
            return Err(format!(
                "fleet state cursor {} exceeds the {} hosts of this topology",
                state.next_host,
                self.topo.hosts().len()
            ));
        }
        self.next_host = state.next_host;
        self.relaxed = state.relaxed;
        Ok(())
    }

    /// Generates the full sample stream (capture agent = the sender, so
    /// bytes are counted once).
    pub fn generate(&mut self) -> Vec<FlowRecord> {
        let n_hosts = self.topo.hosts().len();
        let mut out = Vec::with_capacity(
            n_hosts.saturating_sub(self.next_host as usize) * self.cfg.samples_per_host as usize,
        );
        while !self.exhausted() {
            out.extend(self.generate_chunk(u32::MAX));
        }
        out.sort_by_key(|r| r.at);
        out
    }

    /// Emits the samples of up to `max_hosts` further hosts, advancing the
    /// cursor. Returns records in emission (host) order, **not** time
    /// order: a supervised run concatenates chunks across checkpoints and
    /// applies the same stable time sort `generate` uses at the end, which
    /// makes a resumed run's stream identical to an uninterrupted one.
    ///
    /// The host range is sharded across a scoped worker pool. Every host
    /// draws from its own forked RNG stream and the shard outputs are
    /// concatenated in host order, so the emitted records are
    /// byte-identical for every thread count (and for every chunking into
    /// `generate_chunk` calls).
    pub fn generate_chunk(&mut self, max_hosts: u32) -> Vec<FlowRecord> {
        let n_hosts = self.topo.hosts().len();
        let first = self.next_host as usize;
        let stop = first.saturating_add(max_hosts as usize).min(n_hosts);
        let span = stop - first;
        let threads = par::resolve_threads(self.threads);
        let shards = par::split_ranges(threads, span);
        let results: Vec<(Vec<FlowRecord>, u64)> = par::map_indexed(threads, shards.len(), |s| {
            let hosts = (first + shards[s].start) as u32..(first + shards[s].end) as u32;
            self.generate_shard(hosts)
        });
        self.next_host = stop as u32;
        let total: usize = results.iter().map(|(recs, _)| recs.len()).sum();
        let mut out = Vec::with_capacity(total);
        for (recs, relaxed) in results {
            out.extend(recs);
            self.relaxed += relaxed;
        }
        out
    }

    /// Emits the samples of one contiguous host shard. Immutable on
    /// `self`, so shards run concurrently; returns the shard's records
    /// (host order) and its relaxed-pick count.
    fn generate_shard(&self, hosts: std::ops::Range<u32>) -> (Vec<FlowRecord>, u64) {
        let mut out = Vec::with_capacity(hosts.len() * self.cfg.samples_per_host as usize);
        let mut relaxed = 0u64;
        for h in hosts {
            let src = HostId(h);
            let mut rng = self.base.fork_idx("host", h as u64);
            for _ in 0..self.cfg.samples_per_host {
                if let Some(rec) = self.one_sample(src, &mut rng, &mut relaxed) {
                    out.push(rec);
                }
            }
        }
        (out, relaxed)
    }

    fn one_sample(&self, src: HostId, rng: &mut Rng, relaxed: &mut u64) -> Option<FlowRecord> {
        let role = self.topo.host(src).role;
        let prep = self.demand.get(&role)?;
        // Weighted entry pick, same single-draw semantics as
        // `Rng::pick_weighted` but against the precomputed total.
        let mut target = rng.f64() * prep.total_weight;
        let mut entry = *prep.entries.last()?;
        for d in &prep.entries {
            if target < d.weight {
                entry = *d;
                break;
            }
            target -= d.weight;
        }
        let dst = self.pick_host(src, entry.dst_role, entry.locality, rng, relaxed)?;
        let at = self.diurnal_time(rng);
        // Heavy-tailed per-sample volume around the host's budget: flow
        // volumes in real Fbflow data span many decades, which is what
        // stretches Fig 5's cluster-pair spread past 7 orders of magnitude.
        let jitter = {
            let z = rng.standard_normal();
            (1.5 * z).exp()
        };
        let bytes = (self.host_sample_bytes[src.index()] * jitter).max(1.0) as u64;
        Some(FlowRecord {
            at,
            capture_host: src,
            src,
            dst,
            src_port: 32768 + (rng.below(16_384) as u16),
            dst_port: crate::workload::port_for(entry.dst_role),
            bytes,
            packets: (bytes / 700).max(1), // representative mean packet size
        })
    }

    /// A timestamp in `[0, duration)` with density following the diurnal
    /// envelope (rejection sampling).
    fn diurnal_time(&self, rng: &mut Rng) -> SimTime {
        let span = self.cfg.duration.as_nanos();
        loop {
            let t = SimTime::from_nanos(rng.below(span.max(1)));
            let m = self.cfg.diurnal.multiplier(t);
            // Multiplier is within [1-a, 1+a]; accept proportionally.
            if rng.f64() * (1.0 + 1.0) < m {
                return t;
            }
        }
    }

    /// Picks a host of `role` at `locality` relative to `src`, relaxing
    /// toward broader localities when the plant has no candidate.
    fn pick_host(
        &self,
        src: HostId,
        role: HostRole,
        locality: Locality,
        rng: &mut Rng,
        relaxed: &mut u64,
    ) -> Option<HostId> {
        let order: [Locality; 4] = match locality {
            Locality::IntraRack => [
                Locality::IntraRack,
                Locality::IntraCluster,
                Locality::IntraDatacenter,
                Locality::InterDatacenter,
            ],
            Locality::IntraCluster => [
                Locality::IntraCluster,
                Locality::IntraDatacenter,
                Locality::InterDatacenter,
                Locality::IntraRack,
            ],
            Locality::IntraDatacenter => [
                Locality::IntraDatacenter,
                Locality::InterDatacenter,
                Locality::IntraCluster,
                Locality::IntraRack,
            ],
            Locality::InterDatacenter => [
                Locality::InterDatacenter,
                Locality::IntraDatacenter,
                Locality::IntraCluster,
                Locality::IntraRack,
            ],
        };
        for (i, &loc) in order.iter().enumerate() {
            if let Some(h) = self.try_pick(src, role, loc, rng) {
                if i > 0 {
                    *relaxed += 1;
                }
                return Some(h);
            }
        }
        None
    }

    /// Uniform candidate pick at exactly `locality`, or `None` when the
    /// plant has no candidate there. O(1) per call (one binary search in
    /// the intra-rack case): candidates are contiguous ranges of the
    /// precomputed [`RoleIndex`], with the excluded inner scope skipped
    /// arithmetically rather than filtered.
    fn try_pick(
        &self,
        src: HostId,
        role: HostRole,
        locality: Locality,
        rng: &mut Rng,
    ) -> Option<HostId> {
        let info = self.topo.host(src);
        let idx = self.picks.get(&role)?;
        match locality {
            Locality::IntraRack => idx.pick_skipping(rng, idx.rack[info.rack.index()], src),
            Locality::IntraCluster => idx.pick_minus(
                rng,
                idx.cluster[info.cluster.index()],
                idx.rack[info.rack.index()],
            ),
            Locality::IntraDatacenter => idx.pick_minus(
                rng,
                idx.dc[info.datacenter.index()],
                idx.cluster[info.cluster.index()],
            ),
            Locality::InterDatacenter => idx.pick_minus(
                rng,
                Seg {
                    start: 0,
                    len: idx.hosts.len() as u32,
                },
                idx.dc[info.datacenter.index()],
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonet_telemetry::Tagger;
    use sonet_topology::{ClusterSpec, ClusterType, DatacenterSpec, SiteSpec, TopologySpec};

    /// A two-DC fleet with every cluster type represented.
    fn fleet_topo() -> Arc<Topology> {
        let dc = |seed: u32| DatacenterSpec {
            clusters: vec![
                ClusterSpec::frontend(16 + seed, 6),
                ClusterSpec::hadoop(12, 6),
                ClusterSpec::cache(6, 6),
                ClusterSpec::database(4, 6),
                ClusterSpec::service(8, 6),
            ],
        };
        Arc::new(
            Topology::build(TopologySpec {
                sites: vec![
                    SiteSpec {
                        datacenters: vec![dc(0)],
                    },
                    SiteSpec {
                        datacenters: vec![dc(2)],
                    },
                ],
                ..TopologySpec::default()
            })
            .expect("valid"),
        )
    }

    #[test]
    fn demand_tables_cover_all_roles_and_normalize() {
        let t = demand_tables();
        for role in HostRole::ALL {
            let rows = t.get(&role).unwrap_or_else(|| panic!("missing {role}"));
            let sum: f64 = rows.iter().map(|r| r.weight).sum();
            assert!(sum > 0.0, "{role} empty");
            // Most tables target 100 but only relative weight matters.
            assert!((50.0..150.0).contains(&sum), "{role} sums to {sum}");
        }
    }

    #[test]
    fn hadoop_fleet_locality_tracks_table_3() {
        let topo = fleet_topo();
        let mut model = FleetModel::new(
            Arc::clone(&topo),
            FleetConfig {
                samples_per_host: 60,
                ..FleetConfig::default()
            },
            11,
        );
        let samples = model.generate();
        let tagger = Tagger::new(&topo);
        let table = tagger.ingest(samples);
        let hadoop = table.filtered(|r| r.src_cluster_type == ClusterType::Hadoop);
        let total = hadoop.total_bytes() as f64;
        let by_loc = hadoop.bytes_by(|r| r.locality);
        let frac = |l: Locality| *by_loc.get(&l).unwrap_or(&0) as f64 / total * 100.0;
        assert!(
            (frac(Locality::IntraRack) - 13.3).abs() < 4.0,
            "rack {}",
            frac(Locality::IntraRack)
        );
        assert!(
            (frac(Locality::IntraCluster) - 80.9).abs() < 5.0,
            "cluster {}",
            frac(Locality::IntraCluster)
        );
        assert!(frac(Locality::InterDatacenter) < 8.0);
    }

    #[test]
    fn web_outbound_role_mix_tracks_table_2() {
        let topo = fleet_topo();
        let mut model = FleetModel::new(
            Arc::clone(&topo),
            FleetConfig {
                samples_per_host: 80,
                ..FleetConfig::default()
            },
            13,
        );
        let samples = model.generate();
        let tagger = Tagger::new(&topo);
        let table = tagger.ingest(samples);
        let web = table.filtered(|r| r.src_role == HostRole::Web);
        let total = web.total_bytes() as f64;
        let by_role = web.bytes_by(|r| r.dst_role);
        let frac = |r: HostRole| *by_role.get(&r).unwrap_or(&0) as f64 / total * 100.0;
        assert!(
            (frac(HostRole::CacheFollower) - 63.1).abs() < 6.0,
            "cache {}",
            frac(HostRole::CacheFollower)
        );
        assert!(
            (frac(HostRole::Multifeed) - 15.2).abs() < 5.0,
            "mf {}",
            frac(HostRole::Multifeed)
        );
        assert!(
            (frac(HostRole::Slb) - 5.6).abs() < 3.0,
            "slb {}",
            frac(HostRole::Slb)
        );
    }

    #[test]
    fn volume_shares_follow_table_3_bottom_row() {
        let topo = fleet_topo();
        let mut model = FleetModel::new(Arc::clone(&topo), FleetConfig::default(), 17);
        let samples = model.generate();
        let tagger = Tagger::new(&topo);
        let table = tagger.ingest(samples);
        let total = table.total_bytes() as f64;
        let by_type = table.bytes_by(|r| r.src_cluster_type);
        // Hadoop/FE ≈ 23.7/21.5 after renormalization.
        let hadoop = *by_type.get(&ClusterType::Hadoop).unwrap_or(&0) as f64 / total;
        let fe = *by_type.get(&ClusterType::Frontend).unwrap_or(&0) as f64 / total;
        let expected_ratio = 23.7 / 21.5;
        assert!(
            (hadoop / fe - expected_ratio).abs() < 0.2,
            "hadoop/fe ratio {} vs {expected_ratio}",
            hadoop / fe
        );
    }

    #[test]
    fn generation_is_invariant_to_thread_count_and_chunking() {
        let topo = fleet_topo();
        let cfg = FleetConfig {
            samples_per_host: 20,
            ..FleetConfig::default()
        };
        let run = |threads: Option<usize>, chunk: u32| {
            let mut model = FleetModel::new(Arc::clone(&topo), cfg.clone(), 23);
            model.set_parallelism(threads);
            let mut out = Vec::new();
            while !model.exhausted() {
                out.extend(model.generate_chunk(chunk));
            }
            out.sort_by_key(|r| r.at);
            (out, model.relaxed_picks())
        };
        let baseline = run(Some(1), u32::MAX);
        for (threads, chunk) in [(Some(2), u32::MAX), (Some(8), u32::MAX), (Some(3), 7)] {
            let got = run(threads, chunk);
            assert_eq!(
                got, baseline,
                "threads {threads:?} chunk {chunk} must not change the stream"
            );
        }
    }

    #[test]
    fn timestamps_cover_the_day_diurnally() {
        let topo = fleet_topo();
        let mut model = FleetModel::new(
            Arc::clone(&topo),
            FleetConfig {
                samples_per_host: 30,
                ..FleetConfig::default()
            },
            19,
        );
        let samples = model.generate();
        let day = 86_400u64;
        assert!(samples.iter().all(|s| s.at.as_secs() < day));
        // Peak quarter (around t=T/4) should carry more than trough
        // quarter (around t=3T/4).
        let q = |lo: u64, hi: u64| {
            samples
                .iter()
                .filter(|s| (lo..hi).contains(&s.at.as_secs()))
                .count() as f64
        };
        let peak = q(day / 8, 3 * day / 8);
        let trough = q(5 * day / 8, 7 * day / 8);
        assert!(peak > trough * 1.3, "peak {peak} trough {trough}");
    }
}
