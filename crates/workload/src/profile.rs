//! Service traffic profiles — the quantitative heart of the reproduction.
//!
//! Each host role is described by a set of [`CallPattern`]s: independent
//! RPC call streams with an arrival rate, burst structure, destination
//! selection policy, request/response size distributions, and connection
//! management mode. Default parameters are calibrated against the paper:
//!
//! * Table 2's outbound byte mixes per role;
//! * §5.1's flow size/duration statements (pooling for cache/web, Hadoop
//!   flows 70 % < 10 kB, median < 1 kB, < 5 % > 1 MB);
//! * §6.1's packet sizes (non-Hadoop median < 200 B, Hadoop bimodal);
//! * §6.2's flow inter-arrival medians (≈2 ms Web/Hadoop, 3/8 ms cache);
//! * §4.2's locality splits per cluster type.
//!
//! Absolute per-host *rates* are scaled down from production (DESIGN.md
//! §3): distribution shapes and mixes, which are what every figure
//! measures, are rate-invariant. The `rate_scale` knob on
//! [`ServiceProfiles`] lets experiments trade runtime for traffic volume.

use crate::diurnal::DiurnalPattern;
use serde::{Deserialize, Serialize};
use sonet_util::dist::Dist;
use sonet_util::SimDuration;

/// Well-known server ports per role (flavor only; analysis keys on roles).
pub mod ports {
    /// HTTP on Web servers.
    pub const WEB: u16 = 80;
    /// memcached on cache hosts.
    pub const CACHE: u16 = 11211;
    /// Multifeed aggregators.
    pub const MULTIFEED: u16 = 8080;
    /// Software load balancers.
    pub const SLB: u16 = 443;
    /// MySQL.
    pub const DB: u16 = 3306;
    /// HDFS data transfer.
    pub const HADOOP: u16 = 50010;
    /// Miscellaneous services.
    pub const MISC: u16 = 9000;
}

/// Request/response/service-time triple for one RPC type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RpcProfile {
    /// Request payload bytes (client → server).
    pub request: Dist,
    /// Response payload bytes (server → client); `Constant(0)` means
    /// one-way (no response).
    pub response: Dist,
    /// Server think time before the response, in microseconds.
    pub service_us: Dist,
}

/// How a pattern manages connections.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PoolMode {
    /// mcrouter-style long-lived pooled connection per (src, dst) pair
    /// (§5.1: "many of Facebook's internal services use some form of
    /// connection pooling, leading to long-lived connections").
    Pooled,
    /// A fresh connection per call, closed after the exchange — Hadoop's
    /// behaviour, which drives its high SYN rate (§6.2).
    Ephemeral,
}

/// Destination host selection policy for a pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DestSelector {
    /// A host with `role` in the caller's own cluster.
    RoleInCluster {
        /// Target role.
        role: sonet_topology::HostRole,
        /// Spread across candidates.
        lb: LoadBalance,
    },
    /// A host with `role` in the caller's datacenter but outside its
    /// cluster (if none exists outside, any host of that role in the DC).
    RoleInDatacenter {
        /// Target role.
        role: sonet_topology::HostRole,
    },
    /// A host with `role` anywhere in the fleet; with probability
    /// `p_remote_dc` the pick is forced to another datacenter when one
    /// exists.
    RoleAnywhere {
        /// Target role.
        role: sonet_topology::HostRole,
        /// Probability of forcing a remote-datacenter destination.
        p_remote_dc: f64,
    },
    /// Hadoop data placement: with probability `p_rack` a host in the
    /// caller's own rack; otherwise a host in another rack of the cluster,
    /// with racks weighted by a Zipf(`rack_skew`) law — §4.2: inter-rack
    /// traffic reaches 95 % of racks but 17 % of racks receive 80 %.
    HadoopPlacement {
        /// Probability the destination is rack-local (paper: 0.757 busy).
        p_rack: f64,
        /// Zipf exponent of the rack popularity skew.
        rack_skew: f64,
    },
}

/// Load-balancing quality across candidate destinations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LoadBalance {
    /// Perfect spreading (§5.2's effective load balancing).
    Uniform,
    /// Skewed popularity — used by the load-balancing ablation to show how
    /// heavy-hitter stability degrades without the paper's engineering.
    Zipf {
        /// Skew exponent (larger = more concentrated).
        s: f64,
    },
}

/// One independent RPC call stream emitted by a host.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CallPattern {
    /// Human-readable name (shows up in workload diagnostics).
    pub name: &'static str,
    /// Burst-arrival events per second per source host (Poisson).
    pub bursts_per_sec: f64,
    /// Calls per burst (e.g. the per-page cache fan-out).
    pub burst_size: Dist,
    /// Burst calls are spread uniformly over this window (µs).
    pub burst_window_us: f64,
    /// Destination policy.
    pub dest: DestSelector,
    /// Sizes and service time.
    pub rpc: RpcProfile,
    /// Connection management.
    pub pool: PoolMode,
    /// Parallel pooled connections per destination (ignored for ephemeral
    /// patterns). Worker processes each keep their own connection; the
    /// paper's cache/Web hosts carry "100s to 1000s of concurrent
    /// connections" (§6.4).
    pub pool_width: u32,
    /// If true, the pattern's rate is modulated by the Hadoop phase
    /// machine (busy/quiet); only meaningful for Hadoop hosts.
    pub phase_locked: bool,
}

/// Hot-object dynamics and their mitigation (§5.2).
///
/// "Bursts of requests for an object lead the cache server to instruct
/// the Web server to temporarily cache the hot object; sustained activity
/// for the object leads to replication of the object or the enclosing
/// shard across multiple cache servers to help spread the load. ... the
/// median lifespan for objects within this [top-50] list is on the order
/// of a few minutes."
///
/// When `hot_fraction > 0`, that share of Web→cache gets targets the
/// current hot object's home follower. Every `rotation` a new hot object
/// (hence home follower) is drawn. With `mitigated` set, requests spread
/// uniformly again once the burst has lasted `detect_after` — the
/// replication/web-side-caching response. The Fig 8 ablation contrasts
/// mitigated and unmitigated runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HotObjectConfig {
    /// Share of cache gets hitting the hot object (0 disables).
    pub hot_fraction: f64,
    /// Hot-object lifetime.
    pub rotation: SimDuration,
    /// Detection + replication delay before mitigation kicks in.
    pub detect_after: SimDuration,
    /// Whether the mitigation machinery is active.
    pub mitigated: bool,
}

impl Default for HotObjectConfig {
    fn default() -> Self {
        HotObjectConfig {
            hot_fraction: 0.0,
            rotation: SimDuration::from_secs(120),
            detect_after: SimDuration::from_secs(2),
            mitigated: true,
        }
    }
}

impl HotObjectConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.hot_fraction) {
            return Err("hot_fraction must be a probability".into());
        }
        if self.rotation.is_zero() {
            return Err("hot-object rotation must be positive".into());
        }
        Ok(())
    }
}

/// Hadoop's two-phase activity cycle (§4.2: "any given data capture might
/// observe a Hadoop node during a busy period of shuffled network traffic,
/// or during a relatively quiet period of computation").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HadoopPhases {
    /// Busy-phase duration (seconds).
    pub busy_secs: Dist,
    /// Quiet-phase duration (seconds).
    pub quiet_secs: Dist,
    /// Multiplier applied to Hadoop transfer rates during quiet phases.
    pub quiet_rate_factor: f64,
    /// Probability a host starts in the busy phase.
    pub p_start_busy: f64,
}

/// The full parameter set: per-role call patterns plus global knobs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServiceProfiles {
    /// Web server patterns.
    pub web: Vec<CallPattern>,
    /// Cache follower patterns.
    pub cache_follower: Vec<CallPattern>,
    /// Cache leader patterns.
    pub cache_leader: Vec<CallPattern>,
    /// Hadoop patterns (rates modulated by `hadoop_phases`).
    pub hadoop: Vec<CallPattern>,
    /// Multifeed patterns.
    pub multifeed: Vec<CallPattern>,
    /// SLB patterns. The user-request rate is auto-scaled so that
    /// SLB→Web page requests match the Web tier's page rate.
    pub slb: Vec<CallPattern>,
    /// Database patterns.
    pub db: Vec<CallPattern>,
    /// Miscellaneous-service patterns.
    pub misc: Vec<CallPattern>,
    /// Hadoop phase machine.
    pub hadoop_phases: HadoopPhases,
    /// Hot-object dynamics for Web→cache gets (§5.2).
    pub hot_objects: HotObjectConfig,
    /// Global rate multiplier (scale traffic volume without reshaping it).
    pub rate_scale: f64,
    /// Diurnal modulation applied to all rates.
    pub diurnal: DiurnalPattern,
    /// Lifetime margin for ephemeral connections: the connection closes
    /// after `est. transfer time × 3 + linger + this`.
    pub ephemeral_close_margin: SimDuration,
    /// Additional ephemeral-connection linger (milliseconds): tasks hold
    /// their connection open for a while after the exchange, which is what
    /// spreads Hadoop's flow durations (§5.1: 70 % < 10 s, median < 1 s,
    /// few outliving a 10-minute trace).
    pub ephemeral_linger_ms: Dist,
}

use sonet_topology::HostRole;

impl ServiceProfiles {
    /// Patterns for a role.
    pub fn for_role(&self, role: HostRole) -> &[CallPattern] {
        match role {
            HostRole::Web => &self.web,
            HostRole::CacheFollower => &self.cache_follower,
            HostRole::CacheLeader => &self.cache_leader,
            HostRole::Hadoop => &self.hadoop,
            HostRole::Multifeed => &self.multifeed,
            HostRole::Slb => &self.slb,
            HostRole::Db => &self.db,
            HostRole::Misc => &self.misc,
        }
    }

    /// Validates every distribution and rate.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.rate_scale > 0.0) {
            return Err("rate_scale must be positive".into());
        }
        for role in HostRole::ALL {
            for p in self.for_role(role) {
                if !(p.bursts_per_sec >= 0.0) {
                    return Err(format!("{}: negative rate", p.name));
                }
                if p.burst_window_us < 0.0 {
                    return Err(format!("{}: negative burst window", p.name));
                }
                p.burst_size
                    .validate()
                    .map_err(|e| format!("{}: burst {e}", p.name))?;
                p.rpc
                    .request
                    .validate()
                    .map_err(|e| format!("{}: req {e}", p.name))?;
                p.rpc
                    .response
                    .validate()
                    .map_err(|e| format!("{}: resp {e}", p.name))?;
                p.rpc
                    .service_us
                    .validate()
                    .map_err(|e| format!("{}: service {e}", p.name))?;
            }
        }
        self.hadoop_phases
            .busy_secs
            .validate()
            .map_err(|e| format!("busy {e}"))?;
        self.hadoop_phases
            .quiet_secs
            .validate()
            .map_err(|e| format!("quiet {e}"))?;
        if !(0.0..=1.0).contains(&self.hadoop_phases.p_start_busy) {
            return Err("p_start_busy must be a probability".into());
        }
        self.hot_objects.validate()?;
        self.ephemeral_linger_ms
            .validate()
            .map_err(|e| format!("ephemeral linger {e}"))?;
        Ok(())
    }
}

fn ln(median: f64, sigma: f64) -> Dist {
    Dist::LogNormal { median, sigma }
}

fn exp_us(mean: f64) -> Dist {
    Dist::Exponential { mean }
}

impl Default for ServiceProfiles {
    /// Paper-calibrated defaults. Rates are per-host and scaled to roughly
    /// 1/50 of production volume (DESIGN.md §3); `rate_scale` multiplies
    /// them uniformly.
    fn default() -> Self {
        use DestSelector::*;
        use HostRole::*;

        // ------------------------------------------------------------
        // Web servers (Table 2 row "Web": Cache 63.1, MF 15.2, SLB 5.6,
        // Rest 16.1). A "page" is a burst of cache gets/sets plus feed
        // and misc lookups; the SLB-bound page response is driven by the
        // SLB tier's requests.
        // ------------------------------------------------------------
        let web = vec![
            CallPattern {
                name: "web.cache_get",
                bursts_per_sec: 2.0, // pages/s per web host (scaled)
                burst_size: Dist::Uniform { lo: 10.0, hi: 21.0 }, // ~15 objects/page
                burst_window_us: 3_000.0,
                dest: RoleInCluster {
                    role: CacheFollower,
                    lb: LoadBalance::Uniform,
                },
                rpc: RpcProfile {
                    request: ln(120.0, 0.6), // keys + flags
                    // Object values: mostly hundreds of bytes with a heavy
                    // tail [10]; keeps full-MTU packets at the paper's
                    // 5-10 % (§6.1).
                    response: ln(400.0, 1.0),
                    service_us: exp_us(100.0),
                },
                pool: PoolMode::Pooled,
                pool_width: 8,
                phase_locked: false,
            },
            CallPattern {
                name: "web.cache_set",
                bursts_per_sec: 2.0,
                burst_size: Dist::Uniform { lo: 2.0, hi: 6.0 }, // ~4 writes/page
                burst_window_us: 5_000.0,
                dest: RoleInCluster {
                    role: CacheFollower,
                    lb: LoadBalance::Uniform,
                },
                rpc: RpcProfile {
                    request: ln(2000.0, 1.0), // rendered fragments written back
                    response: Dist::Constant(100.0),
                    service_us: exp_us(150.0),
                },
                pool: PoolMode::Pooled,
                pool_width: 8,
                phase_locked: false,
            },
            CallPattern {
                name: "web.multifeed",
                bursts_per_sec: 2.0,
                burst_size: Dist::Constant(2.0),
                burst_window_us: 4_000.0,
                dest: RoleInCluster {
                    role: Multifeed,
                    lb: LoadBalance::Uniform,
                },
                rpc: RpcProfile {
                    request: ln(2000.0, 0.5),  // viewer context
                    response: ln(1200.0, 0.9), // ranked story ids + snippets
                    service_us: exp_us(2_000.0),
                },
                // PHP request workers open per-request backend connections
                // — a large share of the web tier's ~500 flows/s (§6.2).
                pool: PoolMode::Ephemeral,
                pool_width: 1,
                phase_locked: false,
            },
            CallPattern {
                name: "web.misc",
                bursts_per_sec: 2.0,
                burst_size: Dist::Constant(4.0),
                burst_window_us: 10_000.0,
                dest: RoleAnywhere {
                    role: Misc,
                    p_remote_dc: 0.15,
                },
                rpc: RpcProfile {
                    request: ln(850.0, 0.6),
                    response: ln(900.0, 0.8),
                    service_us: exp_us(1_000.0),
                },
                pool: PoolMode::Ephemeral,
                pool_width: 1,
                phase_locked: false,
            },
        ];

        // ------------------------------------------------------------
        // SLB (drives Web page responses; §3.2). The driver scales the
        // per-SLB rate by n_web/n_slb so aggregate page rates match.
        // ------------------------------------------------------------
        let slb = vec![CallPattern {
            name: "slb.user_request",
            bursts_per_sec: 2.0, // auto-scaled by web/slb host ratio at build
            burst_size: Dist::Constant(1.0),
            burst_window_us: 0.0,
            dest: RoleInCluster {
                role: Web,
                lb: LoadBalance::Uniform,
            },
            rpc: RpcProfile {
                request: ln(550.0, 0.5),   // HTTP GET + cookies
                response: ln(1900.0, 0.5), // compressed page (Table 2: SLB gets 5.6 %)
                service_us: exp_us(5_000.0),
            },
            pool: PoolMode::Pooled,
            pool_width: 4,
            phase_locked: false,
        }];

        // ------------------------------------------------------------
        // Cache followers (Table 2 row "Cache-f": Web 88.7 — driven by
        // web.cache_get responses above — Cache 5.8, Rest 5.5).
        // ------------------------------------------------------------
        let cache_follower = vec![
            CallPattern {
                name: "cachef.leader_fetch_writeback",
                bursts_per_sec: 4.0, // misses + write-throughs
                burst_size: Dist::Constant(1.0),
                burst_window_us: 0.0,
                dest: RoleAnywhere {
                    role: CacheLeader,
                    p_remote_dc: 0.2,
                },
                rpc: RpcProfile {
                    request: ln(350.0, 0.8), // write-through values + fetch keys
                    response: ln(600.0, 1.0),
                    service_us: exp_us(300.0),
                },
                pool: PoolMode::Pooled,
                pool_width: 4,
                phase_locked: false,
            },
            CallPattern {
                name: "cachef.misc",
                bursts_per_sec: 6.0,
                burst_size: Dist::Constant(1.0),
                burst_window_us: 0.0,
                dest: RoleAnywhere {
                    role: Misc,
                    p_remote_dc: 0.1,
                },
                rpc: RpcProfile {
                    request: ln(550.0, 0.7),
                    response: ln(500.0, 0.7),
                    service_us: exp_us(500.0),
                },
                pool: PoolMode::Ephemeral,
                pool_width: 1,
                phase_locked: false,
            },
        ];

        // ------------------------------------------------------------
        // Cache leaders (Table 2 row "Cache-l": Cache 86.6, MF 5.9,
        // Rest 7.5; §4.2: leaders engage primarily in intra- and
        // inter-datacenter traffic, the cache being "a single
        // geographically distributed instance").
        // ------------------------------------------------------------
        let cache_leader = vec![
            CallPattern {
                name: "cachel.coherency_push",
                bursts_per_sec: 18.0,
                burst_size: Dist::Constant(1.0),
                burst_window_us: 0.0,
                dest: RoleAnywhere {
                    role: CacheFollower,
                    p_remote_dc: 0.25,
                },
                rpc: RpcProfile {
                    request: ln(500.0, 1.1), // invalidations + object fills
                    response: Dist::Constant(100.0),
                    service_us: exp_us(200.0),
                },
                pool: PoolMode::Pooled,
                pool_width: 4,
                phase_locked: false,
            },
            CallPattern {
                name: "cachel.peer_sync",
                bursts_per_sec: 3.0,
                burst_size: Dist::Constant(1.0),
                burst_window_us: 0.0,
                dest: RoleInCluster {
                    role: CacheLeader,
                    lb: LoadBalance::Uniform,
                },
                rpc: RpcProfile {
                    request: ln(300.0, 0.5),
                    response: ln(300.0, 0.5),
                    service_us: exp_us(100.0),
                },
                pool: PoolMode::Pooled,
                pool_width: 8,
                phase_locked: false,
            },
            CallPattern {
                name: "cachel.multifeed",
                bursts_per_sec: 3.0,
                burst_size: Dist::Constant(1.0),
                burst_window_us: 0.0,
                dest: RoleAnywhere {
                    role: Multifeed,
                    p_remote_dc: 0.1,
                },
                rpc: RpcProfile {
                    request: ln(550.0, 0.5),
                    response: ln(500.0, 0.6),
                    service_us: exp_us(500.0),
                },
                pool: PoolMode::Ephemeral,
                pool_width: 1,
                phase_locked: false,
            },
            CallPattern {
                name: "cachel.db_readthrough",
                bursts_per_sec: 5.0,
                burst_size: Dist::Constant(1.0),
                burst_window_us: 0.0,
                dest: RoleAnywhere {
                    role: Db,
                    p_remote_dc: 0.35,
                },
                rpc: RpcProfile {
                    request: ln(350.0, 0.5),  // SQL query
                    response: ln(800.0, 1.0), // rows
                    service_us: exp_us(3_000.0),
                },
                pool: PoolMode::Ephemeral,
                pool_width: 1,
                phase_locked: false,
            },
        ];

        // ------------------------------------------------------------
        // Hadoop (Table 2: 99.8 % Hadoop-bound; §5.1: 70 % of flows
        // < 10 kB and < 10 s, median < 1 kB, < 5 % > 1 MB; §6.1: bimodal
        // ACK/MTU packets; §6.2: no pooling, ≈500 flows/s; §4.2: 75.7 %
        // rack-local when busy with Zipf-skewed inter-rack spread).
        // ------------------------------------------------------------
        let hadoop = vec![
            CallPattern {
                name: "hadoop.transfer",
                bursts_per_sec: 30.0, // per host while busy
                burst_size: Dist::Constant(1.0),
                burst_window_us: 0.0,
                dest: HadoopPlacement {
                    p_rack: 0.757,
                    rack_skew: 1.1,
                },
                rpc: RpcProfile {
                    // 72 % tiny task/metadata exchanges, 23 % block-piece
                    // moves, 5 % heavy shuffle/output segments (> 1 MB).
                    request: Dist::Mixture {
                        components: vec![
                            ln(480.0, 1.1),
                            ln(15_000.0, 1.2),
                            Dist::ParetoBounded {
                                alpha: 1.05,
                                lo: 1.0e6,
                                hi: 1.6e7,
                            },
                        ],
                        weights: vec![0.72, 0.23, 0.05],
                    },
                    response: Dist::Constant(0.0), // one-way push + ACKs
                    service_us: exp_us(100.0),
                },
                pool: PoolMode::Ephemeral,
                pool_width: 1,
                phase_locked: true,
            },
            CallPattern {
                name: "hadoop.control",
                bursts_per_sec: 15.0, // heartbeats/task control, phase-independent
                burst_size: Dist::Constant(1.0),
                burst_window_us: 0.0,
                dest: HadoopPlacement {
                    p_rack: 0.10,
                    rack_skew: 0.0,
                },
                rpc: RpcProfile {
                    request: ln(300.0, 0.5),
                    response: ln(400.0, 0.5),
                    service_us: exp_us(200.0),
                },
                pool: PoolMode::Ephemeral,
                pool_width: 1,
                phase_locked: false,
            },
        ];

        // ------------------------------------------------------------
        // Multifeed: aggregators fan out to leaf/storage services (Misc)
        // and sync with peers.
        // ------------------------------------------------------------
        let multifeed = vec![
            CallPattern {
                name: "mf.leaf_read",
                bursts_per_sec: 10.0,
                burst_size: Dist::Constant(1.0),
                burst_window_us: 0.0,
                dest: RoleAnywhere {
                    role: Misc,
                    p_remote_dc: 0.1,
                },
                rpc: RpcProfile {
                    request: ln(500.0, 0.6),
                    response: ln(2500.0, 0.9),
                    service_us: exp_us(800.0),
                },
                pool: PoolMode::Pooled,
                pool_width: 4,
                phase_locked: false,
            },
            CallPattern {
                name: "mf.peer",
                bursts_per_sec: 2.0,
                burst_size: Dist::Constant(1.0),
                burst_window_us: 0.0,
                dest: RoleAnywhere {
                    role: Multifeed,
                    p_remote_dc: 0.2,
                },
                rpc: RpcProfile {
                    request: ln(900.0, 0.7),
                    response: ln(900.0, 0.7),
                    service_us: exp_us(400.0),
                },
                pool: PoolMode::Pooled,
                pool_width: 4,
                phase_locked: false,
            },
        ];

        // ------------------------------------------------------------
        // Database (Table 3 "DB" column: 0 rack / 30.7 cluster / 34.5 DC /
        // 34.8 inter-DC — "the most uniform, divided almost evenly").
        // ------------------------------------------------------------
        let db = vec![
            CallPattern {
                name: "db.intra_cluster_repl",
                bursts_per_sec: 2.0,
                burst_size: Dist::Constant(1.0),
                burst_window_us: 0.0,
                dest: RoleInCluster {
                    role: Db,
                    lb: LoadBalance::Uniform,
                },
                rpc: RpcProfile {
                    request: ln(3000.0, 1.0), // binlog batches
                    response: Dist::Constant(100.0),
                    service_us: exp_us(1_000.0),
                },
                pool: PoolMode::Pooled,
                pool_width: 4,
                phase_locked: false,
            },
            CallPattern {
                name: "db.intra_dc",
                bursts_per_sec: 2.2,
                burst_size: Dist::Constant(1.0),
                burst_window_us: 0.0,
                dest: RoleInDatacenter { role: Misc },
                rpc: RpcProfile {
                    request: ln(2800.0, 1.0),
                    response: ln(400.0, 0.6),
                    service_us: exp_us(1_000.0),
                },
                pool: PoolMode::Pooled,
                pool_width: 4,
                phase_locked: false,
            },
            CallPattern {
                name: "db.geo_repl",
                bursts_per_sec: 2.2,
                burst_size: Dist::Constant(1.0),
                burst_window_us: 0.0,
                dest: RoleAnywhere {
                    role: Db,
                    p_remote_dc: 1.0,
                },
                rpc: RpcProfile {
                    request: ln(3000.0, 1.0),
                    response: Dist::Constant(100.0),
                    service_us: exp_us(1_000.0),
                },
                pool: PoolMode::Pooled,
                pool_width: 4,
                phase_locked: false,
            },
        ];

        // ------------------------------------------------------------
        // Misc services (Table 3 "Svc" column: 12.1 rack / 56.3 cluster /
        // 15.7 DC / 15.9 inter-DC — "a mixed traffic pattern ... between
        // these extreme points").
        // ------------------------------------------------------------
        let misc = vec![
            CallPattern {
                name: "misc.rack_peer",
                bursts_per_sec: 2.0,
                burst_size: Dist::Constant(1.0),
                burst_window_us: 0.0,
                dest: HadoopPlacement {
                    p_rack: 1.0,
                    rack_skew: 0.0,
                }, // same-rack shard pair
                rpc: RpcProfile {
                    request: ln(900.0, 0.8),
                    response: ln(900.0, 0.8),
                    service_us: exp_us(300.0),
                },
                pool: PoolMode::Pooled,
                pool_width: 4,
                phase_locked: false,
            },
            CallPattern {
                name: "misc.cluster",
                bursts_per_sec: 5.0,
                burst_size: Dist::Constant(1.0),
                burst_window_us: 0.0,
                dest: RoleInCluster {
                    role: Misc,
                    lb: LoadBalance::Uniform,
                },
                rpc: RpcProfile {
                    request: ln(800.0, 0.8),
                    response: ln(1500.0, 1.0),
                    service_us: exp_us(500.0),
                },
                pool: PoolMode::Pooled,
                pool_width: 4,
                phase_locked: false,
            },
            CallPattern {
                name: "misc.wide",
                bursts_per_sec: 3.0,
                burst_size: Dist::Constant(1.0),
                burst_window_us: 0.0,
                dest: RoleAnywhere {
                    role: Misc,
                    p_remote_dc: 0.5,
                },
                rpc: RpcProfile {
                    request: ln(800.0, 0.8),
                    response: ln(1200.0, 1.0),
                    service_us: exp_us(500.0),
                },
                pool: PoolMode::Pooled,
                pool_width: 4,
                phase_locked: false,
            },
        ];

        ServiceProfiles {
            web,
            cache_follower,
            cache_leader,
            hadoop,
            multifeed,
            slb,
            db,
            misc,
            hadoop_phases: HadoopPhases {
                busy_secs: ln(15.0, 0.6),
                quiet_secs: ln(20.0, 0.8),
                quiet_rate_factor: 0.02,
                p_start_busy: 0.5,
            },
            hot_objects: HotObjectConfig::default(),
            rate_scale: 1.0,
            diurnal: DiurnalPattern::flat(),
            ephemeral_close_margin: SimDuration::from_millis(15),
            ephemeral_linger_ms: ln(400.0, 1.3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonet_util::{Distribution, Rng};

    #[test]
    fn default_profiles_validate() {
        ServiceProfiles::default()
            .validate()
            .expect("defaults valid");
    }

    #[test]
    fn every_role_has_patterns() {
        let p = ServiceProfiles::default();
        for role in HostRole::ALL {
            assert!(!p.for_role(role).is_empty(), "{role} has no patterns");
        }
    }

    #[test]
    fn hadoop_flow_sizes_match_section_5_1() {
        // §5.1: 70 % of flows send < 10 kB; median < 1 kB; < 5 % > 1 MB.
        let p = ServiceProfiles::default();
        let transfer = &p.hadoop[0].rpc.request;
        let mut rng = Rng::new(42);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| transfer.sample(&mut rng)).collect();
        let under_10k = samples.iter().filter(|&&v| v < 10_000.0).count() as f64 / n as f64;
        let over_1m = samples.iter().filter(|&&v| v > 1_000_000.0).count() as f64 / n as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median = sorted[n / 2];
        assert!((0.60..=0.82).contains(&under_10k), "P(<10kB) = {under_10k}");
        assert!(over_1m <= 0.07, "P(>1MB) = {over_1m}");
        assert!(median < 1_000.0, "median = {median}");
    }

    #[test]
    fn web_outbound_mix_tracks_table_2() {
        // Analytic expectation of outbound bytes per second per category
        // (payload only; framing shifts things slightly in the full sim).
        let p = ServiceProfiles::default();
        let mean = |d: &Dist| match d {
            Dist::LogNormal { median, sigma } => median * (sigma * sigma / 2.0).exp(),
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            _ => panic!("unexpected dist in web profile"),
        };
        let rate_of = |c: &CallPattern| c.bursts_per_sec * mean(&c.burst_size);
        let bytes: Vec<f64> = p
            .web
            .iter()
            .map(|c| rate_of(c) * mean(&c.rpc.request))
            .collect();
        let cache = bytes[0] + bytes[1];
        let mf = bytes[2];
        let misc = bytes[3];
        // Page responses to SLB: driven by slb.user_request at the web
        // host's page rate (2/s) with the SLB pattern's response size.
        let slb = 2.0 * mean(&p.slb[0].rpc.response);
        let total = cache + mf + misc + slb;
        // Table 2 Web row: Cache 63.1, MF 15.2, SLB 5.6, Rest 16.1.
        assert!(
            (cache / total - 0.631).abs() < 0.08,
            "cache share {}",
            cache / total
        );
        assert!((mf / total - 0.152).abs() < 0.05, "mf share {}", mf / total);
        assert!(
            (slb / total - 0.056).abs() < 0.04,
            "slb share {}",
            slb / total
        );
        assert!(
            (misc / total - 0.161).abs() < 0.06,
            "misc share {}",
            misc / total
        );
    }

    #[test]
    fn validation_rejects_bad_profiles() {
        let mut p = ServiceProfiles::default();
        p.rate_scale = 0.0;
        assert!(p.validate().is_err());
        let mut p = ServiceProfiles::default();
        p.web[0].bursts_per_sec = -1.0;
        assert!(p.validate().is_err());
        let mut p = ServiceProfiles::default();
        p.hadoop_phases.p_start_busy = 2.0;
        assert!(p.validate().is_err());
    }
}
