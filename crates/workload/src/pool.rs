//! Connection pooling, mcrouter-style (§5.1 \[29\]).
//!
//! Pooled patterns reuse one long-lived connection per
//! (source, destination, service-port) triple; the pool opens lazily on
//! first use. This is what produces the paper's long-lived, internally
//! bursty flows and decouples user-request arrivals from SYN arrivals
//! (§6.2).

use sonet_netsim::{ConnId, PacketTap, SimError, Simulator};
use sonet_topology::HostId;
use sonet_util::{Rng, SimTime};
use std::collections::HashMap;

/// Lazy pool of long-lived connections, `width` per (src, dst, port)
/// triple.
///
/// Real pools hold several parallel connections per destination (worker
/// processes, pipelining limits); requests pick one at random. This is
/// what splits a host pair's volume across many 5-tuples — the spread of
/// Fig 6b that collapses under host aggregation in Fig 9 — and drives the
/// 100s-to-1000s concurrent connections of §6.4.
#[derive(Debug, Clone, Default)]
pub struct ConnPool {
    conns: HashMap<(HostId, HostId, u16), Vec<ConnId>>,
    total: usize,
}

/// One pooled 5-tuple family in a checkpoint: the `(src, dst, port)` key
/// and its live connection handles, in open order.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PoolEntry {
    /// Pool source host.
    pub src: HostId,
    /// Pool destination host.
    pub dst: HostId,
    /// Destination service port.
    pub port: u16,
    /// Live connections of this family.
    pub conns: Vec<ConnId>,
}

impl ConnPool {
    /// Empty pool.
    pub fn new() -> ConnPool {
        ConnPool::default()
    }

    /// Returns a pooled connection for `(src, dst, port)`, opening the
    /// single member on first use (width-1 pool).
    pub fn get_or_open<T: PacketTap>(
        &mut self,
        sim: &mut Simulator<T>,
        at: SimTime,
        src: HostId,
        dst: HostId,
        port: u16,
    ) -> Result<ConnId, SimError> {
        let mut rng = Rng::new(0); // width 1 → rng unused
        self.get_one_of(sim, at, src, dst, port, 1, &mut rng)
    }

    /// Returns one of up to `width` pooled connections for
    /// `(src, dst, port)`, opening members lazily and picking uniformly
    /// once the pool is warm.
    #[allow(clippy::too_many_arguments)]
    pub fn get_one_of<T: PacketTap>(
        &mut self,
        sim: &mut Simulator<T>,
        at: SimTime,
        src: HostId,
        dst: HostId,
        port: u16,
        width: u32,
        rng: &mut Rng,
    ) -> Result<ConnId, SimError> {
        let width = width.max(1) as usize;
        let entry = self.conns.entry((src, dst, port)).or_default();
        if entry.len() < width {
            let c = sim.open_connection(at, src, dst, port)?;
            entry.push(c);
            self.total += 1;
            return Ok(c);
        }
        Ok(entry[rng.below(entry.len() as u64) as usize])
    }

    /// Drops a connection the engine closed under it (e.g. aborted after
    /// a fault made its server unreachable), so the next call opens a
    /// replacement instead of retrying a dead 5-tuple forever.
    pub fn evict(&mut self, src: HostId, dst: HostId, port: u16, conn: ConnId) {
        if let Some(entry) = self.conns.get_mut(&(src, dst, port)) {
            if let Some(pos) = entry.iter().position(|&c| c == conn) {
                entry.remove(pos);
                self.total -= 1;
            }
        }
    }

    /// Flattens the pool into key-sorted entries for checkpointing: the
    /// serialized form is byte-stable regardless of hash-map iteration
    /// order.
    pub fn snapshot(&self) -> Vec<PoolEntry> {
        let mut out: Vec<PoolEntry> = self
            .conns
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(&(src, dst, port), conns)| PoolEntry {
                src,
                dst,
                port,
                conns: conns.clone(),
            })
            .collect();
        out.sort_by_key(|e| (e.src, e.dst, e.port));
        out
    }

    /// Rebuilds a pool from a [`ConnPool::snapshot`].
    pub fn restore(entries: Vec<PoolEntry>) -> ConnPool {
        let mut pool = ConnPool::new();
        for e in entries {
            pool.total += e.conns.len();
            pool.conns.insert((e.src, e.dst, e.port), e.conns);
        }
        pool
    }

    /// Number of live pooled connections.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True if no connections were opened yet.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonet_netsim::{NullTap, SimConfig};
    use sonet_topology::{ClusterSpec, Topology, TopologySpec};
    use std::sync::Arc;

    #[test]
    fn pool_reuses_connections() {
        let topo = Arc::new(
            Topology::build(TopologySpec::single_dc(vec![ClusterSpec::frontend(4, 4)]))
                .expect("valid"),
        );
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
        let mut pool = ConnPool::new();
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let c1 = pool
            .get_or_open(&mut sim, SimTime::ZERO, a, b, 80)
            .expect("open");
        let c2 = pool
            .get_or_open(&mut sim, SimTime::ZERO, a, b, 80)
            .expect("reuse");
        assert_eq!(c1, c2);
        assert_eq!(pool.len(), 1);
        // Different port → different connection.
        let c3 = pool
            .get_or_open(&mut sim, SimTime::ZERO, a, b, 443)
            .expect("open");
        assert_ne!(c1, c3);
        // Reverse direction → different connection.
        let c4 = pool
            .get_or_open(&mut sim, SimTime::ZERO, b, a, 80)
            .expect("open");
        assert_ne!(c1, c4);
        assert_eq!(pool.len(), 3);
        assert!(!pool.is_empty());
    }

    #[test]
    fn wide_pools_open_up_to_width_then_reuse() {
        let topo = Arc::new(
            Topology::build(TopologySpec::single_dc(vec![ClusterSpec::frontend(4, 4)]))
                .expect("valid"),
        );
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
        let mut pool = ConnPool::new();
        let mut rng = sonet_util::Rng::new(3);
        let a = topo.racks()[0].hosts[0];
        let b = topo.racks()[1].hosts[0];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let c = pool
                .get_one_of(&mut sim, SimTime::ZERO, a, b, 80, 4, &mut rng)
                .expect("open");
            seen.insert(c);
        }
        assert_eq!(seen.len(), 4, "pool should stabilize at its width");
        assert_eq!(pool.len(), 4);
    }
}
