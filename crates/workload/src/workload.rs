//! The packet-tier workload driver.
//!
//! [`Workload`] owns one agent per active host. Each agent runs the
//! [`CallPattern`]s of its role as independent Poisson burst processes,
//! selecting destinations per pattern policy, and issues
//! `open_connection` / `send_message` / `close_connection` calls against
//! the simulator. Generation is windowed: call [`Workload::generate`] up
//! to a horizon, then `Simulator::run_until` the same horizon, and repeat —
//! memory stays bounded no matter how long the trace.

use crate::pool::{ConnPool, PoolEntry};
use crate::profile::{ports, CallPattern, DestSelector, LoadBalance, PoolMode, ServiceProfiles};
use sonet_netsim::{PacketTap, SimError, Simulator};
use sonet_topology::{ClusterId, DatacenterId, HostId, HostRole, Topology};
use sonet_util::{Distribution, Rng, SimDuration, SimTime};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Errors from workload construction.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// Profile validation failed.
    BadProfiles(String),
    /// No hosts were selected for generation.
    NothingActive,
    /// A checkpoint does not match the workload it is being restored into.
    BadCheckpoint(String),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::BadProfiles(e) => write!(f, "invalid profiles: {e}"),
            WorkloadError::NothingActive => write!(f, "no active hosts in workload"),
            WorkloadError::BadCheckpoint(e) => write!(f, "checkpoint mismatch: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Server port for a destination role.
pub fn port_for(role: HostRole) -> u16 {
    match role {
        HostRole::Web => ports::WEB,
        HostRole::CacheFollower | HostRole::CacheLeader => ports::CACHE,
        HostRole::Multifeed => ports::MULTIFEED,
        HostRole::Slb => ports::SLB,
        HostRole::Db => ports::DB,
        HostRole::Hadoop => ports::HADOOP,
        HostRole::Misc => ports::MISC,
    }
}

struct PatternState {
    next_burst: SimTime,
    /// Static per-agent rate multiplier (e.g. SLB auto-scaling).
    rate_mult: f64,
}

struct PhaseState {
    busy: bool,
    until: SimTime,
}

struct Agent {
    host: HostId,
    role: HostRole,
    rng: Rng,
    patterns: Vec<PatternState>,
    phase: Option<PhaseState>,
    /// Per-agent preference order over the cluster's other racks (gives
    /// each Hadoop server its own hot racks, §4.2).
    rack_order: Vec<u32>,
}

/// Packet-tier traffic generator. See the module docs for the loop shape.
pub struct Workload {
    topo: Arc<Topology>,
    profiles: Arc<ServiceProfiles>,
    pool: ConnPool,
    agents: Vec<Agent>,
    generated_until: SimTime,
    /// Hosts of a role inside each datacenter.
    dc_role_hosts: HashMap<(DatacenterId, HostRole), Vec<HostId>>,
    /// Hosts of a role outside each datacenter.
    other_dc_role_hosts: HashMap<(DatacenterId, HostRole), Vec<HostId>>,
    /// Cumulative Zipf weights cache keyed by (count, skew-milli).
    zipf_cache: HashMap<(u32, u32), Vec<f64>>,
    /// Calls skipped because no destination of the required role exists.
    skipped_calls: u64,
    /// Total calls issued.
    issued_calls: u64,
    /// Pooled connections replaced after the engine aborted them (faults).
    reopened_conns: u64,
}

impl Workload {
    /// Builds a workload with agents on every host of `topo`.
    pub fn new(
        topo: Arc<Topology>,
        profiles: ServiceProfiles,
        seed: u64,
    ) -> Result<Workload, WorkloadError> {
        let all: Vec<ClusterId> = (0..topo.clusters().len())
            .map(|i| ClusterId(i as u32))
            .collect();
        Workload::with_clusters(topo, profiles, seed, &all)
    }

    /// Builds a workload with agents only on hosts of `active` clusters
    /// (the rest of the plant stays silent — useful to scope packet-tier
    /// experiments to the monitored neighbourhood).
    pub fn with_clusters(
        topo: Arc<Topology>,
        profiles: ServiceProfiles,
        seed: u64,
        active: &[ClusterId],
    ) -> Result<Workload, WorkloadError> {
        profiles.validate().map_err(WorkloadError::BadProfiles)?;
        let root = Rng::new(seed);

        let mut dc_role_hosts: HashMap<(DatacenterId, HostRole), Vec<HostId>> = HashMap::new();
        for (i, h) in topo.hosts().iter().enumerate() {
            dc_role_hosts
                .entry((h.datacenter, h.role))
                .or_default()
                .push(HostId(i as u32));
        }
        let mut other_dc_role_hosts: HashMap<(DatacenterId, HostRole), Vec<HostId>> =
            HashMap::new();
        for dc_idx in 0..topo.datacenters().len() {
            let dc = DatacenterId(dc_idx as u32);
            for role in HostRole::ALL {
                let mut v = Vec::new();
                for (&(d, r), hosts) in &dc_role_hosts {
                    if d != dc && r == role {
                        v.extend_from_slice(hosts);
                    }
                }
                v.sort_unstable();
                other_dc_role_hosts.insert((dc, role), v);
            }
        }

        let mut agents = Vec::new();
        for &cid in active {
            let cluster = topo.cluster(cid);
            // SLB auto-scaling: one page served per SLB user request.
            let n_web = topo.hosts_with_role_in_cluster(cid, HostRole::Web).len();
            let n_slb = topo.hosts_with_role_in_cluster(cid, HostRole::Slb).len();
            for &rid in &cluster.racks {
                for &hid in &topo.rack(rid).hosts {
                    let role = topo.host(hid).role;
                    let mut rng = root.fork_idx("agent", hid.0 as u64);
                    let pats = profiles.for_role(role);
                    let patterns = pats
                        .iter()
                        .map(|p| {
                            let rate_mult = if role == HostRole::Slb && n_slb > 0 {
                                // Match aggregate page-request rate to the
                                // web tier's page rate.
                                let web_rate = profiles
                                    .web
                                    .first()
                                    .map(|w| w.bursts_per_sec)
                                    .unwrap_or(p.bursts_per_sec);
                                (n_web as f64 * web_rate)
                                    / (n_slb as f64 * p.bursts_per_sec.max(1e-12))
                            } else {
                                1.0
                            };
                            let mut st = PatternState {
                                next_burst: SimTime::ZERO,
                                rate_mult,
                            };
                            // Stagger the first burst.
                            let rate = effective_rate(&profiles, p, &st, SimTime::ZERO, 1.0);
                            st.next_burst = if rate > 0.0 {
                                SimTime::from_secs_f64_saturating(rng.f64() / rate)
                            } else {
                                SimTime::MAX
                            };
                            st
                        })
                        .collect();
                    let phase = (role == HostRole::Hadoop).then(|| {
                        let busy = rng.chance(profiles.hadoop_phases.p_start_busy);
                        let dur = if busy {
                            profiles.hadoop_phases.busy_secs.sample(&mut rng)
                        } else {
                            profiles.hadoop_phases.quiet_secs.sample(&mut rng)
                        };
                        PhaseState {
                            busy,
                            until: SimTime::from_secs_f64_saturating(dur.max(0.1)),
                        }
                    });
                    // Per-agent shuffled order over the cluster's racks.
                    let mut rack_order: Vec<u32> = cluster
                        .racks
                        .iter()
                        .map(|r| r.0)
                        .filter(|&r| r != rid.0)
                        .collect();
                    rng.shuffle(&mut rack_order);
                    agents.push(Agent {
                        host: hid,
                        role,
                        rng,
                        patterns,
                        phase,
                        rack_order,
                    });
                }
            }
        }
        if agents.is_empty() {
            return Err(WorkloadError::NothingActive);
        }
        Ok(Workload {
            topo,
            profiles: Arc::new(profiles),
            pool: ConnPool::new(),
            agents,
            generated_until: SimTime::ZERO,
            dc_role_hosts,
            other_dc_role_hosts,
            zipf_cache: HashMap::new(),
            skipped_calls: 0,
            issued_calls: 0,
            reopened_conns: 0,
        })
    }

    /// Total RPC calls issued so far.
    pub fn issued_calls(&self) -> u64 {
        self.issued_calls
    }

    /// Calls skipped for lack of any feasible destination.
    pub fn skipped_calls(&self) -> u64 {
        self.skipped_calls
    }

    /// Pooled connections replaced after the engine aborted them (only
    /// nonzero when faults are injected).
    pub fn reopened_conns(&self) -> u64 {
        self.reopened_conns
    }

    /// Live pooled connections.
    pub fn pooled_connections(&self) -> usize {
        self.pool.len()
    }

    /// A deterministic host of `role` to attach a port mirror to (the
    /// first host of that role among active agents).
    pub fn monitored_host(&self, role: HostRole) -> Option<HostId> {
        self.agents.iter().find(|a| a.role == role).map(|a| a.host)
    }

    /// Forces `host`'s Hadoop phase machine to start in a busy period of
    /// at least `for_secs` seconds. The paper's Hadoop trace deliberately
    /// covers "a relatively busy period" (§4.2/§5.1); captures call this
    /// for the monitored node so short traces don't land in a quiet phase.
    ///
    /// No-op for hosts without a phase machine (non-Hadoop roles).
    pub fn ensure_busy_start(&mut self, host: HostId, for_secs: f64) {
        if let Some(agent) = self.agents.iter_mut().find(|a| a.host == host) {
            if let Some(phase) = agent.phase.as_mut() {
                phase.busy = true;
                let until = SimTime::from_secs_f64_saturating(for_secs.max(0.1));
                phase.until = phase.until.max(until);
            }
        }
    }

    /// Generates all calls with arrival times in `[generated_until, until)`
    /// and schedules them on `sim`. Call before `sim.run_until(until)`.
    pub fn generate<T: PacketTap>(
        &mut self,
        sim: &mut Simulator<T>,
        until: SimTime,
    ) -> Result<(), SimError> {
        let from = self.generated_until;
        debug_assert!(until >= from);
        // Take fields apart to satisfy the borrow checker: agents are
        // mutated while profile data is read.
        let profiles = Arc::clone(&self.profiles);
        // Flight recorder: per-role opened/aborted deltas, accumulated
        // locally (roles are few, linear scan) and published once per
        // window. Write-only side channel — never read back.
        let obs_on = sonet_util::obs::on();
        let mut role_deltas: Vec<(HostRole, u64, u64)> = Vec::new();
        for ai in 0..self.agents.len() {
            self.advance_phase(ai, until);
            let role = self.agents[ai].role;
            let (issued0, reopened0) = (self.issued_calls, self.reopened_conns);
            for (pi, pattern) in profiles.for_role(role).iter().enumerate() {
                self.run_pattern(sim, ai, pi, pattern, from, until)?;
            }
            if obs_on {
                let opened = self.issued_calls - issued0;
                let aborted = self.reopened_conns - reopened0;
                if opened > 0 || aborted > 0 {
                    match role_deltas.iter_mut().find(|(r, _, _)| *r == role) {
                        Some(d) => {
                            d.1 += opened;
                            d.2 += aborted;
                        }
                        None => role_deltas.push((role, opened, aborted)),
                    }
                }
            }
        }
        if obs_on {
            self.publish_window_metrics(&role_deltas);
        }
        self.generated_until = until;
        Ok(())
    }

    /// Publishes the per-window workload metrics: cumulative call/pool
    /// gauges plus per-role flows opened/aborted counters.
    fn publish_window_metrics(&self, role_deltas: &[(HostRole, u64, u64)]) {
        use sonet_util::obs;
        obs::gauge_set!("workload.issued_calls", self.issued_calls);
        obs::gauge_set!("workload.skipped_calls", self.skipped_calls);
        obs::gauge_set!("workload.pool_evictions", self.reopened_conns);
        obs::gauge_set!("workload.pooled_connections", self.pool.len() as u64);
        let reg = obs::metrics::global();
        for &(role, opened, aborted) in role_deltas {
            if opened > 0 {
                reg.counter(&format!("workload.role.{role:?}.flows_opened"))
                    .add(opened);
            }
            if aborted > 0 {
                reg.counter(&format!("workload.role.{role:?}.flows_aborted"))
                    .add(aborted);
            }
        }
    }

    fn advance_phase(&mut self, ai: usize, until: SimTime) {
        let phases = self.profiles.hadoop_phases.clone();
        let agent = &mut self.agents[ai];
        let Some(phase) = agent.phase.as_mut() else {
            return;
        };
        while phase.until < until {
            phase.busy = !phase.busy;
            let dur = if phase.busy {
                phases.busy_secs.sample(&mut agent.rng)
            } else {
                phases.quiet_secs.sample(&mut agent.rng)
            };
            phase.until += SimDuration::from_secs_f64(dur.max(0.1));
        }
    }

    fn run_pattern<T: PacketTap>(
        &mut self,
        sim: &mut Simulator<T>,
        ai: usize,
        pi: usize,
        pattern: &CallPattern,
        from: SimTime,
        until: SimTime,
    ) -> Result<(), SimError> {
        loop {
            let next = self.agents[ai].patterns[pi].next_burst;
            if next >= until {
                break;
            }
            if next >= from {
                let burst_at = next.max(sim.now());
                let n = {
                    let agent = &mut self.agents[ai];
                    pattern.burst_size.sample(&mut agent.rng).round().max(1.0) as u32
                };
                for _ in 0..n {
                    let offset_us = {
                        let agent = &mut self.agents[ai];
                        if pattern.burst_window_us > 0.0 {
                            agent.rng.range_f64(0.0, pattern.burst_window_us)
                        } else {
                            0.0
                        }
                    };
                    let call_at = burst_at + SimDuration::from_nanos((offset_us * 1_000.0) as u64);
                    self.issue_call(sim, ai, pattern, call_at)?;
                }
            }
            // Draw the next inter-burst gap at the current rate.
            let phase_factor = self.phase_factor(ai, pattern);
            let agent = &mut self.agents[ai];
            let st = &agent.patterns[pi];
            let rate = effective_rate(&self.profiles, pattern, st, next, phase_factor);
            let gap_s = if rate > 0.0 {
                -agent.rng.f64_open().ln() / rate
            } else {
                // Dormant (e.g. deep quiet phase): re-check at the horizon.
                agent.patterns[pi].next_burst = until;
                continue;
            };
            agent.patterns[pi].next_burst = next + SimDuration::from_secs_f64(gap_s);
        }
        Ok(())
    }

    fn phase_factor(&self, ai: usize, pattern: &CallPattern) -> f64 {
        if !pattern.phase_locked {
            return 1.0;
        }
        match &self.agents[ai].phase {
            Some(p) if !p.busy => self.profiles.hadoop_phases.quiet_rate_factor,
            _ => 1.0,
        }
    }

    fn issue_call<T: PacketTap>(
        &mut self,
        sim: &mut Simulator<T>,
        ai: usize,
        pattern: &CallPattern,
        at: SimTime,
    ) -> Result<(), SimError> {
        let src = self.agents[ai].host;
        let dst = match self.hot_object_dest(ai, pattern, at) {
            Some(hot) => hot,
            None => match self.pick_dest(ai, &pattern.dest) {
                Some(d) => d,
                None => {
                    self.skipped_calls += 1;
                    return Ok(());
                }
            },
        };
        let (req, resp, service_us) = {
            let agent = &mut self.agents[ai];
            (
                pattern.rpc.request.sample(&mut agent.rng).max(1.0) as u64,
                pattern.rpc.response.sample(&mut agent.rng).max(0.0) as u64,
                pattern.rpc.service_us.sample(&mut agent.rng).max(0.0),
            )
        };
        let service = SimDuration::from_nanos((service_us * 1_000.0) as u64);
        let port = port_for(self.topo.host(dst).role);
        let at = at.max(sim.now());
        match pattern.pool {
            PoolMode::Pooled => {
                // The engine may abort pooled connections under us (a
                // fault made their server unreachable, or the handshake
                // gave up) — and may already have freed the handle
                // (`NoSuchConn`). Under a sustained outage several
                // members of the same pool die together, so one retry is
                // not enough: evict each dead 5-tuple we draw and retry
                // until the pool hands out a live (or freshly opened)
                // connection — degraded service, not a wedged workload.
                // Bounded: every retry evicts one member, and once the
                // pool is below width it opens a fresh connection.
                let mut attempts = 0u32;
                loop {
                    let conn = {
                        let agent = &mut self.agents[ai];
                        self.pool.get_one_of(
                            sim,
                            at,
                            src,
                            dst,
                            port,
                            pattern.pool_width,
                            &mut agent.rng,
                        )?
                    };
                    match sim.send_message(conn, at, req, resp, service) {
                        Ok(()) => break,
                        Err(SimError::ConnClosed(_)) | Err(SimError::NoSuchConn(_))
                            if attempts <= pattern.pool_width =>
                        {
                            self.pool.evict(src, dst, port, conn);
                            self.reopened_conns += 1;
                            attempts += 1;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            PoolMode::Ephemeral => {
                let conn = sim.open_connection(at, src, dst, port)?;
                sim.send_message(conn, at, req, resp, service)?;
                // Close after a generous transfer-time estimate plus a
                // heavy-tailed application linger (the spread behind the
                // paper's flow-duration CDFs); generation tags keep any
                // stragglers harmless.
                let linger_ms = {
                    let agent = &mut self.agents[ai];
                    self.profiles
                        .ephemeral_linger_ms
                        .sample(&mut agent.rng)
                        .clamp(1.0, 30_000.0)
                };
                let bytes = req + resp;
                let est = SimDuration::from_secs_f64(bytes as f64 / 1.25e9 * 3.0)
                    + SimDuration::from_nanos((linger_ms * 1e6) as u64)
                    + self.profiles.ephemeral_close_margin;
                sim.close_connection(conn, at + est)?;
            }
        }
        self.issued_calls += 1;
        Ok(())
    }

    /// §5.2 hot-object dynamics: a share of Web→cache gets targets the
    /// current hot object's home follower until mitigation (replication /
    /// web-side caching) spreads the burst again.
    fn hot_object_dest(&mut self, ai: usize, pattern: &CallPattern, at: SimTime) -> Option<HostId> {
        let cfg = &self.profiles.hot_objects;
        if cfg.hot_fraction <= 0.0 {
            return None;
        }
        let DestSelector::RoleInCluster {
            role: HostRole::CacheFollower,
            ..
        } = pattern.dest
        else {
            return None;
        };
        if self.agents[ai].role != HostRole::Web {
            return None;
        }
        let is_hot = {
            let agent = &mut self.agents[ai];
            agent.rng.chance(cfg.hot_fraction)
        };
        if !is_hot {
            return None;
        }
        let rotation = cfg.rotation.as_nanos().max(1);
        let epoch = at.as_nanos() / rotation;
        let into_epoch = at.as_nanos() % rotation;
        if cfg.mitigated && into_epoch > cfg.detect_after.as_nanos() {
            // Replicated: the burst spreads back across all followers.
            return None;
        }
        let cluster = self.topo.host(self.agents[ai].host).cluster;
        let followers = self
            .topo
            .hosts_with_role_in_cluster(cluster, HostRole::CacheFollower);
        if followers.is_empty() {
            return None;
        }
        // Deterministic home follower for this (cluster, epoch).
        let mut h = epoch ^ (cluster.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        Some(followers[(h % followers.len() as u64) as usize])
    }

    fn pick_dest(&mut self, ai: usize, selector: &DestSelector) -> Option<HostId> {
        let src = self.agents[ai].host;
        let src_info = *self.topo.host(src);
        match *selector {
            DestSelector::RoleInCluster { role, lb } => {
                let hosts = self
                    .topo
                    .hosts_with_role_in_cluster(src_info.cluster, role)
                    .to_vec();
                self.pick_from(ai, &hosts, src, lb)
            }
            DestSelector::RoleInDatacenter { role } => {
                let hosts: Vec<HostId> = self
                    .dc_role_hosts
                    .get(&(src_info.datacenter, role))
                    .cloned()
                    .unwrap_or_default();
                // Prefer hosts outside the caller's cluster.
                let outside: Vec<HostId> = hosts
                    .iter()
                    .copied()
                    .filter(|&h| self.topo.host(h).cluster != src_info.cluster && h != src)
                    .collect();
                let agent = &mut self.agents[ai];
                if !outside.is_empty() {
                    return Some(*agent.rng.pick(&outside));
                }
                let _ = agent;
                self.pick_from(ai, &hosts, src, LoadBalance::Uniform)
            }
            DestSelector::RoleAnywhere { role, p_remote_dc } => {
                let go_remote = {
                    let agent = &mut self.agents[ai];
                    agent.rng.chance(p_remote_dc)
                };
                if go_remote {
                    let remote: Vec<HostId> = self
                        .other_dc_role_hosts
                        .get(&(src_info.datacenter, role))
                        .cloned()
                        .unwrap_or_default();
                    if !remote.is_empty() {
                        let agent = &mut self.agents[ai];
                        return Some(*agent.rng.pick(&remote));
                    }
                }
                let local: Vec<HostId> = self
                    .dc_role_hosts
                    .get(&(src_info.datacenter, role))
                    .cloned()
                    .unwrap_or_default();
                if local.is_empty() {
                    // Fall back to any datacenter.
                    let remote = self
                        .other_dc_role_hosts
                        .get(&(src_info.datacenter, role))
                        .cloned()
                        .unwrap_or_default();
                    return self.pick_from(ai, &remote, src, LoadBalance::Uniform);
                }
                self.pick_from(ai, &local, src, LoadBalance::Uniform)
            }
            DestSelector::HadoopPlacement { p_rack, rack_skew } => {
                let rack = self.topo.rack(src_info.rack);
                let rack_peers: Vec<HostId> =
                    rack.hosts.iter().copied().filter(|&h| h != src).collect();
                let go_rack = {
                    let agent = &mut self.agents[ai];
                    agent.rng.chance(p_rack)
                };
                if go_rack && !rack_peers.is_empty() {
                    let agent = &mut self.agents[ai];
                    return Some(*agent.rng.pick(&rack_peers));
                }
                // Another rack of the cluster, Zipf-weighted in this
                // agent's private preference order.
                let order_len = self.agents[ai].rack_order.len();
                if order_len == 0 {
                    if rack_peers.is_empty() {
                        return None;
                    }
                    let agent = &mut self.agents[ai];
                    return Some(*agent.rng.pick(&rack_peers));
                }
                let u = {
                    let agent = &mut self.agents[ai];
                    agent.rng.f64()
                };
                let cum = self.zipf_cumulative(order_len as u32, rack_skew);
                let idx = cum.partition_point(|&c| c < u).min(order_len - 1);
                let rack_id = self.agents[ai].rack_order[idx];
                let hosts = self
                    .topo
                    .rack(sonet_topology::RackId(rack_id))
                    .hosts
                    .clone();
                if hosts.is_empty() {
                    return None;
                }
                let agent = &mut self.agents[ai];
                Some(*agent.rng.pick(&hosts))
            }
        }
    }

    fn pick_from(
        &mut self,
        ai: usize,
        hosts: &[HostId],
        src: HostId,
        lb: LoadBalance,
    ) -> Option<HostId> {
        let candidates: Vec<HostId> = hosts.iter().copied().filter(|&h| h != src).collect();
        if candidates.is_empty() {
            return None;
        }
        match lb {
            LoadBalance::Uniform => {
                let agent = &mut self.agents[ai];
                Some(*agent.rng.pick(&candidates))
            }
            LoadBalance::Zipf { s } => {
                let u = {
                    let agent = &mut self.agents[ai];
                    agent.rng.f64()
                };
                let cum = self.zipf_cumulative(candidates.len() as u32, s);
                let idx = cum.partition_point(|&c| c < u).min(candidates.len() - 1);
                Some(candidates[idx])
            }
        }
    }

    /// Cumulative Zipf weights for `n` items with exponent `s` (cached).
    fn zipf_cumulative(&mut self, n: u32, s: f64) -> &[f64] {
        let key = (n, (s * 1000.0).round() as u32);
        self.zipf_cache.entry(key).or_insert_with(|| {
            let mut w: Vec<f64> = (1..=n).map(|i| 1.0 / (i as f64).powf(s)).collect();
            let total: f64 = w.iter().sum();
            let mut acc = 0.0;
            for v in &mut w {
                acc += *v / total;
                *v = acc;
            }
            w
        })
    }
}

/// Serialized dynamic state of a [`Workload`].
///
/// Static structure — the agent roster, pattern rate multipliers, and
/// per-agent rack preference orders — is a pure function of
/// `(topology, profiles, seed, active clusters)` and is rebuilt by
/// constructing a fresh workload with the same arguments; the checkpoint
/// carries only what generation mutates: each agent's RNG stream, next
/// burst times, and Hadoop phase machine, plus the connection pool and
/// counters.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WorkloadCheckpoint {
    generated_until: SimTime,
    agents: Vec<AgentCheckpoint>,
    pool: Vec<PoolEntry>,
    skipped_calls: u64,
    issued_calls: u64,
    reopened_conns: u64,
}

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct AgentCheckpoint {
    host: HostId,
    rng: Rng,
    next_bursts: Vec<SimTime>,
    phase: Option<PhaseCheckpoint>,
}

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct PhaseCheckpoint {
    busy: bool,
    until: SimTime,
}

impl Workload {
    /// Captures the workload's dynamic state for checkpointing.
    pub fn checkpoint(&self) -> WorkloadCheckpoint {
        WorkloadCheckpoint {
            generated_until: self.generated_until,
            agents: self
                .agents
                .iter()
                .map(|a| AgentCheckpoint {
                    host: a.host,
                    rng: a.rng.clone(),
                    next_bursts: a.patterns.iter().map(|p| p.next_burst).collect(),
                    phase: a.phase.as_ref().map(|p| PhaseCheckpoint {
                        busy: p.busy,
                        until: p.until,
                    }),
                })
                .collect(),
            pool: self.pool.snapshot(),
            skipped_calls: self.skipped_calls,
            issued_calls: self.issued_calls,
            reopened_conns: self.reopened_conns,
        }
    }

    /// Restores dynamic state from a checkpoint taken by an identically
    /// constructed workload (same topology, profiles, seed, and active
    /// clusters). Fails when the agent roster does not line up — the
    /// telltale of a checkpoint replayed against the wrong scenario.
    pub fn restore(&mut self, ckpt: WorkloadCheckpoint) -> Result<(), WorkloadError> {
        if ckpt.agents.len() != self.agents.len() {
            return Err(WorkloadError::BadCheckpoint(format!(
                "checkpoint has {} agents, workload has {}",
                ckpt.agents.len(),
                self.agents.len()
            )));
        }
        for (agent, saved) in self.agents.iter().zip(&ckpt.agents) {
            if agent.host != saved.host {
                return Err(WorkloadError::BadCheckpoint(format!(
                    "agent on {} does not match checkpointed {}",
                    agent.host, saved.host
                )));
            }
            if agent.patterns.len() != saved.next_bursts.len() {
                return Err(WorkloadError::BadCheckpoint(format!(
                    "agent on {} has {} patterns, checkpoint has {}",
                    agent.host,
                    agent.patterns.len(),
                    saved.next_bursts.len()
                )));
            }
            if agent.phase.is_some() != saved.phase.is_some() {
                return Err(WorkloadError::BadCheckpoint(format!(
                    "agent on {} phase machine presence differs",
                    agent.host
                )));
            }
        }
        for (agent, saved) in self.agents.iter_mut().zip(ckpt.agents) {
            agent.rng = saved.rng;
            for (st, next) in agent.patterns.iter_mut().zip(saved.next_bursts) {
                st.next_burst = next;
            }
            agent.phase = saved.phase.map(|p| PhaseState {
                busy: p.busy,
                until: p.until,
            });
        }
        self.pool = ConnPool::restore(ckpt.pool);
        self.generated_until = ckpt.generated_until;
        self.skipped_calls = ckpt.skipped_calls;
        self.issued_calls = ckpt.issued_calls;
        self.reopened_conns = ckpt.reopened_conns;
        Ok(())
    }
}

/// Effective burst rate of a pattern at time `t`.
fn effective_rate(
    profiles: &ServiceProfiles,
    pattern: &CallPattern,
    st: &PatternState,
    t: SimTime,
    phase_factor: f64,
) -> f64 {
    pattern.bursts_per_sec
        * st.rate_mult
        * profiles.rate_scale
        * profiles.diurnal.multiplier(t)
        * phase_factor
}

/// `SimTime::from_secs_f64` that saturates instead of panicking on huge
/// values (used for "first arrival effectively never").
trait FromSecsSaturating {
    fn from_secs_f64_saturating(s: f64) -> SimTime;
}

impl FromSecsSaturating for SimTime {
    fn from_secs_f64_saturating(s: f64) -> SimTime {
        if !s.is_finite() || s > 1e9 {
            SimTime::MAX
        } else {
            SimTime::from_nanos((s * 1e9) as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonet_netsim::{NullTap, SimConfig};
    use sonet_topology::{ClusterSpec, Locality, TopologySpec};

    fn frontend_topo() -> Arc<Topology> {
        Arc::new(
            Topology::build(TopologySpec::single_dc(vec![
                ClusterSpec::frontend(10, 4),
                ClusterSpec::hadoop(4, 4),
                ClusterSpec::cache(2, 4),
                ClusterSpec::database(2, 4),
                ClusterSpec::service(4, 4),
            ]))
            .expect("valid"),
        )
    }

    #[test]
    fn workload_generates_traffic_on_all_roles() {
        let topo = frontend_topo();
        let mut wl =
            Workload::new(Arc::clone(&topo), ServiceProfiles::default(), 1).expect("workload");
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
        let step = SimDuration::from_millis(100);
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            t += step;
            wl.generate(&mut sim, t).expect("generate");
            sim.run_until(t);
        }
        assert!(wl.issued_calls() > 100, "issued {}", wl.issued_calls());
        let (out, _) = sim.finish();
        assert!(out.delivered_packets > 1000);
        assert!(out.completed_requests > 50);
        // With a full topology no pattern should lack destinations.
        assert_eq!(wl.skipped_calls(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = frontend_topo();
        let run = |seed: u64| {
            let mut wl = Workload::new(Arc::clone(&topo), ServiceProfiles::default(), seed)
                .expect("workload");
            let mut sim =
                Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
            wl.generate(&mut sim, SimTime::from_millis(500))
                .expect("generate");
            sim.run_until(SimTime::from_millis(500));
            let (out, _) = sim.finish();
            (wl.issued_calls(), out.delivered_packets)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn web_traffic_is_cluster_local_not_rack_local() {
        // §4.2: web servers talk to cache followers across the cluster;
        // minimal rack-local traffic.
        let topo = frontend_topo();
        let mut wl =
            Workload::new(Arc::clone(&topo), ServiceProfiles::default(), 3).expect("workload");
        let web = wl.monitored_host(HostRole::Web).expect("web host");
        // Count destination localities of calls issued by the web host by
        // snooping pattern destination picks directly.
        let mut rack_local = 0;
        let mut cluster_local = 0;
        let ai = wl
            .agents
            .iter()
            .position(|a| a.host == web)
            .expect("agent exists");
        for _ in 0..500 {
            let sel = DestSelector::RoleInCluster {
                role: HostRole::CacheFollower,
                lb: LoadBalance::Uniform,
            };
            let dst = wl.pick_dest(ai, &sel).expect("dest");
            match topo.locality(web, dst) {
                Locality::IntraRack => rack_local += 1,
                Locality::IntraCluster => cluster_local += 1,
                other => panic!("unexpected locality {other}"),
            }
        }
        assert_eq!(rack_local, 0, "web and cache live in different racks");
        assert_eq!(cluster_local, 500);
    }

    #[test]
    fn hadoop_placement_is_mostly_rack_local() {
        let topo = frontend_topo();
        let mut wl =
            Workload::new(Arc::clone(&topo), ServiceProfiles::default(), 5).expect("workload");
        let h = wl.monitored_host(HostRole::Hadoop).expect("hadoop host");
        let ai = wl.agents.iter().position(|a| a.host == h).expect("agent");
        let sel = DestSelector::HadoopPlacement {
            p_rack: 0.757,
            rack_skew: 1.1,
        };
        let mut rack = 0;
        let n = 2000;
        for _ in 0..n {
            let dst = wl.pick_dest(ai, &sel).expect("dest");
            if topo.locality(h, dst) == Locality::IntraRack {
                rack += 1;
            }
        }
        let frac = rack as f64 / n as f64;
        assert!((frac - 0.757).abs() < 0.05, "rack-local fraction {frac}");
    }

    #[test]
    fn slb_rate_scales_with_web_population() {
        let topo = frontend_topo();
        let wl = Workload::new(Arc::clone(&topo), ServiceProfiles::default(), 9).expect("workload");
        let slb_agent = wl
            .agents
            .iter()
            .find(|a| a.role == HostRole::Slb)
            .expect("slb agent");
        // 7 web racks vs 1 slb rack in a 10-rack frontend → multiplier ≈ 7.
        let mult = slb_agent.patterns[0].rate_mult;
        assert!(mult > 2.0, "slb rate multiplier {mult}");
    }

    #[test]
    fn scoped_workload_leaves_other_clusters_silent() {
        let topo = frontend_topo();
        let hadoop_cluster = topo
            .first_cluster_of_type(sonet_topology::ClusterType::Hadoop)
            .expect("hadoop cluster");
        let mut wl = Workload::with_clusters(
            Arc::clone(&topo),
            ServiceProfiles::default(),
            1,
            &[hadoop_cluster],
        )
        .expect("workload");
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
        wl.generate(&mut sim, SimTime::from_millis(500))
            .expect("generate");
        sim.run_until(SimTime::from_millis(500));
        let (out, _) = sim.finish();
        // No web-host uplink carries traffic.
        for &h in topo.hosts_with_role(HostRole::Web) {
            let up = topo.host_uplink(h);
            assert_eq!(out.link_counters[up.index()].tx_packets, 0);
        }
        // Hadoop uplinks do.
        let total: u64 = topo
            .hosts_with_role(HostRole::Hadoop)
            .iter()
            .map(|&h| out.link_counters[topo.host_uplink(h).index()].tx_packets)
            .sum();
        assert!(total > 0);
    }

    #[test]
    fn hot_objects_concentrate_until_mitigated() {
        use crate::profile::HotObjectConfig;
        use sonet_util::SimDuration as D;
        let topo = frontend_topo();
        let mut profiles = ServiceProfiles::default();
        profiles.hot_objects = HotObjectConfig {
            hot_fraction: 1.0,
            rotation: D::from_secs(100),
            detect_after: D::from_secs(2),
            mitigated: false,
        };
        let mut wl = Workload::new(Arc::clone(&topo), profiles, 21).expect("workload");
        let web = wl.monitored_host(HostRole::Web).expect("web");
        let ai = wl.agents.iter().position(|a| a.host == web).expect("agent");
        let pattern = wl.profiles.web[0].clone();
        // Unmitigated: every pick in the epoch lands on one follower.
        let t = SimTime::from_secs(10);
        let picks: Vec<_> = (0..50)
            .map(|_| wl.hot_object_dest(ai, &pattern, t).expect("hot pick"))
            .collect();
        assert!(
            picks.windows(2).all(|w| w[0] == w[1]),
            "hot picks must concentrate"
        );

        // Mitigated: past the detection delay, picks fall through to
        // normal load balancing (None from the hot path).
        let mut profiles = ServiceProfiles::default();
        profiles.hot_objects = HotObjectConfig {
            hot_fraction: 1.0,
            rotation: D::from_secs(100),
            detect_after: D::from_secs(2),
            mitigated: true,
        };
        let mut wl = Workload::new(Arc::clone(&topo), profiles, 21).expect("workload");
        let ai = wl.agents.iter().position(|a| a.host == web).expect("agent");
        assert!(wl
            .hot_object_dest(ai, &pattern, SimTime::from_secs(1))
            .is_some());
        assert!(wl
            .hot_object_dest(ai, &pattern, SimTime::from_secs(50))
            .is_none());
    }

    #[test]
    fn empty_active_set_is_an_error() {
        let topo = frontend_topo();
        let err =
            match Workload::with_clusters(Arc::clone(&topo), ServiceProfiles::default(), 1, &[]) {
                Ok(_) => panic!("empty active set should fail"),
                Err(e) => e,
            };
        assert_eq!(err, WorkloadError::NothingActive);
    }
}
