//! The literature-baseline workload (the "previously published data"
//! column of Table 1).
//!
//! Implements the traffic the prior studies describe, so benches can print
//! paper-vs-literature contrasts:
//!
//! * **Rack-heavy locality** — "a majority of traffic originated by
//!   servers (80 %) stays within the rack" (Benson et al. \[12\]; similarly
//!   Kandula et al. \[26\], Delimitrou et al. \[17\]).
//! * **On/off arrivals** — "a strong on/off pattern where the packet
//!   inter-arrival follows a log-normal distribution" (Benson et al.
//!   \[13\]).
//! * **Bimodal packet sizes** — packets either approach the MTU or stay
//!   ACK-small \[12\]. Achieved here with full-MTU bulk pushes whose ACK
//!   stream supplies the small mode.
//! * **Few concurrent destinations** — "less than 5" large flows at once
//!   (Alizadeh et al. \[8\]): each host cycles through a small set of
//!   partners, one per ON period.

use serde::{Deserialize, Serialize};
use sonet_netsim::{PacketTap, SimError, Simulator};
use sonet_topology::{ClusterId, HostId, Topology};
use sonet_util::dist::Dist;
use sonet_util::{Distribution, Rng, SimDuration, SimTime};
use std::sync::Arc;

/// Parameters of the baseline generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiteratureConfig {
    /// Probability an ON period's partner is rack-local (paper survey:
    /// 50–80 %; default 0.8).
    pub p_rack_local: f64,
    /// ON-period duration in milliseconds (log-normal per \[13\]).
    pub on_ms: Dist,
    /// OFF-period duration in milliseconds (log-normal per \[13\]).
    pub off_ms: Dist,
    /// Bulk messages per second while ON.
    pub on_rate_per_sec: f64,
    /// Full-MTU segments per bulk message (geometric-ish via log-normal).
    pub segments_per_msg: Dist,
    /// Maximum concurrent partners per host (Alizadeh: < 5).
    pub max_partners: usize,
}

impl Default for LiteratureConfig {
    fn default() -> Self {
        LiteratureConfig {
            p_rack_local: 0.8,
            on_ms: Dist::LogNormal {
                median: 80.0,
                sigma: 0.8,
            },
            off_ms: Dist::LogNormal {
                median: 120.0,
                sigma: 1.0,
            },
            on_rate_per_sec: 120.0,
            segments_per_msg: Dist::LogNormal {
                median: 20.0,
                sigma: 0.9,
            },
            max_partners: 4,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Phase {
    On,
    Off,
}

struct HostState {
    host: HostId,
    rng: Rng,
    phase: Phase,
    phase_until: SimTime,
    partner: Option<HostId>,
    next_msg: SimTime,
    /// Rotating partner set (bounds concurrent destinations).
    partners: Vec<HostId>,
}

/// MapReduce-style baseline generator over one cluster.
pub struct LiteratureWorkload {
    topo: Arc<Topology>,
    cfg: LiteratureConfig,
    hosts: Vec<HostState>,
    generated_until: SimTime,
    issued: u64,
}

impl LiteratureWorkload {
    /// Generates baseline traffic among the hosts of `cluster`.
    pub fn new(
        topo: Arc<Topology>,
        cfg: LiteratureConfig,
        cluster: ClusterId,
        seed: u64,
    ) -> LiteratureWorkload {
        let root = Rng::new(seed).fork("literature");
        let mut hosts = Vec::new();
        for &rid in &topo.cluster(cluster).racks {
            for &hid in &topo.rack(rid).hosts {
                let mut rng = root.fork_idx("host", hid.0 as u64);
                let off = cfg.off_ms.sample(&mut rng).max(1.0);
                hosts.push(HostState {
                    host: hid,
                    rng,
                    phase: Phase::Off,
                    phase_until: SimTime::from_nanos((off * 1e6) as u64),
                    partner: None,
                    next_msg: SimTime::MAX,
                    partners: Vec::new(),
                });
            }
        }
        LiteratureWorkload {
            topo,
            cfg,
            hosts,
            generated_until: SimTime::ZERO,
            issued: 0,
        }
    }

    /// Bulk messages issued so far.
    pub fn issued_messages(&self) -> u64 {
        self.issued
    }

    /// Generates all sends in `[generated_until, until)`.
    pub fn generate<T: PacketTap>(
        &mut self,
        sim: &mut Simulator<T>,
        until: SimTime,
    ) -> Result<(), SimError> {
        let mss = sim.config().mss as f64;
        for i in 0..self.hosts.len() {
            loop {
                let (phase_until, next_msg) = (self.hosts[i].phase_until, self.hosts[i].next_msg);
                let next_event = phase_until.min(next_msg);
                if next_event >= until {
                    break;
                }
                if phase_until <= next_msg {
                    self.flip_phase(i, phase_until);
                } else {
                    self.send_bulk(sim, i, next_msg, mss)?;
                }
            }
        }
        self.generated_until = until;
        Ok(())
    }

    fn flip_phase(&mut self, i: usize, at: SimTime) {
        let cfg = self.cfg.clone();
        // Pick the partner before mutably borrowing the host state.
        let new_partner = {
            let h = &self.hosts[i];
            matches!(h.phase, Phase::Off).then(|| self.pick_partner(i))
        };
        let h = &mut self.hosts[i];
        match h.phase {
            Phase::Off => {
                h.phase = Phase::On;
                let on = cfg.on_ms.sample(&mut h.rng).max(1.0);
                h.phase_until = at + SimDuration::from_nanos((on * 1e6) as u64);
                h.partner = new_partner.flatten();
                let gap = -h.rng.f64_open().ln() / cfg.on_rate_per_sec;
                h.next_msg = at + SimDuration::from_secs_f64(gap);
            }
            Phase::On => {
                h.phase = Phase::Off;
                let off = cfg.off_ms.sample(&mut h.rng).max(1.0);
                h.phase_until = at + SimDuration::from_nanos((off * 1e6) as u64);
                h.partner = None;
                h.next_msg = SimTime::MAX;
            }
        }
    }

    fn pick_partner(&self, i: usize) -> Option<HostId> {
        let h = &self.hosts[i];
        let mut rng = h.rng.clone();
        let src = h.host;
        let info = self.topo.host(src);
        // Reuse an existing partner most of the time once the set is full
        // (bounds concurrency per Alizadeh et al.).
        if h.partners.len() >= self.cfg.max_partners {
            return Some(*rng.pick(&h.partners));
        }
        let rack = self.topo.rack(info.rack);
        let rack_peers: Vec<HostId> = rack.hosts.iter().copied().filter(|&x| x != src).collect();
        if rng.chance(self.cfg.p_rack_local) && !rack_peers.is_empty() {
            return Some(*rng.pick(&rack_peers));
        }
        let cluster = self.topo.cluster(info.cluster);
        let racks: Vec<_> = cluster.racks.iter().filter(|&&r| r != info.rack).collect();
        if racks.is_empty() {
            return rack_peers.first().copied();
        }
        let r = **rng.pick(&racks);
        let hosts = &self.topo.rack(r).hosts;
        Some(*rng.pick(hosts))
    }

    fn send_bulk<T: PacketTap>(
        &mut self,
        sim: &mut Simulator<T>,
        i: usize,
        at: SimTime,
        mss: f64,
    ) -> Result<(), SimError> {
        let cfg = self.cfg.clone();
        let (src, partner, bytes, gap) = {
            let h = &mut self.hosts[i];
            let segs = cfg.segments_per_msg.sample(&mut h.rng).max(1.0).round();
            let bytes = (segs * mss) as u64; // full-MTU bulk → bimodal packets
            let gap = -h.rng.f64_open().ln() / cfg.on_rate_per_sec;
            (h.host, h.partner, bytes, gap)
        };
        if let Some(dst) = partner {
            let at = at.max(sim.now());
            let conn = sim.open_connection(at, src, dst, 50010)?;
            sim.send_message(conn, at, bytes, 0, SimDuration::ZERO)?;
            let est = SimDuration::from_secs_f64(bytes as f64 / 1.25e9 * 3.0)
                + SimDuration::from_millis(20);
            sim.close_connection(conn, at + est)?;
            self.issued += 1;
            let h = &mut self.hosts[i];
            if !h.partners.contains(&dst) {
                h.partners.push(dst);
                if h.partners.len() > cfg.max_partners {
                    h.partners.remove(0);
                }
            }
        }
        let h = &mut self.hosts[i];
        h.next_msg = at + SimDuration::from_secs_f64(gap);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonet_netsim::{NullTap, SimConfig};
    use sonet_topology::{ClusterSpec, Locality, TopologySpec};

    fn topo() -> Arc<Topology> {
        Arc::new(
            Topology::build(TopologySpec::single_dc(vec![ClusterSpec::hadoop(8, 8)]))
                .expect("valid"),
        )
    }

    #[test]
    fn traffic_is_mostly_rack_local() {
        let topo = topo();
        let mut wl = LiteratureWorkload::new(
            Arc::clone(&topo),
            LiteratureConfig::default(),
            ClusterId(0),
            5,
        );
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
        let mut t = SimTime::ZERO;
        for _ in 0..20 {
            t += SimDuration::from_millis(100);
            wl.generate(&mut sim, t).expect("generate");
            sim.run_until(t);
        }
        assert!(
            wl.issued_messages() > 100,
            "issued {}",
            wl.issued_messages()
        );
        let (out, _) = sim.finish();
        // Count bytes by locality from host uplinks vs CSW-bound links:
        // rack-local traffic never crosses an RSW uplink. Compare total
        // host-uplink bytes to RSW→CSW bytes.
        let mut host_up = 0u64;
        let mut rsw_up = 0u64;
        for (i, link) in topo.links().iter().enumerate() {
            use sonet_topology::{Node, SwitchKind};
            let c = out.link_counters[i].tx_bytes;
            match (link.from, link.to) {
                (Node::Host(_), _) => host_up += c,
                (Node::Switch(s), Node::Switch(d))
                    if topo.switches()[s.index()].kind == SwitchKind::Rsw
                        && topo.switches()[d.index()].kind == SwitchKind::Csw =>
                {
                    rsw_up += c;
                }
                _ => {}
            }
        }
        let leaving_frac = rsw_up as f64 / host_up as f64;
        assert!(
            leaving_frac < 0.45,
            "baseline should be rack-heavy; {:.1}% left the rack",
            leaving_frac * 100.0
        );
    }

    #[test]
    fn partner_set_stays_small() {
        let topo = topo();
        let mut wl = LiteratureWorkload::new(
            Arc::clone(&topo),
            LiteratureConfig::default(),
            ClusterId(0),
            7,
        );
        let mut sim =
            Simulator::new(Arc::clone(&topo), SimConfig::default(), NullTap).expect("config");
        wl.generate(&mut sim, SimTime::from_secs(5))
            .expect("generate");
        for h in &wl.hosts {
            assert!(h.partners.len() <= wl.cfg.max_partners + 1);
        }
    }

    #[test]
    fn locality_classification_sanity() {
        // The generator's rack-local picks really are intra-rack.
        let topo = topo();
        let wl = LiteratureWorkload::new(
            Arc::clone(&topo),
            LiteratureConfig {
                p_rack_local: 1.0,
                ..LiteratureConfig::default()
            },
            ClusterId(0),
            9,
        );
        for i in 0..wl.hosts.len() {
            if let Some(p) = wl.pick_partner(i) {
                assert_eq!(topo.locality(wl.hosts[i].host, p), Locality::IntraRack);
            }
        }
    }
}
