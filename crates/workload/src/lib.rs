//! # sonet-workload
//!
//! Traffic generators for every service the paper describes (§3.2, Fig 2):
//! Web, cache followers and leaders, Hadoop, Multifeed, SLB, database, and
//! miscellaneous background services — plus the *literature baseline*
//! (Benson/Kandula-style rack-local, on/off, bimodal-packet MapReduce
//! traffic) that the paper's findings are contrasted against.
//!
//! Two tiers, mirroring the paper's two collection systems:
//!
//! * **Packet tier** ([`Workload`]) — drives the `sonet-netsim` engine with
//!   per-host RPC call streams (connection pooling, bursty page fan-outs,
//!   Hadoop job phases). Port-mirror experiments (Figs 4, 6–14, 16, 17,
//!   Table 4) run here.
//! * **Fleet tier** ([`fleet::FleetModel`]) — a flow-level model of the
//!   whole plant that emits Fbflow-style samples directly, used for the
//!   24-hour fleet-wide results (Tables 2–3, Fig 5) where packet-level
//!   simulation would be prohibitive.
//!
//! Every profile constant is pinned to a quantitative statement in the
//! paper; see [`profile`] for the citations and DESIGN.md §5 for the
//! master list.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diurnal;
pub mod fleet;
pub mod literature;
pub mod pool;
pub mod profile;
pub mod workload;

pub use diurnal::DiurnalPattern;
pub use fleet::{FleetConfig, FleetModel, FleetModelState};
pub use literature::LiteratureWorkload;
pub use pool::{ConnPool, PoolEntry};
pub use profile::{
    CallPattern, DestSelector, HotObjectConfig, LoadBalance, PoolMode, RpcProfile, ServiceProfiles,
};
pub use workload::{Workload, WorkloadCheckpoint, WorkloadError};
