//! Host roles, cluster types, and traffic locality.
//!
//! §3.1: "each machine typically has precisely one role", and "racks
//! typically contain only servers of the same role". §4.3 / Table 3 groups
//! clusters into five types (Hadoop, Frontend, Service, Cache, Database)
//! that together generate 78.6 % of all traffic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The single role a machine plays (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum HostRole {
    /// Stateless HTTP servers running the site's PHP/HHVM tier.
    Web,
    /// Cache followers: serve most read requests from within Frontend
    /// clusters (§3.1, \[15\]).
    CacheFollower,
    /// Cache leaders: handle coherency and writes; live in Cache clusters.
    CacheLeader,
    /// Offline analysis / data-mining nodes (HDFS + MapReduce).
    Hadoop,
    /// News-feed assembly backends (§3.1, \[31\]).
    Multifeed,
    /// Layer-4 software load balancers (§3.2, \[37\]).
    Slb,
    /// MySQL servers holding user data.
    Db,
    /// Everything else: ads, search, messaging, background services.
    Misc,
}

impl HostRole {
    /// All roles, in a stable order (used for report columns).
    pub const ALL: [HostRole; 8] = [
        HostRole::Web,
        HostRole::CacheFollower,
        HostRole::CacheLeader,
        HostRole::Hadoop,
        HostRole::Multifeed,
        HostRole::Slb,
        HostRole::Db,
        HostRole::Misc,
    ];

    /// Short label used in reports (matches the paper's table headings).
    pub fn label(self) -> &'static str {
        match self {
            HostRole::Web => "Web",
            HostRole::CacheFollower => "Cache-f",
            HostRole::CacheLeader => "Cache-l",
            HostRole::Hadoop => "Hadoop",
            HostRole::Multifeed => "MF",
            HostRole::Slb => "SLB",
            HostRole::Db => "DB",
            HostRole::Misc => "Rest",
        }
    }
}

impl fmt::Display for HostRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Cluster types of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ClusterType {
    /// Web servers + cache followers + Multifeed + SLB (heterogeneous).
    Frontend,
    /// Homogeneous Hadoop racks.
    Hadoop,
    /// Cache leader racks.
    Cache,
    /// Database racks.
    Database,
    /// Miscellaneous supporting services.
    Service,
}

impl ClusterType {
    /// All cluster types in Table 3's column order.
    pub const ALL: [ClusterType; 5] = [
        ClusterType::Hadoop,
        ClusterType::Frontend,
        ClusterType::Service,
        ClusterType::Cache,
        ClusterType::Database,
    ];

    /// Short label used in reports (Table 3 column headings).
    pub fn label(self) -> &'static str {
        match self {
            ClusterType::Frontend => "FE",
            ClusterType::Hadoop => "Hadoop",
            ClusterType::Cache => "Cache",
            ClusterType::Database => "DB",
            ClusterType::Service => "Svc",
        }
    }
}

impl fmt::Display for ClusterType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How far apart a packet's endpoints are — the four-way split used by
/// Tables 2–3 and Figures 4, 6, 7, 16, 17.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Locality {
    /// Same rack (same RSW).
    IntraRack,
    /// Same cluster, different rack.
    IntraCluster,
    /// Same datacenter, different cluster.
    IntraDatacenter,
    /// Different datacenter (possibly different site).
    InterDatacenter,
}

impl Locality {
    /// All localities, nearest first (the stacking order of Fig 4).
    pub const ALL: [Locality; 4] = [
        Locality::IntraRack,
        Locality::IntraCluster,
        Locality::IntraDatacenter,
        Locality::InterDatacenter,
    ];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            Locality::IntraRack => "Intra-Rack",
            Locality::IntraCluster => "Intra-Cluster",
            Locality::IntraDatacenter => "Intra-Datacenter",
            Locality::InterDatacenter => "Inter-Datacenter",
        }
    }
}

impl fmt::Display for Locality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_headings() {
        assert_eq!(HostRole::CacheFollower.label(), "Cache-f");
        assert_eq!(HostRole::CacheLeader.label(), "Cache-l");
        assert_eq!(ClusterType::Frontend.label(), "FE");
        assert_eq!(Locality::IntraDatacenter.label(), "Intra-Datacenter");
    }

    #[test]
    fn locality_orders_nearest_first() {
        assert!(Locality::IntraRack < Locality::IntraCluster);
        assert!(Locality::IntraCluster < Locality::IntraDatacenter);
        assert!(Locality::IntraDatacenter < Locality::InterDatacenter);
    }

    #[test]
    fn role_list_is_exhaustive_and_unique() {
        let mut labels: Vec<_> = HostRole::ALL.iter().map(|r| r.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 8);
    }
}
