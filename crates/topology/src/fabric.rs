//! The next-generation *Fabric* topology (§3.1, \[9\]).
//!
//! "Work is underway, however, to migrate Facebook's datacenters to a
//! next-generation Fabric architecture. ... servers are no longer grouped
//! into clusters physically (instead, they comprise pods where all pods
//! in a datacenter have high connectivity), the high-level logical notion
//! of a cluster for server management purposes still exists."
//!
//! In the Fabric design every pod has a small number of racks whose RSWs
//! ("fabric edge") connect to four *fabric switches* per pod, which in
//! turn connect to four *spine planes* spanning the datacenter. We model
//! this re-using the 4-post machinery: a pod is built like a small
//! cluster (its four "CSWs" act as fabric switches), the FC layer acts as
//! the spine planes, and — crucially — provisioning is uniform, giving
//! the full-bisection pod-to-pod connectivity the design promises.
//!
//! The paper's observation about this migration is that the *logical*
//! cluster traffic pattern survives it: "the rack-to-rack traffic matrix
//! of a Frontend 'cluster' inside one of the new Fabric datacenters over
//! a day-long period (not shown) looks similar to that shown in
//! Figure 5." [`fabric_like_spec`] exists so experiments can check the
//! same invariance here.

use crate::spec::{ClusterSpec, DatacenterSpec, RackSpec, SiteSpec, TopologySpec};

/// Number of racks per Fabric pod (the published design uses 48 but any
/// small, uniform pod works for structural experiments).
pub const RACKS_PER_POD: u32 = 4;

/// Converts a cluster-oriented spec into a Fabric-style one: the same
/// racks (in the same logical order, preserving role blocks) regrouped
/// into uniform pods of [`RACKS_PER_POD`] racks, with spine-plane
/// provisioning scaled up so pods have high mutual connectivity.
///
/// Logical cluster membership is not represented physically — exactly the
/// migration the paper describes. Analyses that need the *logical*
/// cluster (e.g. Fig 5's "Frontend 'cluster'") should group racks by
/// their position blocks rather than by `ClusterId`.
pub fn fabric_like_spec(clustered: &TopologySpec) -> TopologySpec {
    let mut sites = Vec::with_capacity(clustered.sites.len());
    for site in &clustered.sites {
        let mut datacenters = Vec::with_capacity(site.datacenters.len());
        for dc in &site.datacenters {
            // Flatten all racks in logical order.
            let racks: Vec<RackSpec> = dc
                .clusters
                .iter()
                .flat_map(|c| c.racks.iter().cloned())
                .collect();
            // Regroup into uniform pods. Pod "type" is inherited from the
            // majority role purely for reporting; Fabric pods are not
            // deployment units.
            let mut pods = Vec::new();
            for chunk in racks.chunks(RACKS_PER_POD as usize) {
                let ctype = dominant_type(chunk);
                pods.push(ClusterSpec {
                    ctype,
                    racks: chunk.to_vec(),
                });
            }
            datacenters.push(DatacenterSpec { clusters: pods });
        }
        sites.push(SiteSpec { datacenters });
    }
    TopologySpec {
        sites,
        // Uniform, generous spine provisioning: the defining property of
        // the Fabric design versus oversubscribed 4-post clusters.
        fc_count: clustered.fc_count.max(4) * 2,
        agg_gbps: clustered.agg_gbps,
        edge_gbps: clustered.edge_gbps,
        rsw_uplink_gbps: clustered.rsw_uplink_gbps,
    }
}

fn dominant_type(racks: &[RackSpec]) -> crate::role::ClusterType {
    use crate::role::{ClusterType, HostRole};
    let mut counts = std::collections::HashMap::new();
    for r in racks {
        *counts.entry(r.role).or_insert(0u32) += r.hosts;
    }
    let top = counts
        .into_iter()
        .max_by_key(|&(_, n)| n)
        .map(|(r, _)| r)
        .unwrap_or(HostRole::Misc);
    match top {
        HostRole::Hadoop => ClusterType::Hadoop,
        HostRole::CacheLeader => ClusterType::Cache,
        HostRole::Db => ClusterType::Database,
        HostRole::Web | HostRole::CacheFollower | HostRole::Slb => ClusterType::Frontend,
        HostRole::Multifeed | HostRole::Misc => ClusterType::Service,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::role::HostRole;
    use crate::topology::Topology;

    fn clustered() -> TopologySpec {
        TopologySpec::single_dc(vec![ClusterSpec::frontend(8, 4), ClusterSpec::hadoop(4, 4)])
    }

    #[test]
    fn fabric_preserves_hosts_and_roles() {
        let spec = clustered();
        let fab = fabric_like_spec(&spec);
        assert_eq!(spec.host_count(), fab.host_count());
        let t_old = Topology::build(spec).expect("valid");
        let t_new = Topology::build(fab).expect("valid");
        for role in HostRole::ALL {
            assert_eq!(
                t_old.hosts_with_role(role).len(),
                t_new.hosts_with_role(role).len(),
                "{role} count changed in fabric migration"
            );
        }
    }

    #[test]
    fn fabric_pods_are_uniform_and_small() {
        let fab = fabric_like_spec(&clustered());
        let topo = Topology::build(fab).expect("valid");
        for cluster in topo.clusters() {
            assert!(cluster.racks.len() <= RACKS_PER_POD as usize);
        }
        // 12 racks → 3 pods.
        assert_eq!(topo.clusters().len(), 3);
    }

    #[test]
    fn fabric_rack_order_preserves_logical_blocks() {
        // Rack i of the fabric plant hosts the same role as rack i of the
        // clustered plant, so logical-cluster analyses can regroup by
        // position.
        let spec = clustered();
        let t_old = Topology::build(spec.clone()).expect("valid");
        let t_new = Topology::build(fabric_like_spec(&spec)).expect("valid");
        assert_eq!(t_old.racks().len(), t_new.racks().len());
        for (a, b) in t_old.racks().iter().zip(t_new.racks()) {
            assert_eq!(a.role, b.role);
        }
    }

    #[test]
    fn fabric_spines_scaled_up() {
        let spec = clustered();
        let fab = fabric_like_spec(&spec);
        assert!(fab.fc_count >= 2 * spec.fc_count);
    }
}
