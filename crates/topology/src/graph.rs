//! Switching-fabric graph primitives: switches, directed links, endpoints.
//!
//! The 4-post design of Figure 1 has four switch layers — RSW (top of
//! rack), CSW (cluster switch), FC ("Fat Cat" intra-datacenter
//! aggregation), and DR (datacenter router) — plus an abstract backbone
//! node stitching sites together. Every physical cable is modeled as two
//! directed [`Link`]s so egress queues on each direction are independent,
//! which is how real output-queued switches behave.

use crate::ids::{ClusterId, DatacenterId, HostId, RackId, SwitchId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The layer a switch lives at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SwitchKind {
    /// Top-of-rack switch (one per rack).
    Rsw,
    /// Cluster switch (four per cluster — the "4-post").
    Csw,
    /// Fat Cat intra-datacenter aggregation switch.
    Fc,
    /// Datacenter router (inter-site traffic).
    Dr,
    /// Abstract inter-site backbone.
    Backbone,
}

impl fmt::Display for SwitchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SwitchKind::Rsw => "RSW",
            SwitchKind::Csw => "CSW",
            SwitchKind::Fc => "FC",
            SwitchKind::Dr => "DR",
            SwitchKind::Backbone => "BB",
        })
    }
}

/// A switch and where it sits in the hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Switch {
    /// Layer.
    pub kind: SwitchKind,
    /// Containing datacenter (None only for the backbone).
    pub datacenter: Option<DatacenterId>,
    /// Containing cluster (RSW and CSW only).
    pub cluster: Option<ClusterId>,
    /// Rack (RSW only).
    pub rack: Option<RackId>,
}

/// One endpoint of a link: a host NIC or a switch port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Node {
    /// A server NIC.
    Host(HostId),
    /// A switch.
    Switch(SwitchId),
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Host(h) => write!(f, "{h}"),
            Node::Switch(s) => write!(f, "{s}"),
        }
    }
}

/// Identifier of a directed link (dense index into [`crate::Topology`]'s
/// link table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Dense index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// A directed link between two nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Transmitting endpoint (its egress queue drains into this link).
    pub from: Node,
    /// Receiving endpoint.
    pub to: Node,
    /// Line rate in Gbps.
    pub gbps: f64,
    /// One-way propagation delay in nanoseconds.
    pub propagation_ns: u64,
}

impl Link {
    /// True if this is a host access link in either direction (host ↔ RSW).
    pub fn touches_host(&self) -> bool {
        matches!(self.from, Node::Host(_)) || matches!(self.to, Node::Host(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_display() {
        assert_eq!(Node::Host(HostId(3)).to_string(), "host3");
        assert_eq!(Node::Switch(SwitchId(9)).to_string(), "sw9");
    }

    #[test]
    fn link_touches_host() {
        let l = Link {
            from: Node::Host(HostId(0)),
            to: Node::Switch(SwitchId(0)),
            gbps: 10.0,
            propagation_ns: 500,
        };
        assert!(l.touches_host());
        let s = Link {
            from: Node::Switch(SwitchId(0)),
            to: Node::Switch(SwitchId(1)),
            gbps: 40.0,
            propagation_ns: 500,
        };
        assert!(!s.touches_host());
    }

    #[test]
    fn switch_kind_labels() {
        assert_eq!(SwitchKind::Rsw.to_string(), "RSW");
        assert_eq!(SwitchKind::Backbone.to_string(), "BB");
    }
}
