//! The built plant: hosts, racks, clusters, datacenters, sites, the Clos
//! graph connecting them, and deterministic ECMP routing over it.

use crate::graph::{Link, LinkId, Node, Switch, SwitchKind};
use crate::health::LinkHealth;
use crate::ids::{ClusterId, DatacenterId, HostId, RackId, SiteId, SwitchId};
use crate::role::{ClusterType, HostRole, Locality};
use crate::spec::TopologySpec;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Number of cluster switches per cluster — the "4-post" of Figure 1.
pub const CSW_PER_CLUSTER: usize = 4;

/// Propagation delay for intra-building hops (a few hundred feet of fiber).
const INTRA_DC_PROP_NS: u64 = 500;
/// Propagation delay for the backbone hop between datacenters.
const INTER_DC_PROP_NS: u64 = 1_000_000; // 1 ms one-way

/// A server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Host {
    /// This host's single role (§3.1).
    pub role: HostRole,
    /// Containing rack.
    pub rack: RackId,
    /// Containing cluster.
    pub cluster: ClusterId,
    /// Containing datacenter.
    pub datacenter: DatacenterId,
    /// Containing site.
    pub site: SiteId,
}

/// A rack: hosts plus its RSW.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rack {
    /// Role shared by every host in the rack.
    pub role: HostRole,
    /// Containing cluster.
    pub cluster: ClusterId,
    /// Hosts in the rack.
    pub hosts: Vec<HostId>,
    /// The rack's top-of-rack switch.
    pub rsw: SwitchId,
}

/// A cluster: racks plus its four CSWs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cluster {
    /// Cluster type (Table 3 taxonomy).
    pub ctype: ClusterType,
    /// Containing datacenter.
    pub datacenter: DatacenterId,
    /// Racks in position order.
    pub racks: Vec<RackId>,
    /// The four cluster switches.
    pub csws: [SwitchId; CSW_PER_CLUSTER],
}

/// A datacenter building: clusters, FC layer, and its router.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Datacenter {
    /// Containing site.
    pub site: SiteId,
    /// Clusters in the building.
    pub clusters: Vec<ClusterId>,
    /// Fat Cat aggregation switches.
    pub fcs: Vec<SwitchId>,
    /// Datacenter router.
    pub dr: SwitchId,
}

/// A site: datacenter buildings sharing a backbone attachment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Site {
    /// Buildings on the campus.
    pub datacenters: Vec<DatacenterId>,
}

/// Errors from topology construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The spec contains no hosts.
    Empty,
    /// A cluster had no racks.
    EmptyCluster(ClusterId),
    /// A rack had no hosts.
    EmptyRack(RackId),
    /// A link rate or FC count was non-positive.
    BadProvisioning(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Empty => write!(f, "topology spec contains no hosts"),
            TopologyError::EmptyCluster(c) => write!(f, "{c} has no racks"),
            TopologyError::EmptyRack(r) => write!(f, "{r} has no hosts"),
            TopologyError::BadProvisioning(msg) => write!(f, "bad provisioning: {msg}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Why a route could not be produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// Source and destination are the same host; loopback traffic never
    /// touches the network.
    SelfRoute(HostId),
    /// Every equal-cost candidate path crosses a dead link or switch.
    NoPath {
        /// Route source.
        src: HostId,
        /// Route destination.
        dst: HostId,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::SelfRoute(h) => write!(f, "{h} cannot route to itself"),
            RouteError::NoPath { src, dst } => {
                write!(f, "no healthy path from {src} to {dst}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// The fully built plant. See the crate docs for the responsibilities.
#[derive(Debug, Clone)]
pub struct Topology {
    spec: TopologySpec,
    hosts: Vec<Host>,
    racks: Vec<Rack>,
    clusters: Vec<Cluster>,
    datacenters: Vec<Datacenter>,
    sites: Vec<Site>,
    switches: Vec<Switch>,
    links: Vec<Link>,
    backbone: SwitchId,
    /// `(from, to) -> link` for route assembly.
    link_by_endpoints: HashMap<(Node, Node), LinkId>,
    /// Hosts grouped by role, fleet-wide.
    hosts_by_role: HashMap<HostRole, Vec<HostId>>,
    /// Hosts grouped by (cluster, role).
    cluster_role_hosts: HashMap<(ClusterId, HostRole), Vec<HostId>>,
}

impl Topology {
    /// Builds the plant from a spec, wiring the full Clos graph.
    pub fn build(spec: TopologySpec) -> Result<Topology, TopologyError> {
        if spec.host_count() == 0 {
            return Err(TopologyError::Empty);
        }
        if spec.edge_gbps <= 0.0 || spec.rsw_uplink_gbps <= 0.0 || spec.agg_gbps <= 0.0 {
            return Err(TopologyError::BadProvisioning(
                "link rates must be positive".into(),
            ));
        }
        if spec.fc_count == 0 {
            return Err(TopologyError::BadProvisioning(
                "fc_count must be at least 1".into(),
            ));
        }

        let mut t = Topology {
            spec: spec.clone(),
            hosts: Vec::new(),
            racks: Vec::new(),
            clusters: Vec::new(),
            datacenters: Vec::new(),
            sites: Vec::new(),
            switches: Vec::new(),
            links: Vec::new(),
            backbone: SwitchId(0),
            link_by_endpoints: HashMap::new(),
            hosts_by_role: HashMap::new(),
            cluster_role_hosts: HashMap::new(),
        };

        t.backbone = t.add_switch(Switch {
            kind: SwitchKind::Backbone,
            datacenter: None,
            cluster: None,
            rack: None,
        });

        for site_spec in &spec.sites {
            let site_id = SiteId(t.sites.len() as u32);
            t.sites.push(Site {
                datacenters: Vec::new(),
            });

            for dc_spec in &site_spec.datacenters {
                let dc_id = DatacenterId(t.datacenters.len() as u32);
                let dr = t.add_switch(Switch {
                    kind: SwitchKind::Dr,
                    datacenter: Some(dc_id),
                    cluster: None,
                    rack: None,
                });
                let fcs: Vec<SwitchId> = (0..spec.fc_count)
                    .map(|_| {
                        t.add_switch(Switch {
                            kind: SwitchKind::Fc,
                            datacenter: Some(dc_id),
                            cluster: None,
                            rack: None,
                        })
                    })
                    .collect();
                t.datacenters.push(Datacenter {
                    site: site_id,
                    clusters: Vec::new(),
                    fcs: fcs.clone(),
                    dr,
                });
                t.sites[site_id.index()].datacenters.push(dc_id);

                // DR ↔ backbone: provisioned wide enough not to be the story.
                let bb_gbps = spec.agg_gbps * 16.0;
                t.add_duplex(
                    Node::Switch(dr),
                    Node::Switch(t.backbone),
                    bb_gbps,
                    INTER_DC_PROP_NS,
                );

                for cluster_spec in &dc_spec.clusters {
                    let cluster_id = ClusterId(t.clusters.len() as u32);
                    if cluster_spec.racks.is_empty() {
                        return Err(TopologyError::EmptyCluster(cluster_id));
                    }
                    let csws: [SwitchId; CSW_PER_CLUSTER] = std::array::from_fn(|_| {
                        t.add_switch(Switch {
                            kind: SwitchKind::Csw,
                            datacenter: Some(dc_id),
                            cluster: Some(cluster_id),
                            rack: None,
                        })
                    });
                    t.clusters.push(Cluster {
                        ctype: cluster_spec.ctype,
                        datacenter: dc_id,
                        racks: Vec::new(),
                        csws,
                    });
                    t.datacenters[dc_id.index()].clusters.push(cluster_id);

                    // CSW ↔ every FC, and CSW ↔ DR.
                    for &csw in &csws {
                        for &fc in &fcs {
                            t.add_duplex(
                                Node::Switch(csw),
                                Node::Switch(fc),
                                spec.agg_gbps,
                                INTRA_DC_PROP_NS,
                            );
                        }
                        t.add_duplex(
                            Node::Switch(csw),
                            Node::Switch(dr),
                            spec.agg_gbps,
                            INTRA_DC_PROP_NS,
                        );
                    }

                    for rack_spec in &cluster_spec.racks {
                        let rack_id = RackId(t.racks.len() as u32);
                        if rack_spec.hosts == 0 {
                            return Err(TopologyError::EmptyRack(rack_id));
                        }
                        let rsw = t.add_switch(Switch {
                            kind: SwitchKind::Rsw,
                            datacenter: Some(dc_id),
                            cluster: Some(cluster_id),
                            rack: Some(rack_id),
                        });
                        // RSW ↔ each of the 4 CSWs.
                        for &csw in &csws {
                            t.add_duplex(
                                Node::Switch(rsw),
                                Node::Switch(csw),
                                spec.rsw_uplink_gbps,
                                INTRA_DC_PROP_NS,
                            );
                        }
                        let mut host_ids = Vec::with_capacity(rack_spec.hosts as usize);
                        for _ in 0..rack_spec.hosts {
                            let host_id = HostId(t.hosts.len() as u32);
                            t.hosts.push(Host {
                                role: rack_spec.role,
                                rack: rack_id,
                                cluster: cluster_id,
                                datacenter: dc_id,
                                site: site_id,
                            });
                            t.add_duplex(
                                Node::Host(host_id),
                                Node::Switch(rsw),
                                spec.edge_gbps,
                                INTRA_DC_PROP_NS,
                            );
                            host_ids.push(host_id);
                            t.hosts_by_role
                                .entry(rack_spec.role)
                                .or_default()
                                .push(host_id);
                            t.cluster_role_hosts
                                .entry((cluster_id, rack_spec.role))
                                .or_default()
                                .push(host_id);
                        }
                        t.racks.push(Rack {
                            role: rack_spec.role,
                            cluster: cluster_id,
                            hosts: host_ids,
                            rsw,
                        });
                        t.clusters[cluster_id.index()].racks.push(rack_id);
                    }
                }
            }
        }
        Ok(t)
    }

    fn add_switch(&mut self, sw: Switch) -> SwitchId {
        let id = SwitchId(self.switches.len() as u32);
        self.switches.push(sw);
        id
    }

    fn add_duplex(&mut self, a: Node, b: Node, gbps: f64, prop_ns: u64) {
        for (from, to) in [(a, b), (b, a)] {
            let id = LinkId(self.links.len() as u32);
            self.links.push(Link {
                from,
                to,
                gbps,
                propagation_ns: prop_ns,
            });
            let prev = self.link_by_endpoints.insert((from, to), id);
            debug_assert!(prev.is_none(), "duplicate link {from}->{to}");
        }
    }

    fn link(&self, from: Node, to: Node) -> LinkId {
        *self
            .link_by_endpoints
            .get(&(from, to))
            .unwrap_or_else(|| panic!("no link {from}->{to}: topology invariant broken"))
    }

    /// The spec this plant was built from.
    pub fn spec(&self) -> &TopologySpec {
        &self.spec
    }

    /// All hosts. `HostId(i)` indexes position `i`.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// One host's record.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.index()]
    }

    /// All racks.
    pub fn racks(&self) -> &[Rack] {
        &self.racks
    }

    /// One rack's record.
    pub fn rack(&self, id: RackId) -> &Rack {
        &self.racks[id.index()]
    }

    /// All clusters.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// One cluster's record.
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.index()]
    }

    /// All datacenters.
    pub fn datacenters(&self) -> &[Datacenter] {
        &self.datacenters
    }

    /// All sites.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// All switches.
    pub fn switches(&self) -> &[Switch] {
        &self.switches
    }

    /// All directed links. `LinkId(i)` indexes position `i`.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Every host with the given role, fleet-wide (stable order).
    pub fn hosts_with_role(&self, role: HostRole) -> &[HostId] {
        self.hosts_by_role
            .get(&role)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Every host with the given role inside one cluster (stable order).
    pub fn hosts_with_role_in_cluster(&self, cluster: ClusterId, role: HostRole) -> &[HostId] {
        self.cluster_role_hosts
            .get(&(cluster, role))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// First cluster of a given type, if any (convenience for scenarios).
    pub fn first_cluster_of_type(&self, ctype: ClusterType) -> Option<ClusterId> {
        self.clusters
            .iter()
            .position(|c| c.ctype == ctype)
            .map(|i| ClusterId(i as u32))
    }

    /// Locality of traffic from `a` to `b` (§4.2's four-way split).
    pub fn locality(&self, a: HostId, b: HostId) -> Locality {
        let ha = &self.hosts[a.index()];
        let hb = &self.hosts[b.index()];
        if ha.rack == hb.rack {
            Locality::IntraRack
        } else if ha.cluster == hb.cluster {
            Locality::IntraCluster
        } else if ha.datacenter == hb.datacenter {
            Locality::IntraDatacenter
        } else {
            Locality::InterDatacenter
        }
    }

    /// Deterministic ECMP route from `src` to `dst` as the sequence of
    /// directed links a packet crosses. `flow_hash` selects among equal-cost
    /// CSW/FC choices, so all packets of one flow take one path (as ECMP
    /// hashing on the 5-tuple does in practice).
    ///
    /// Returns [`RouteError::SelfRoute`] when `src == dst`; loopback
    /// traffic never touches the network.
    pub fn route(
        &self,
        src: HostId,
        dst: HostId,
        flow_hash: u64,
    ) -> Result<Vec<LinkId>, RouteError> {
        if src == dst {
            return Err(RouteError::SelfRoute(src));
        }
        let (s1, s2, s3) = Self::ecmp_choices(flow_hash);
        Ok(self.route_via(src, dst, s1, s2, s3))
    }

    /// Failure-aware ECMP route: like [`Topology::route`], but only paths
    /// whose every link is usable under `health` qualify. When the
    /// hash-selected path is broken, the router re-hashes deterministically
    /// across the remaining equal-cost CSW/FC choices (offsets from the
    /// hash-selected indices, tried in a fixed order), exactly as hardware
    /// ECMP re-balances onto surviving next-hops. On a fully healthy plant
    /// this returns the identical path to [`Topology::route`].
    ///
    /// Returns [`RouteError::NoPath`] when every candidate crosses a dead
    /// link — e.g. the destination's RSW is down, or all four posts of a
    /// cluster have failed.
    pub fn route_healthy(
        &self,
        src: HostId,
        dst: HostId,
        flow_hash: u64,
        health: &LinkHealth,
    ) -> Result<Vec<LinkId>, RouteError> {
        if src == dst {
            return Err(RouteError::SelfRoute(src));
        }
        let (s1, s2, s3) = Self::ecmp_choices(flow_hash);
        if health.all_up() {
            return Ok(self.route_via(src, dst, s1, s2, s3));
        }
        let fc_count = self.datacenters[self.hosts[src.index()].datacenter.index()]
            .fcs
            .len();
        let posts = CSW_PER_CLUSTER;
        for k1 in 0..posts {
            for k2 in 0..posts {
                for k3 in 0..fc_count {
                    let path = self.route_via(
                        src,
                        dst,
                        (s1 + k1) % posts,
                        (s2 + k2) % posts,
                        (s3 + k3) % fc_count,
                    );
                    if path.iter().all(|&l| health.link_usable(self, l)) {
                        return Ok(path);
                    }
                }
            }
        }
        Err(RouteError::NoPath { src, dst })
    }

    /// The hash-selected (src-post, dst-post, FC) candidate indices. FC
    /// index is reduced modulo the datacenter's FC count at use time.
    fn ecmp_choices(flow_hash: u64) -> (usize, usize, usize) {
        (
            (flow_hash % CSW_PER_CLUSTER as u64) as usize,
            ((flow_hash >> 8) % CSW_PER_CLUSTER as u64) as usize,
            (flow_hash >> 16) as usize,
        )
    }

    /// Builds the path through the given equal-cost choices: `src_post` /
    /// `dst_post` index the 4 CSWs of the source/destination cluster,
    /// `fc_choice` the FC layer (reduced modulo the FC count).
    fn route_via(
        &self,
        src: HostId,
        dst: HostId,
        src_post: usize,
        dst_post: usize,
        fc_choice: usize,
    ) -> Vec<LinkId> {
        let hs = &self.hosts[src.index()];
        let hd = &self.hosts[dst.index()];
        let src_rsw = self.racks[hs.rack.index()].rsw;
        let dst_rsw = self.racks[hd.rack.index()].rsw;

        let mut path = Vec::with_capacity(8);
        path.push(self.link(Node::Host(src), Node::Switch(src_rsw)));

        if hs.rack == hd.rack {
            path.push(self.link(Node::Switch(src_rsw), Node::Host(dst)));
            return path;
        }

        // Pick the CSW post (ECMP among the 4 posts).
        let src_csw = self.clusters[hs.cluster.index()].csws[src_post];
        path.push(self.link(Node::Switch(src_rsw), Node::Switch(src_csw)));

        if hs.cluster == hd.cluster {
            path.push(self.link(Node::Switch(src_csw), Node::Switch(dst_rsw)));
            path.push(self.link(Node::Switch(dst_rsw), Node::Host(dst)));
            return path;
        }

        let dst_csw = self.clusters[hd.cluster.index()].csws[dst_post];

        if hs.datacenter == hd.datacenter {
            let fcs = &self.datacenters[hs.datacenter.index()].fcs;
            let fc = fcs[fc_choice % fcs.len()];
            path.push(self.link(Node::Switch(src_csw), Node::Switch(fc)));
            path.push(self.link(Node::Switch(fc), Node::Switch(dst_csw)));
        } else {
            let src_dr = self.datacenters[hs.datacenter.index()].dr;
            let dst_dr = self.datacenters[hd.datacenter.index()].dr;
            path.push(self.link(Node::Switch(src_csw), Node::Switch(src_dr)));
            path.push(self.link(Node::Switch(src_dr), Node::Switch(self.backbone)));
            path.push(self.link(Node::Switch(self.backbone), Node::Switch(dst_dr)));
            path.push(self.link(Node::Switch(dst_dr), Node::Switch(dst_csw)));
        }

        path.push(self.link(Node::Switch(dst_csw), Node::Switch(dst_rsw)));
        path.push(self.link(Node::Switch(dst_rsw), Node::Host(dst)));
        path
    }

    /// The host access link in the transmit direction (host → RSW), i.e.
    /// the link whose utilization §4.1 reports as "less than 1 %".
    pub fn host_uplink(&self, host: HostId) -> LinkId {
        let rsw = self.racks[self.hosts[host.index()].rack.index()].rsw;
        self.link(Node::Host(host), Node::Switch(rsw))
    }

    /// The host access link in the receive direction (RSW → host).
    pub fn host_downlink(&self, host: HostId) -> LinkId {
        let rsw = self.racks[self.hosts[host.index()].rack.index()].rsw;
        self.link(Node::Switch(rsw), Node::Host(host))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ClusterSpec;

    fn small_plant() -> Topology {
        // Two datacenters in two sites: DC0 has a frontend + hadoop cluster,
        // DC1 has a cache + db cluster.
        let spec = TopologySpec {
            sites: vec![
                crate::spec::SiteSpec {
                    datacenters: vec![crate::spec::DatacenterSpec {
                        clusters: vec![ClusterSpec::frontend(8, 4), ClusterSpec::hadoop(4, 4)],
                    }],
                },
                crate::spec::SiteSpec {
                    datacenters: vec![crate::spec::DatacenterSpec {
                        clusters: vec![ClusterSpec::cache(3, 4), ClusterSpec::database(2, 4)],
                    }],
                },
            ],
            ..TopologySpec::default()
        };
        Topology::build(spec).expect("valid plant")
    }

    #[test]
    fn counts_are_consistent() {
        let t = small_plant();
        assert_eq!(t.hosts().len(), (8 + 4 + 3 + 2) * 4);
        assert_eq!(t.racks().len(), 8 + 4 + 3 + 2);
        assert_eq!(t.clusters().len(), 4);
        assert_eq!(t.datacenters().len(), 2);
        assert_eq!(t.sites().len(), 2);
        // 4 CSWs per cluster + 1 RSW per rack + fc_count FCs + 1 DR per DC + backbone.
        let expected_switches = 4 * 4 + 17 + 4 * 2 + 2 + 1;
        assert_eq!(t.switches().len(), expected_switches);
    }

    #[test]
    fn every_rack_is_role_homogeneous() {
        let t = small_plant();
        for rack in t.racks() {
            for &h in &rack.hosts {
                assert_eq!(t.host(h).role, rack.role);
            }
        }
    }

    #[test]
    fn locality_classification() {
        let t = small_plant();
        let rack0 = &t.racks()[0];
        let a = rack0.hosts[0];
        let b = rack0.hosts[1];
        assert_eq!(t.locality(a, b), Locality::IntraRack);

        let rack1 = &t.racks()[1]; // same frontend cluster
        assert_eq!(t.locality(a, rack1.hosts[0]), Locality::IntraCluster);

        // Hadoop cluster is in the same DC (cluster index 1).
        let hadoop_rack = &t.racks()[8];
        assert_eq!(t.rack(RackId(8)).role, HostRole::Hadoop);
        assert_eq!(
            t.locality(a, hadoop_rack.hosts[0]),
            Locality::IntraDatacenter
        );

        // Cache cluster is in the other DC.
        let cache_host = t.hosts_with_role(HostRole::CacheLeader)[0];
        assert_eq!(t.locality(a, cache_host), Locality::InterDatacenter);
    }

    #[test]
    fn route_hop_counts_by_locality() {
        let t = small_plant();
        let rack0 = &t.racks()[0];
        let a = rack0.hosts[0];

        // Intra-rack: host→RSW→host.
        let r = t.route(a, rack0.hosts[1], 99).expect("route");
        assert_eq!(r.len(), 2);

        // Intra-cluster: host→RSW→CSW→RSW→host.
        let b = t.racks()[1].hosts[0];
        let r = t.route(a, b, 99).expect("route");
        assert_eq!(r.len(), 4);

        // Intra-DC: + CSW→FC→CSW.
        let h = t.hosts_with_role(HostRole::Hadoop)[0];
        let r = t.route(a, h, 99).expect("route");
        assert_eq!(r.len(), 6);

        // Inter-DC: + CSW→DR→BB→DR→CSW.
        let c = t.hosts_with_role(HostRole::CacheLeader)[0];
        let r = t.route(a, c, 99).expect("route");
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn route_links_chain_and_start_end_correctly() {
        let t = small_plant();
        let a = t.racks()[0].hosts[0];
        let c = t.hosts_with_role(HostRole::CacheLeader)[0];
        for hash in [0u64, 1, 7, 12345, u64::MAX] {
            let path = t.route(a, c, hash).expect("route");
            let links = t.links();
            assert_eq!(links[path[0].index()].from, Node::Host(a));
            assert_eq!(
                links[path.last().expect("non-empty").index()].to,
                Node::Host(c)
            );
            for w in path.windows(2) {
                assert_eq!(
                    links[w[0].index()].to,
                    links[w[1].index()].from,
                    "path must chain"
                );
            }
        }
    }

    #[test]
    fn ecmp_spreads_across_posts() {
        let t = small_plant();
        let a = t.racks()[0].hosts[0];
        let b = t.racks()[1].hosts[0];
        let mut seen = std::collections::HashSet::new();
        for hash in 0..4u64 {
            let path = t.route(a, b, hash).expect("route");
            seen.insert(path[1]); // RSW→CSW link identifies the post
        }
        assert_eq!(seen.len(), 4, "4 hashes should hit all 4 posts");
    }

    #[test]
    fn host_uplink_downlink() {
        let t = small_plant();
        let a = t.racks()[0].hosts[0];
        let up = t.host_uplink(a);
        let down = t.host_downlink(a);
        assert_eq!(t.links()[up.index()].from, Node::Host(a));
        assert_eq!(t.links()[down.index()].to, Node::Host(a));
        assert_ne!(up, down);
    }

    #[test]
    fn build_errors() {
        assert_eq!(
            Topology::build(TopologySpec::single_dc(vec![])).unwrap_err(),
            TopologyError::Empty
        );
        let mut bad = TopologySpec::single_dc(vec![ClusterSpec::hadoop(1, 1)]);
        bad.edge_gbps = 0.0;
        assert!(matches!(
            Topology::build(bad).unwrap_err(),
            TopologyError::BadProvisioning(_)
        ));
        let mut bad = TopologySpec::single_dc(vec![ClusterSpec::hadoop(1, 1)]);
        bad.fc_count = 0;
        assert!(matches!(
            Topology::build(bad).unwrap_err(),
            TopologyError::BadProvisioning(_)
        ));
    }

    #[test]
    fn route_to_self_is_an_error() {
        let t = small_plant();
        let a = t.racks()[0].hosts[0];
        assert_eq!(t.route(a, a, 0).unwrap_err(), RouteError::SelfRoute(a));
        let h = LinkHealth::new(&t);
        assert_eq!(
            t.route_healthy(a, a, 0, &h).unwrap_err(),
            RouteError::SelfRoute(a)
        );
    }

    #[test]
    fn healthy_plant_routes_identically_with_and_without_health() {
        let t = small_plant();
        let h = LinkHealth::new(&t);
        let a = t.racks()[0].hosts[0];
        let targets = [
            t.racks()[0].hosts[1],
            t.racks()[1].hosts[0],
            t.hosts_with_role(HostRole::Hadoop)[0],
            t.hosts_with_role(HostRole::CacheLeader)[0],
        ];
        for dst in targets {
            for hash in [0u64, 3, 99, 123_456_789, u64::MAX] {
                assert_eq!(
                    t.route_healthy(a, dst, hash, &h).expect("healthy"),
                    t.route(a, dst, hash).expect("route"),
                );
            }
        }
    }

    #[test]
    fn dead_post_is_routed_around() {
        let t = small_plant();
        let a = t.racks()[0].hosts[0];
        let b = t.racks()[1].hosts[0];
        // Hash 0 selects post 0; kill it and the route must shift posts
        // while keeping the same shape and endpoints.
        let post0 = t.cluster(t.host(a).cluster).csws[0];
        let mut h = LinkHealth::new(&t);
        h.set_switch_up(post0, false);
        let path = t.route_healthy(a, b, 0, &h).expect("reroute");
        assert_eq!(path.len(), 4);
        assert!(path.iter().all(|&l| h.link_usable(&t, l)));
        let links = t.links();
        assert_eq!(links[path[0].index()].from, Node::Host(a));
        assert_eq!(
            links[path.last().expect("non-empty").index()].to,
            Node::Host(b)
        );
        assert_ne!(
            path,
            t.route(a, b, 0).expect("route"),
            "must avoid the dead post"
        );
        // An unaffected flow (hash 1 → post 1) keeps its original path.
        assert_eq!(
            t.route_healthy(a, b, 1, &h).expect("healthy"),
            t.route(a, b, 1).expect("route"),
        );
    }

    #[test]
    fn all_posts_dead_means_no_path() {
        let t = small_plant();
        let a = t.racks()[0].hosts[0];
        let b = t.racks()[1].hosts[0];
        let mut h = LinkHealth::new(&t);
        for csw in t.cluster(t.host(a).cluster).csws {
            h.set_switch_up(csw, false);
        }
        assert_eq!(
            t.route_healthy(a, b, 7, &h).unwrap_err(),
            RouteError::NoPath { src: a, dst: b },
        );
        // Intra-rack traffic does not touch the posts and still routes.
        let r = t
            .route_healthy(a, t.racks()[0].hosts[1], 7, &h)
            .expect("intra-rack");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn dead_access_link_has_no_alternative() {
        let t = small_plant();
        let a = t.racks()[0].hosts[0];
        let b = t.racks()[1].hosts[0];
        let mut h = LinkHealth::new(&t);
        h.set_link_up(t.host_uplink(a), false);
        assert!(matches!(
            t.route_healthy(a, b, 0, &h),
            Err(RouteError::NoPath { .. })
        ));
        // The reverse direction is unaffected: only the uplink is down.
        assert!(t.route_healthy(b, a, 0, &h).is_ok());
    }

    #[test]
    fn dead_fc_shifts_intra_dc_routes() {
        let t = small_plant();
        let a = t.racks()[0].hosts[0];
        let hdp = t.hosts_with_role(HostRole::Hadoop)[0];
        let baseline = t.route(a, hdp, 5).expect("route");
        // Kill the FC the baseline path crosses (hop 2 is CSW→FC).
        let fc = match t.links()[baseline[2].index()].to {
            Node::Switch(s) => s,
            Node::Host(_) => unreachable!("hop 2 of a 6-hop path ends at a switch"),
        };
        let mut h = LinkHealth::new(&t);
        h.set_switch_up(fc, false);
        let rerouted = t.route_healthy(a, hdp, 5, &h).expect("reroute");
        assert_eq!(rerouted.len(), 6);
        assert!(rerouted.iter().all(|&l| h.link_usable(&t, l)));
        assert_ne!(rerouted, baseline);
    }
}
