//! # sonet-topology
//!
//! A model of the datacenter plant described in §3.1 of *Inside the Social
//! Network's (Datacenter) Network* (SIGCOMM 2015): multiple **sites**, each
//! with one or more **datacenters**, each containing **clusters** of
//! **racks** of single-role **hosts**, wired through the classic *4-post*
//! topology of Figure 1 — a top-of-rack switch (RSW) per rack, four cluster
//! switches (CSWs) per cluster, a *Fat Cat* (FC) aggregation layer for
//! intra-datacenter traffic, and datacenter routers (DRs) for inter-site
//! traffic.
//!
//! The crate answers the questions the measurement analyses need:
//!
//! * *who is where* — role, rack, cluster, datacenter, and site of each host
//!   ([`Topology`] lookups);
//! * *how far apart are two hosts* — [`Locality`] classification
//!   (intra-rack / intra-cluster / intra-datacenter / inter-datacenter),
//!   the x-axis of Tables 2–3 and the series split of Figs 4, 6, 7, 16, 17;
//! * *which links does a packet cross* — deterministic ECMP routes over the
//!   Clos graph, which is what the packet simulator charges queueing and
//!   serialization against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domains;
pub mod fabric;
pub mod graph;
pub mod health;
pub mod ids;
pub mod role;
pub mod spec;
pub mod topology;

pub use domains::{domain_kind_consistent, enumerate_domains, FailureDomain};
pub use fabric::fabric_like_spec;
pub use graph::{Link, LinkId, Node, Switch, SwitchKind};
pub use health::LinkHealth;
pub use ids::{ClusterId, DatacenterId, HostId, RackId, SiteId, SwitchId};
pub use role::{ClusterType, HostRole, Locality};
pub use spec::{ClusterSpec, DatacenterSpec, RackSpec, SiteSpec, TopologySpec};
pub use topology::{Host, RouteError, Topology, TopologyError};
