//! Correlated-failure domains.
//!
//! The 4-post plant of §3.1 fails in *correlated* units, not one link at a
//! time: an RSW reboot takes a whole rack dark, a bad CSW line card degrades
//! a quarter of a cluster's uplink capacity, and an FC-layer event touches
//! every cluster in the building. This module enumerates those blast radii
//! as [`FailureDomain`] values so fault generators (the chaos profile
//! grammar in `sonet-core`) can compose *realistic* correlated outages
//! instead of independent per-link coin flips.
//!
//! A domain names the set of switches that share fate; callers turn that
//! into `SwitchDown`/`SwitchUp` fault events. Host access links are never
//! part of a domain — the paper's resilience argument is about the switch
//! fabric, and a dead host NIC is a workload concern, not a network one.

use serde::{Deserialize, Serialize};

use crate::graph::SwitchKind;
use crate::ids::SwitchId;
use crate::ids::{ClusterId, DatacenterId, RackId};
use crate::topology::Topology;

/// A unit of correlated switch failure in the 4-post plant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FailureDomain {
    /// One rack's top-of-rack switch: every host in the rack loses the
    /// fabric at once (the classic "rack power event").
    Rack(RackId),
    /// One cluster's CSW bank — the "pod". Taking the whole bank down
    /// black-holes inter-rack traffic for the cluster; taking a strict
    /// subset models partial pod degradation.
    Pod(ClusterId),
    /// One datacenter's Fat Cat aggregation layer: inter-cluster traffic
    /// inside the building shares fate with these switches.
    Spine(DatacenterId),
}

impl FailureDomain {
    /// The switches that share fate in this domain, in id order.
    pub fn switches(&self, topo: &Topology) -> Vec<SwitchId> {
        match *self {
            FailureDomain::Rack(r) => vec![topo.rack(r).rsw],
            FailureDomain::Pod(c) => topo.cluster(c).csws.to_vec(),
            FailureDomain::Spine(d) => topo.datacenters()[d.index()].fcs.clone(),
        }
    }

    /// Number of hosts whose connectivity the domain can affect — the
    /// blast radius used to weight domain selection and to size SLO
    /// expectations.
    pub fn blast_radius(&self, topo: &Topology) -> usize {
        match *self {
            FailureDomain::Rack(r) => topo.rack(r).hosts.len(),
            FailureDomain::Pod(c) => topo
                .cluster(c)
                .racks
                .iter()
                .map(|&r| topo.rack(r).hosts.len())
                .sum(),
            FailureDomain::Spine(d) => topo.datacenters()[d.index()]
                .clusters
                .iter()
                .flat_map(|&c| topo.cluster(c).racks.iter())
                .map(|&r| topo.rack(r).hosts.len())
                .sum(),
        }
    }

    /// Stable human-readable tag for reports and repro files.
    pub fn label(&self) -> String {
        match *self {
            FailureDomain::Rack(r) => format!("rack{}", r.index()),
            FailureDomain::Pod(c) => format!("pod{}", c.index()),
            FailureDomain::Spine(d) => format!("spine{}", d.index()),
        }
    }
}

/// Every failure domain in the topology: all racks, then all pods, then all
/// spines, each in id order. Deterministic, so seeded generators can index
/// into the list.
pub fn enumerate_domains(topo: &Topology) -> Vec<FailureDomain> {
    let mut out =
        Vec::with_capacity(topo.racks().len() + topo.clusters().len() + topo.datacenters().len());
    out.extend((0..topo.racks().len()).map(|i| FailureDomain::Rack(RackId::from(i))));
    out.extend((0..topo.clusters().len()).map(|i| FailureDomain::Pod(ClusterId::from(i))));
    out.extend((0..topo.datacenters().len()).map(|i| FailureDomain::Spine(DatacenterId::from(i))));
    out
}

/// Sanity cross-check: every switch a domain claims really has the kind
/// the domain implies. Used by tests and the chaos generator's debug
/// assertions.
pub fn domain_kind_consistent(topo: &Topology, domain: &FailureDomain) -> bool {
    let want = match domain {
        FailureDomain::Rack(_) => SwitchKind::Rsw,
        FailureDomain::Pod(_) => SwitchKind::Csw,
        FailureDomain::Spine(_) => SwitchKind::Fc,
    };
    domain
        .switches(topo)
        .iter()
        .all(|&s| topo.switches()[s.index()].kind == want)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ClusterSpec, TopologySpec};
    use std::sync::Arc;

    fn topo() -> Arc<Topology> {
        Topology::build(TopologySpec::single_dc(vec![
            ClusterSpec::frontend(8, 4),
            ClusterSpec::hadoop(4, 4),
        ]))
        .expect("valid spec")
        .into()
    }

    #[test]
    fn enumeration_covers_every_level_in_order() {
        let t = topo();
        let domains = enumerate_domains(&t);
        assert_eq!(
            domains.len(),
            t.racks().len() + t.clusters().len() + t.datacenters().len()
        );
        // Racks first, in id order.
        assert_eq!(domains[0], FailureDomain::Rack(RackId::from(0usize)));
        let pods = domains
            .iter()
            .filter(|d| matches!(d, FailureDomain::Pod(_)))
            .count();
        assert_eq!(pods, t.clusters().len());
        for d in &domains {
            assert!(domain_kind_consistent(&t, d), "{} wrong kind", d.label());
        }
    }

    #[test]
    fn blast_radius_orders_levels() {
        let t = topo();
        let rack = FailureDomain::Rack(RackId::from(0usize));
        let pod = FailureDomain::Pod(ClusterId::from(0usize));
        let spine = FailureDomain::Spine(DatacenterId::from(0usize));
        assert!(rack.blast_radius(&t) < pod.blast_radius(&t));
        assert!(pod.blast_radius(&t) <= spine.blast_radius(&t));
        assert_eq!(rack.switches(&t).len(), 1);
        assert_eq!(pod.switches(&t).len(), 4);
        assert!(!spine.switches(&t).is_empty());
    }
}
