//! Live/dead state of the plant: which links and switches are up.
//!
//! Production fabrics lose links and whole switches routinely; the 4-post
//! design exists precisely so that a dead CSW degrades capacity instead of
//! partitioning a cluster. [`LinkHealth`] is the mask the failure-aware
//! router ([`crate::Topology::route_healthy`]) and the packet engine
//! consult: a link is *usable* only when the link itself is up **and**
//! both of its switch endpoints are up.

use crate::graph::Node;
use crate::ids::SwitchId;
use crate::topology::Topology;
use crate::LinkId;

/// Up/down masks over the links and switches of one [`Topology`].
///
/// Freshly constructed health reports everything up; faults flip
/// individual entries. The mask is intentionally divorced from the
/// topology itself so one immutable, shared plant can be simulated under
/// many failure schedules.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LinkHealth {
    link_up: Vec<bool>,
    switch_up: Vec<bool>,
    down_links: usize,
    down_switches: usize,
}

impl LinkHealth {
    /// All-up health for `topo`.
    pub fn new(topo: &Topology) -> LinkHealth {
        LinkHealth {
            link_up: vec![true; topo.links().len()],
            switch_up: vec![true; topo.switches().len()],
            down_links: 0,
            down_switches: 0,
        }
    }

    /// True when no link or switch is down (the fast path: routing can
    /// skip the per-link checks entirely).
    pub fn all_up(&self) -> bool {
        self.down_links == 0 && self.down_switches == 0
    }

    /// Marks one directed link up or down.
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        let flag = &mut self.link_up[link.index()];
        if *flag != up {
            *flag = up;
            if up {
                self.down_links -= 1;
            } else {
                self.down_links += 1;
            }
        }
    }

    /// Marks a switch up or down. A down switch makes every link touching
    /// it unusable without mutating the per-link flags, so bringing the
    /// switch back restores exactly the pre-failure link state.
    pub fn set_switch_up(&mut self, switch: SwitchId, up: bool) {
        let flag = &mut self.switch_up[switch.index()];
        if *flag != up {
            *flag = up;
            if up {
                self.down_switches -= 1;
            } else {
                self.down_switches += 1;
            }
        }
    }

    /// Number of links the mask covers (checkpoint restore validates this
    /// against the topology it is replayed over).
    pub fn n_links(&self) -> usize {
        self.link_up.len()
    }

    /// Number of switches the mask covers.
    pub fn n_switches(&self) -> usize {
        self.switch_up.len()
    }

    /// The raw link flag (ignores switch state).
    pub fn link_up(&self, link: LinkId) -> bool {
        self.link_up[link.index()]
    }

    /// The switch flag.
    pub fn switch_up(&self, switch: SwitchId) -> bool {
        self.switch_up[switch.index()]
    }

    /// True when `link` can carry traffic: the link is up and so are both
    /// of its switch endpoints (host NICs never fail in this model).
    pub fn link_usable(&self, topo: &Topology, link: LinkId) -> bool {
        if !self.link_up[link.index()] {
            return false;
        }
        let l = &topo.links()[link.index()];
        let end_up = |n: Node| match n {
            Node::Switch(s) => self.switch_up[s.index()],
            Node::Host(_) => true,
        };
        end_up(l.from) && end_up(l.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ClusterSpec, TopologySpec};

    fn topo() -> Topology {
        Topology::build(TopologySpec::single_dc(vec![ClusterSpec::frontend(4, 2)])).expect("valid")
    }

    #[test]
    fn fresh_health_is_all_up() {
        let t = topo();
        let h = LinkHealth::new(&t);
        assert!(h.all_up());
        for i in 0..t.links().len() {
            assert!(h.link_usable(&t, LinkId(i as u32)));
        }
    }

    #[test]
    fn link_flags_toggle_and_count() {
        let t = topo();
        let mut h = LinkHealth::new(&t);
        let l = LinkId(0);
        h.set_link_up(l, false);
        assert!(!h.all_up());
        assert!(!h.link_usable(&t, l));
        // Idempotent: setting down twice still needs one up to recover.
        h.set_link_up(l, false);
        h.set_link_up(l, true);
        assert!(h.all_up());
        assert!(h.link_usable(&t, l));
    }

    #[test]
    fn dead_switch_poisons_adjacent_links_only() {
        let t = topo();
        let mut h = LinkHealth::new(&t);
        let rsw = t.racks()[0].rsw;
        h.set_switch_up(rsw, false);
        assert!(!h.switch_up(rsw));
        for (i, l) in t.links().iter().enumerate() {
            let touches = l.from == Node::Switch(rsw) || l.to == Node::Switch(rsw);
            assert_eq!(!h.link_usable(&t, LinkId(i as u32)), touches);
            // The per-link flags are untouched.
            assert!(h.link_up(LinkId(i as u32)));
        }
        h.set_switch_up(rsw, true);
        assert!(h.all_up());
    }
}
