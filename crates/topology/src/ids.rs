//! Strongly typed identifiers for every entity in the plant.
//!
//! All IDs are dense indices assigned at build time (`HostId(3)` is the
//! fourth host built), which lets lookups be `Vec` indexing rather than hash
//! maps on the simulator's hot path.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The dense index behind this ID.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(u32::try_from(v).expect("id overflows u32"))
            }
        }
    };
}

id_type!(
    /// A single physical server.
    HostId,
    "host"
);
id_type!(
    /// A rack of servers sharing one top-of-rack switch.
    RackId,
    "rack"
);
id_type!(
    /// A cluster — the unit of deployment (all racks behind one CSW set).
    ClusterId,
    "cluster"
);
id_type!(
    /// A datacenter building.
    DatacenterId,
    "dc"
);
id_type!(
    /// A datacenter site (campus of buildings plus backbone attachment).
    SiteId,
    "site"
);
id_type!(
    /// A switch of any kind (RSW, CSW, FC, DR, backbone).
    SwitchId,
    "sw"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(HostId(7).to_string(), "host7");
        assert_eq!(RackId(3).to_string(), "rack3");
        assert_eq!(ClusterId(0).index(), 0);
        let h: HostId = 12usize.into();
        assert_eq!(h, HostId(12));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(HostId(1) < HostId(2));
        assert_eq!(SwitchId(5), SwitchId(5));
    }
}
