//! Declarative descriptions of a plant to build.
//!
//! A [`TopologySpec`] is plain serializable data: sites contain datacenters
//! contain clusters contain racks of a single role. Convenience
//! constructors produce the cluster compositions the paper describes —
//! e.g. a Frontend cluster is roughly 75 % Web-server racks, ~20 % cache
//! racks, and a few Multifeed/SLB racks (Fig 5b's annotation).

use crate::role::{ClusterType, HostRole};
use serde::{Deserialize, Serialize};

/// A rack: `hosts` servers of one `role` behind one RSW (§3.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RackSpec {
    /// Role of every host in the rack (racks are role-homogeneous, §3.1).
    pub role: HostRole,
    /// Number of servers in the rack.
    pub hosts: u32,
}

/// A cluster: a set of racks served by four CSWs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Cluster type (Table 3 taxonomy).
    pub ctype: ClusterType,
    /// Racks, in position order.
    pub racks: Vec<RackSpec>,
}

/// A datacenter building: clusters plus its FC aggregation layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatacenterSpec {
    /// Clusters in the building.
    pub clusters: Vec<ClusterSpec>,
}

/// A site: one or more datacenter buildings.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteSpec {
    /// Buildings on the campus.
    pub datacenters: Vec<DatacenterSpec>,
}

/// The full plant description, plus fabric provisioning knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Sites (each with its own backbone attachment).
    pub sites: Vec<SiteSpec>,
    /// Host ↔ RSW link rate in Gbps (10 since the fleet-wide upgrade, §1).
    pub edge_gbps: f64,
    /// RSW ↔ CSW uplink rate in Gbps (10 in the 4-post design, §4.1).
    pub rsw_uplink_gbps: f64,
    /// CSW ↔ FC and CSW ↔ DR aggregation rate in Gbps (40, §4.1).
    pub agg_gbps: f64,
    /// Number of FC switches per datacenter.
    pub fc_count: u32,
}

impl Default for TopologySpec {
    fn default() -> Self {
        TopologySpec {
            sites: Vec::new(),
            edge_gbps: 10.0,
            rsw_uplink_gbps: 10.0,
            agg_gbps: 40.0,
            fc_count: 4,
        }
    }
}

impl ClusterSpec {
    /// A Frontend cluster: ~75 % Web racks, ~20 % cache-follower racks, and
    /// the remainder split between Multifeed and SLB racks (§4.3, Fig 5b).
    ///
    /// At least one rack of each constituent role is always present so the
    /// HTTP service graph of Fig 2 is complete.
    pub fn frontend(racks: u32, hosts_per_rack: u32) -> ClusterSpec {
        assert!(racks >= 4, "a frontend cluster needs at least 4 racks");
        let cache = ((racks as f64 * 0.20).round() as u32).max(1);
        let mf = ((racks as f64 * 0.03).round() as u32).max(1);
        let slb = ((racks as f64 * 0.02).round() as u32).max(1);
        let web = racks - cache - mf - slb;
        assert!(web >= 1, "frontend cluster too small for a web rack");
        let mut specs = Vec::with_capacity(racks as usize);
        // Web racks first, then cache, then multifeed, then SLB: the block
        // structure makes Fig 5b's bipartite rack-to-rack pattern visible.
        for _ in 0..web {
            specs.push(RackSpec {
                role: HostRole::Web,
                hosts: hosts_per_rack,
            });
        }
        for _ in 0..cache {
            specs.push(RackSpec {
                role: HostRole::CacheFollower,
                hosts: hosts_per_rack,
            });
        }
        for _ in 0..mf {
            specs.push(RackSpec {
                role: HostRole::Multifeed,
                hosts: hosts_per_rack,
            });
        }
        for _ in 0..slb {
            specs.push(RackSpec {
                role: HostRole::Slb,
                hosts: hosts_per_rack,
            });
        }
        ClusterSpec {
            ctype: ClusterType::Frontend,
            racks: specs,
        }
    }

    /// A homogeneous Hadoop cluster.
    pub fn hadoop(racks: u32, hosts_per_rack: u32) -> ClusterSpec {
        ClusterSpec {
            ctype: ClusterType::Hadoop,
            racks: (0..racks)
                .map(|_| RackSpec {
                    role: HostRole::Hadoop,
                    hosts: hosts_per_rack,
                })
                .collect(),
        }
    }

    /// A cache-leader cluster.
    pub fn cache(racks: u32, hosts_per_rack: u32) -> ClusterSpec {
        ClusterSpec {
            ctype: ClusterType::Cache,
            racks: (0..racks)
                .map(|_| RackSpec {
                    role: HostRole::CacheLeader,
                    hosts: hosts_per_rack,
                })
                .collect(),
        }
    }

    /// A database cluster.
    pub fn database(racks: u32, hosts_per_rack: u32) -> ClusterSpec {
        ClusterSpec {
            ctype: ClusterType::Database,
            racks: (0..racks)
                .map(|_| RackSpec {
                    role: HostRole::Db,
                    hosts: hosts_per_rack,
                })
                .collect(),
        }
    }

    /// A service cluster: miscellaneous supporting services with a couple of
    /// Multifeed racks.
    pub fn service(racks: u32, hosts_per_rack: u32) -> ClusterSpec {
        assert!(racks >= 2, "a service cluster needs at least 2 racks");
        let mf = (racks / 8).max(1);
        let mut specs = Vec::with_capacity(racks as usize);
        for _ in 0..(racks - mf) {
            specs.push(RackSpec {
                role: HostRole::Misc,
                hosts: hosts_per_rack,
            });
        }
        for _ in 0..mf {
            specs.push(RackSpec {
                role: HostRole::Multifeed,
                hosts: hosts_per_rack,
            });
        }
        ClusterSpec {
            ctype: ClusterType::Service,
            racks: specs,
        }
    }

    /// Total hosts in the cluster.
    pub fn host_count(&self) -> u64 {
        self.racks.iter().map(|r| r.hosts as u64).sum()
    }

    /// Number of racks of a given role.
    pub fn racks_with_role(&self, role: HostRole) -> usize {
        self.racks.iter().filter(|r| r.role == role).count()
    }
}

impl TopologySpec {
    /// A single-site, single-datacenter spec from cluster specs — the shape
    /// used by the port-mirror (packet-tier) experiments.
    pub fn single_dc(clusters: Vec<ClusterSpec>) -> TopologySpec {
        TopologySpec {
            sites: vec![SiteSpec {
                datacenters: vec![DatacenterSpec { clusters }],
            }],
            ..TopologySpec::default()
        }
    }

    /// Total host count across the plant.
    pub fn host_count(&self) -> u64 {
        self.sites
            .iter()
            .flat_map(|s| &s.datacenters)
            .flat_map(|d| &d.clusters)
            .map(|c| c.host_count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontend_mix_roughly_matches_paper() {
        let c = ClusterSpec::frontend(64, 20);
        assert_eq!(c.racks.len(), 64);
        let web = c.racks_with_role(HostRole::Web);
        let cache = c.racks_with_role(HostRole::CacheFollower);
        // Paper annotation on Fig 5b: ~75 % web servers, ~20 % cache.
        assert!((0.70..=0.80).contains(&(web as f64 / 64.0)), "web {web}");
        assert!(
            (0.15..=0.25).contains(&(cache as f64 / 64.0)),
            "cache {cache}"
        );
        assert!(c.racks_with_role(HostRole::Multifeed) >= 1);
        assert!(c.racks_with_role(HostRole::Slb) >= 1);
    }

    #[test]
    fn homogeneous_clusters() {
        let h = ClusterSpec::hadoop(8, 16);
        assert_eq!(h.racks_with_role(HostRole::Hadoop), 8);
        assert_eq!(h.host_count(), 128);
        let c = ClusterSpec::cache(4, 10);
        assert_eq!(c.racks_with_role(HostRole::CacheLeader), 4);
        let d = ClusterSpec::database(4, 10);
        assert_eq!(d.racks_with_role(HostRole::Db), 4);
    }

    #[test]
    fn service_cluster_has_multifeed() {
        let s = ClusterSpec::service(16, 10);
        assert!(s.racks_with_role(HostRole::Multifeed) >= 1);
        assert!(s.racks_with_role(HostRole::Misc) >= 10);
    }

    #[test]
    fn spec_host_count_sums() {
        let spec =
            TopologySpec::single_dc(vec![ClusterSpec::hadoop(2, 5), ClusterSpec::frontend(8, 3)]);
        assert_eq!(spec.host_count(), 10 + 24);
    }

    #[test]
    #[should_panic(expected = "at least 4 racks")]
    fn tiny_frontend_rejected() {
        let _ = ClusterSpec::frontend(3, 10);
    }
}
