//! Property-based tests: structural invariants of arbitrary plants.

use proptest::prelude::*;
use sonet_topology::{
    fabric_like_spec, ClusterSpec, DatacenterSpec, HostRole, SiteSpec, Topology, TopologySpec,
};

fn arb_spec() -> impl Strategy<Value = TopologySpec> {
    (
        prop::collection::vec(
            prop_oneof![
                (4u32..12, 1u32..6).prop_map(|(r, h)| ClusterSpec::frontend(r, h)),
                (1u32..8, 1u32..6).prop_map(|(r, h)| ClusterSpec::hadoop(r, h)),
                (1u32..4, 1u32..6).prop_map(|(r, h)| ClusterSpec::cache(r, h)),
                (1u32..4, 1u32..6).prop_map(|(r, h)| ClusterSpec::database(r, h)),
                (2u32..6, 1u32..6).prop_map(|(r, h)| ClusterSpec::service(r, h)),
            ],
            1..5,
        ),
        1usize..3,
    )
        .prop_map(|(clusters, dcs)| TopologySpec {
            sites: vec![SiteSpec {
                datacenters: (0..dcs)
                    .map(|_| DatacenterSpec {
                        clusters: clusters.clone(),
                    })
                    .collect(),
            }],
            ..TopologySpec::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Racks are role-homogeneous, role indexes partition the host set,
    /// and every host's containment chain is consistent.
    #[test]
    fn structure_invariants(spec in arb_spec()) {
        let topo = Topology::build(spec).expect("generated specs are valid");

        // Role indexes partition hosts.
        let by_role: usize = HostRole::ALL
            .iter()
            .map(|&r| topo.hosts_with_role(r).len())
            .sum();
        prop_assert_eq!(by_role, topo.hosts().len());

        for (i, rack) in topo.racks().iter().enumerate() {
            for &h in &rack.hosts {
                let host = topo.host(h);
                prop_assert_eq!(host.role, rack.role);
                prop_assert_eq!(host.rack.index(), i);
                prop_assert_eq!(host.cluster, rack.cluster);
                // Cluster containment chains agree.
                let cluster = topo.cluster(host.cluster);
                prop_assert_eq!(cluster.datacenter, host.datacenter);
                prop_assert!(cluster.racks.contains(&host.rack));
            }
        }

        // Every cluster has exactly 4 CSWs and every rack an RSW.
        for cluster in topo.clusters() {
            prop_assert_eq!(cluster.csws.len(), 4);
        }
    }

    /// Links always come in direction pairs with matching rates.
    #[test]
    fn links_are_duplex_pairs(spec in arb_spec()) {
        let topo = Topology::build(spec).expect("valid");
        let links = topo.links();
        prop_assert_eq!(links.len() % 2, 0);
        for pair in links.chunks(2) {
            prop_assert_eq!(pair[0].from, pair[1].to);
            prop_assert_eq!(pair[0].to, pair[1].from);
            prop_assert_eq!(pair[0].gbps, pair[1].gbps);
        }
    }

    /// The Fabric migration preserves hosts, roles, and rack order for
    /// any clustered plant.
    #[test]
    fn fabric_migration_preserves_structure(spec in arb_spec()) {
        let fab_spec = fabric_like_spec(&spec);
        prop_assert_eq!(spec.host_count(), fab_spec.host_count());
        let t_old = Topology::build(spec).expect("valid");
        let t_new = Topology::build(fab_spec).expect("valid");
        prop_assert_eq!(t_old.racks().len(), t_new.racks().len());
        for (a, b) in t_old.racks().iter().zip(t_new.racks()) {
            prop_assert_eq!(a.role, b.role);
            prop_assert_eq!(a.hosts.len(), b.hosts.len());
        }
    }
}
