//! A Scuba-like in-memory analytics table (§3.3.1: "feed it into Scuba, a
//! real-time data analytics system"), with the per-minute aggregation
//! granularity the paper notes Fbflow operates at in production.

use crate::records::TaggedRecord;
use sonet_util::{SimDuration, SimTime};
use std::collections::HashMap;

/// In-memory table of tagged Fbflow rows with simple group-by queries.
/// Serializable so determinism suites can fingerprint a whole table and
/// assert a resumed run reproduced it byte-for-byte.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct ScubaTable {
    rows: Vec<TaggedRecord>,
}

impl ScubaTable {
    /// Wraps tagged rows into a table.
    pub fn from_rows(rows: Vec<TaggedRecord>) -> ScubaTable {
        ScubaTable { rows }
    }

    /// All rows.
    pub fn rows(&self) -> &[TaggedRecord] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total represented bytes.
    pub fn total_bytes(&self) -> u64 {
        self.rows.iter().map(|r| r.rec.bytes).sum()
    }

    /// Sums represented bytes grouped by an arbitrary key.
    pub fn bytes_by<K: Eq + std::hash::Hash>(
        &self,
        key: impl Fn(&TaggedRecord) -> K,
    ) -> HashMap<K, u64> {
        let mut out = HashMap::new();
        for row in &self.rows {
            *out.entry(key(row)).or_insert(0) += row.rec.bytes;
        }
        out
    }

    /// Retains only rows matching the predicate (Scuba query filter).
    pub fn filtered(&self, pred: impl Fn(&TaggedRecord) -> bool) -> ScubaTable {
        ScubaTable {
            rows: self.rows.iter().copied().filter(|r| pred(r)).collect(),
        }
    }

    /// Per-minute represented-byte series (production Fbflow "aggregates
    /// statistics at a per-minute granularity").
    pub fn per_minute_bytes(&self) -> Vec<(u64, u64)> {
        let minute = SimDuration::from_secs(60);
        let mut acc: HashMap<u64, u64> = HashMap::new();
        for row in &self.rows {
            *acc.entry(row.rec.at.bin_index(minute)).or_insert(0) += row.rec.bytes;
        }
        let mut out: Vec<(u64, u64)> = acc.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Appends another table's rows (merging tagger shards).
    pub fn merge(&mut self, other: ScubaTable) {
        self.rows.extend(other.rows);
    }
}

/// Helper for tests and benches: the minute index of a timestamp.
pub fn minute_of(at: SimTime) -> u64 {
    at.bin_index(SimDuration::from_secs(60))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{FlowRecord, TaggedRecord};
    use sonet_topology::{
        ClusterId, ClusterType, DatacenterId, HostId, HostRole, Locality, RackId,
    };

    fn row(at_secs: u64, bytes: u64, locality: Locality) -> TaggedRecord {
        TaggedRecord {
            rec: FlowRecord {
                at: SimTime::from_secs(at_secs),
                capture_host: HostId(0),
                src: HostId(0),
                dst: HostId(1),
                src_port: 1,
                dst_port: 2,
                bytes,
                packets: 1,
            },
            src_role: HostRole::Web,
            dst_role: HostRole::CacheFollower,
            src_rack: RackId(0),
            dst_rack: RackId(1),
            src_cluster: ClusterId(0),
            dst_cluster: ClusterId(0),
            src_cluster_type: ClusterType::Frontend,
            dst_cluster_type: ClusterType::Frontend,
            src_dc: DatacenterId(0),
            dst_dc: DatacenterId(0),
            locality,
        }
    }

    #[test]
    fn totals_and_groupby() {
        let t = ScubaTable::from_rows(vec![
            row(0, 100, Locality::IntraCluster),
            row(1, 200, Locality::IntraCluster),
            row(2, 50, Locality::IntraRack),
        ]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_bytes(), 350);
        let by_loc = t.bytes_by(|r| r.locality);
        assert_eq!(by_loc[&Locality::IntraCluster], 300);
        assert_eq!(by_loc[&Locality::IntraRack], 50);
    }

    #[test]
    fn filter_and_merge() {
        let mut t = ScubaTable::from_rows(vec![row(0, 100, Locality::IntraRack)]);
        let only_cluster = t.filtered(|r| r.locality == Locality::IntraCluster);
        assert!(only_cluster.is_empty());
        t.merge(ScubaTable::from_rows(vec![row(
            0,
            10,
            Locality::IntraCluster,
        )]));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn per_minute_rollup() {
        let t = ScubaTable::from_rows(vec![
            row(10, 100, Locality::IntraRack),
            row(59, 100, Locality::IntraRack),
            row(61, 500, Locality::IntraRack),
        ]);
        let series = t.per_minute_bytes();
        assert_eq!(series, vec![(0, 200), (1, 500)]);
        assert_eq!(minute_of(SimTime::from_secs(61)), 1);
    }
}
