//! # sonet-telemetry
//!
//! The measurement infrastructure of §3.3 of the paper, rebuilt over the
//! simulator:
//!
//! * **Fbflow** (§3.3.1, Fig 3) — every machine samples its own packet
//!   headers at 1:30 000 via an nflog-style hook ([`FbflowSampler`]); a
//!   tagger annotates each sample with rack/cluster/datacenter/role
//!   metadata ([`Tagger`]); annotated rows land in a Scuba-like in-memory
//!   analytics table ([`ScubaTable`]) with per-minute aggregation.
//! * **Port mirroring** (§3.3.2) — the RSW mirrors one host's (or rack's)
//!   ports, bi-directionally and without loss, into a RAM-bounded capture
//!   buffer ([`PortMirror`]); captures are full-fidelity but limited to
//!   minutes, exactly like the paper's pinned-RAM collection servers.
//!
//! Switch-side telemetry (SNMP egress-drop counters, 10-µs buffer
//! occupancy sampling used by §6.3/Fig 15) is produced by the engine
//! itself (`sonet_netsim::SimOutputs`); this crate provides the capture
//! side of the house.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod fbflow;
pub mod mirror;
pub mod records;
pub mod scuba;
pub mod taps;

pub use export::{ImportStats, RecoveryStats, TraceSpool};
pub use fbflow::{FbflowConfig, FbflowSampler, Tagger};
pub use mirror::PortMirror;
pub use records::{FlowRecord, PacketRecord, TaggedRecord};
pub use scuba::ScubaTable;
pub use taps::TapPair;
